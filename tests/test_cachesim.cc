// Cache simulator: hit/miss mechanics, LRU eviction, associativity, miss
// classification (cold/self/extrinsic), and the RandArray schedule replay
// (FIFO vs CR) that validates the paper's §6.1 thrashing claim.
#include <gtest/gtest.h>

#include <set>

#include "src/cachesim/cache.h"
#include "src/cachesim/replay.h"

namespace malthus {
namespace {

CacheConfig TinyCache(std::size_t size, std::uint32_t ways, std::uint32_t line = 64) {
  CacheConfig c;
  c.size_bytes = size;
  c.ways = ways;
  c.line_bytes = line;
  return c;
}

TEST(CacheSim, FirstAccessIsColdMissThenHit) {
  CacheSim cache(TinyCache(1024, 2));
  EXPECT_EQ(cache.Access(0, 0), AccessOutcome::kColdMiss);
  EXPECT_EQ(cache.Access(0, 0), AccessOutcome::kHit);
  EXPECT_EQ(cache.Access(0, 32), AccessOutcome::kHit);  // Same 64B line.
  EXPECT_EQ(cache.Access(0, 64), AccessOutcome::kColdMiss);  // Next line.
}

TEST(CacheSim, SetMappingIsModular) {
  // 1024B / (2 ways * 64B) = 8 sets. Addresses 64*8 apart share a set.
  CacheSim cache(TinyCache(1024, 2));
  EXPECT_EQ(cache.SetCount(), 8u);
  EXPECT_EQ(cache.Access(0, 0), AccessOutcome::kColdMiss);
  EXPECT_EQ(cache.Access(0, 512), AccessOutcome::kColdMiss);   // same set, way 2
  EXPECT_EQ(cache.Access(0, 0), AccessOutcome::kHit);          // both resident
  EXPECT_EQ(cache.Access(0, 512), AccessOutcome::kHit);
}

TEST(CacheSim, LruEvictionOrder) {
  // 2-way set: A, B fill it; touching A then inserting C must evict B.
  CacheSim cache(TinyCache(1024, 2));
  const std::uint64_t a = 0;
  const std::uint64_t b = 512;
  const std::uint64_t c = 1024;
  cache.Access(0, a);
  cache.Access(0, b);
  cache.Access(0, a);              // A is now MRU.
  cache.Access(0, c);              // Evicts B (LRU).
  EXPECT_EQ(cache.Access(0, a), AccessOutcome::kHit);
  EXPECT_NE(cache.Access(0, b), AccessOutcome::kHit);
}

TEST(CacheSim, SelfMissClassification) {
  // One CPU thrashing a set alone: re-misses are self-inflicted.
  CacheSim cache(TinyCache(1024, 2));
  cache.Access(0, 0);
  cache.Access(0, 512);
  cache.Access(0, 1024);  // Evicts line 0 (installed by cpu 0).
  EXPECT_EQ(cache.Access(0, 0), AccessOutcome::kSelfMiss);
}

TEST(CacheSim, ExtrinsicMissClassification) {
  // CPU 1 evicts CPU 0's line: CPU 0's re-miss is extrinsic interference.
  CacheSim cache(TinyCache(1024, 2));
  cache.Access(0, 0);
  cache.Access(1, 512);
  cache.Access(1, 1024);  // Set now {512,1024}; evicted line 0 by cpu 1.
  EXPECT_EQ(cache.Access(0, 0), AccessOutcome::kExtrinsicMiss);
}

TEST(CacheSim, PerCpuStatsAccumulate) {
  CacheSim cache(TinyCache(4096, 4));
  cache.Access(0, 0);
  cache.Access(0, 0);
  cache.Access(1, 4096);
  EXPECT_EQ(cache.CpuStats(0).hits, 1u);
  EXPECT_EQ(cache.CpuStats(0).cold_misses, 1u);
  EXPECT_EQ(cache.CpuStats(1).cold_misses, 1u);
  EXPECT_EQ(cache.TotalStats().Accesses(), 3u);
}

TEST(CacheSim, ResetStatsKeepsContents) {
  CacheSim cache(TinyCache(4096, 4));
  cache.Access(0, 0);
  cache.ResetStats();
  EXPECT_EQ(cache.TotalStats().Accesses(), 0u);
  EXPECT_EQ(cache.Access(0, 0), AccessOutcome::kHit);  // Still resident.
}

TEST(CacheSim, WorkingSetWithinCapacityNeverEvicts) {
  // Fully touch a working set half the cache size; second pass = all hits.
  CacheSim cache(TinyCache(64 * 1024, 8));
  for (std::uint64_t addr = 0; addr < 32 * 1024; addr += 64) {
    cache.Access(0, addr);
  }
  cache.ResetStats();
  for (std::uint64_t addr = 0; addr < 32 * 1024; addr += 64) {
    EXPECT_EQ(cache.Access(0, addr), AccessOutcome::kHit);
  }
}

TEST(Replay, FifoScheduleIsRoundRobin) {
  const auto s = MakeFifoSchedule(4, 12);
  ASSERT_EQ(s.size(), 12u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], i % 4);
  }
}

TEST(Replay, CrScheduleCyclesOverAcs) {
  const auto s = MakeCrSchedule(16, 4, 100, /*fairness_period=*/1000000);
  // Without fairness events, only threads 0..3 appear.
  for (const auto tid : s) {
    EXPECT_LT(tid, 4u);
  }
}

TEST(Replay, CrScheduleFairnessRotatesWindow) {
  const auto s = MakeCrSchedule(16, 4, 5000, /*fairness_period=*/100);
  std::set<std::uint32_t> distinct(s.begin(), s.end());
  // The sliding window must eventually expose every thread.
  EXPECT_EQ(distinct.size(), 16u);
}

TEST(Replay, CrAcsLargerThanPopulationClamps) {
  const auto s = MakeCrSchedule(3, 10, 30, 1000000);
  for (const auto tid : s) {
    EXPECT_LT(tid, 3u);
  }
}

// The headline §6.1 validation: with 16 threads of 1MB private footprint
// against an 8MB LLC, FIFO thrashes (high extrinsic CS miss rate) while a
// CR schedule clamped to 5 threads fits and the CS misses collapse.
TEST(Replay, CrEliminatesExtrinsicCsMisses) {
  ReplayConfig config;
  config.threads = 16;
  config.ncs_footprint_bytes = 1u << 20;
  config.cs_footprint_bytes = 1u << 20;
  config.cs_accesses = 100;
  config.ncs_accesses = 400;
  config.total_admissions = 8000;

  CacheConfig llc;
  llc.size_bytes = 8u << 20;
  llc.ways = 16;

  const auto fifo = ReplaySchedule(config, llc, MakeFifoSchedule(config.threads, config.total_admissions));
  const auto cr = ReplaySchedule(
      config, llc, MakeCrSchedule(config.threads, 5, config.total_admissions, 1000));

  EXPECT_GT(fifo.cs_miss_rate, 2.0 * cr.cs_miss_rate);
  EXPECT_GT(fifo.cs_extrinsic_rate, cr.cs_extrinsic_rate);
}

// Below saturation-footprint there is nothing for CR to win: both schedules
// fit and miss rates converge after warmup.
TEST(Replay, NoBenefitWhenFootprintFits) {
  ReplayConfig config;
  config.threads = 4;
  config.ncs_footprint_bytes = 256u << 10;
  config.cs_footprint_bytes = 256u << 10;
  config.cs_accesses = 100;
  config.ncs_accesses = 400;
  config.total_admissions = 6000;

  CacheConfig llc;
  llc.size_bytes = 8u << 20;
  llc.ways = 16;

  const auto fifo = ReplaySchedule(config, llc, MakeFifoSchedule(config.threads, config.total_admissions));
  const auto cr = ReplaySchedule(
      config, llc, MakeCrSchedule(config.threads, 4, config.total_admissions, 1000));
  EXPECT_NEAR(fifo.cs_miss_rate, cr.cs_miss_rate, 0.02);
}

}  // namespace
}  // namespace malthus
