// Harness: fixed-time driver mechanics, sweep helpers, median-of-K, and the
// table renderer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "src/harness/fixed_time.h"
#include "src/harness/table.h"
#include "tests/contention.h"

namespace malthus {
namespace {

TEST(FixedTime, RunsForApproximatelyTheInterval) {
  BenchConfig config;
  config.threads = 2;
  config.duration = std::chrono::milliseconds(100);
  const BenchResult result = RunFixedTime(config, [](int) {});
  EXPECT_GE(result.wall_seconds, 0.08);
  EXPECT_LE(result.wall_seconds, 2.0);
  EXPECT_GT(result.total_iterations, 0u);
}

TEST(FixedTime, PerThreadCountsSumToTotal) {
  BenchConfig config;
  config.threads = 4;
  config.duration = std::chrono::milliseconds(50);
  const BenchResult result = RunFixedTime(config, [](int) {});
  std::uint64_t sum = 0;
  for (const auto c : result.per_thread_iterations) {
    sum += c;
  }
  EXPECT_EQ(sum, result.total_iterations);
  EXPECT_EQ(result.per_thread_iterations.size(), 4u);
}

TEST(FixedTime, BodySeesCorrectThreadIndices) {
  BenchConfig config;
  config.threads = 3;
  config.duration = std::chrono::milliseconds(30);
  std::atomic<int> bad{0};
  RunFixedTime(config, [&](int t) {
    if (t < 0 || t >= 3) {
      bad.fetch_add(1);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(FixedTime, ThroughputScalesWithParallelism) {
  // An embarrassingly parallel body must speed up with threads (loose 1.5x
  // bound to stay robust on loaded CI machines).
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "throughput cannot scale with threads on one effective CPU";
  }
  BenchConfig one;
  one.threads = 1;
  one.duration = std::chrono::milliseconds(100);
  auto body = [](int) {
    volatile int sink = 0;
    for (int i = 0; i < 200; ++i) {
      sink = sink + i;
    }
  };
  const double t1 = RunFixedTime(one, body).Throughput();
  BenchConfig four = one;
  four.threads = 4;
  const double t4 = RunFixedTime(four, body).Throughput();
  EXPECT_GT(t4, 1.5 * t1);
}

TEST(FixedTime, UsageDeltaPopulated) {
  BenchConfig config;
  config.threads = 2;
  config.duration = std::chrono::milliseconds(50);
  const BenchResult result = RunFixedTime(config, [](int) {});
  EXPECT_GT(result.usage.cpu_seconds, 0.0);
  EXPECT_GT(result.usage.CpuUtilization(), 0.0);
}

TEST(MedianOfK, PicksTheMedianRun) {
  int call = 0;
  const BenchResult median = RunMedianOfK(3, [&] {
    BenchResult r;
    r.wall_seconds = 1.0;
    // Throughputs 10, 30, 20 -> median 20.
    r.total_iterations = (call == 0) ? 10u : (call == 1 ? 30u : 20u);
    ++call;
    return r;
  });
  EXPECT_EQ(median.total_iterations, 20u);
}

TEST(Sweep, CountsAreSortedUniqueAndCapped) {
  const auto counts = SweepThreadCounts(20);
  ASSERT_FALSE(counts.empty());
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LT(counts[i - 1], counts[i]);
  }
  EXPECT_EQ(counts.back(), 20);
  EXPECT_EQ(counts.front(), 1);
}

TEST(Sweep, EnvOverridesDuration) {
  setenv("MALTHUS_BENCH_MS", "7", 1);
  EXPECT_EQ(DefaultBenchDuration(), std::chrono::milliseconds(7));
  unsetenv("MALTHUS_BENCH_MS");
  EXPECT_EQ(DefaultBenchDuration(), std::chrono::milliseconds(100));
}

TEST(Sweep, MalformedEnvFallsBack) {
  setenv("MALTHUS_BENCH_MS", "banana", 1);
  EXPECT_EQ(DefaultBenchDuration(), std::chrono::milliseconds(100));
  unsetenv("MALTHUS_BENCH_MS");
}

TEST(Table, RendersAlignedColumns) {
  TextTable table({"lock", "throughput"});
  table.AddRow({"mcs-s", "123"});
  table.AddRow({"mcscr-stp", "456789"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("lock"), std::string::npos);
  EXPECT_NE(out.find("mcscr-stp"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TextTable::Num(42), "42");
  EXPECT_EQ(TextTable::Num(1.5), "1.500");
  EXPECT_EQ(TextTable::Num(2500000, true), "2.50M");
  EXPECT_EQ(TextTable::Num(1500, true), "1.5k");
}

}  // namespace
}  // namespace malthus
