// LOITER specifics: fast/slow path accounting, impatience-triggered direct
// handoff, optimization toggles, and progress under oversubscription.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/loiter.h"

namespace malthus {
namespace {

// Spawns `n` workers that all start together (no startup skew) and runs
// `body(t)` kIters times in each.
template <typename Body>
void RunTogether(int n, int iters, Body&& body) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < n; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < iters; ++i) {
        body(t);
      }
    });
  }
  while (ready.load() != n) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
}

TEST(Loiter, UncontendedUsesFastPath) {
  LoiterLock lock;
  for (int i = 0; i < 10000; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(lock.fast_acquires(), 10000u);
  EXPECT_EQ(lock.slow_acquires(), 0u);
}

TEST(Loiter, MutualExclusionMixedPaths) {
  LoiterLock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8u * 10000u);
}

TEST(Loiter, SlowPathEngagesUnderPressure) {
  LoiterOptions opts;
  // With the spinner population capped at one, every additional contender
  // arriving while the lock is busy self-culls straight to the slow path.
  opts.fast_spin_attempts = 4;
  opts.max_fast_spinners = 1;
  LoiterLock lock(opts);
  RunTogether(8, 3000, [&](int) {
    lock.lock();
    // A non-trivial hold keeps the outer lock busy so arrivals fail their
    // (short) spin phase.
    volatile int sink = 0;
    for (int k = 0; k < 50; ++k) {
      sink = sink + k;
    }
    lock.unlock();
  });
  EXPECT_GT(lock.slow_acquires(), 0u);
}

TEST(Loiter, ImpatientStandbyGetsDirectHandoff) {
  LoiterOptions opts;
  opts.fast_spin_attempts = 1;
  opts.max_fast_spinners = 0;  // uncapped, but irrelevant with 1 attempt
  opts.patience = std::chrono::microseconds(100);  // Very impatient.
  LoiterLock lock(opts);
  std::atomic<bool> stop{false};
  // One greedy fast-path thread hammers the lock; a slow-path thread must
  // still get in via the anti-starvation handoff.
  std::thread greedy([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      lock.lock();
      lock.unlock();
    }
  });
  std::uint64_t slow_count = 0;
  std::thread patient([&] {
    for (int i = 0; i < 50; ++i) {
      lock.lock();
      ++slow_count;
      lock.unlock();
    }
  });
  patient.join();
  stop.store(true);
  greedy.join();
  EXPECT_EQ(slow_count, 50u);
}

TEST(Loiter, DirectHandoffCounterAdvancesWhenForced) {
  LoiterOptions opts;
  opts.patience = std::chrono::nanoseconds(0);  // Always impatient.
  opts.fast_spin_attempts = 1;
  opts.max_fast_spinners = 1;  // Most contenders go standby.
  LoiterLock lock(opts);
  std::uint64_t counter = 0;
  RunTogether(6, 5000, [&](int) {
    lock.lock();
    ++counter;
    // Hold briefly so concurrent arrivals observe a busy lock and take the
    // slow path, making a standby (and thus a handoff) near-certain.
    volatile int sink = 0;
    for (int k = 0; k < 30; ++k) {
      sink = sink + k;
    }
    lock.unlock();
  });
  EXPECT_EQ(counter, 6u * 5000u);
  EXPECT_GT(lock.direct_handoffs(), 0u);
}

TEST(Loiter, OptimizationTogglesAreSafe) {
  LoiterOptions opts;
  opts.deferred_unpark = false;
  opts.self_cull_cas_failures = 0;
  opts.max_fast_spinners = 0;
  LoiterLock lock(opts);
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6u * 5000u);
}

TEST(Loiter, TryLockNeverBlocksAndRespectsOwnership) {
  LoiterLock lock;
  EXPECT_TRUE(lock.try_lock());
  std::thread t([&] { EXPECT_FALSE(lock.try_lock()); });
  t.join();
  lock.unlock();
}

TEST(Loiter, OversubscribedProgress) {
  LoiterLock lock;
  const int n = 2 * static_cast<int>(std::thread::hardware_concurrency());
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < n; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(n) * 500u);
}

}  // namespace
}  // namespace malthus
