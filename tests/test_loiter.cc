// LOITER specifics: fast/slow path accounting, impatience-triggered direct
// handoff, optimization toggles, progress under oversubscription, and the
// wake-ahead (PrepareHandover) standby path: heir prediction, kernel-wake
// elision on the grant, and starvation bounds with hints in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/loiter.h"
#include "src/locks/handover_guard.h"
#include "src/platform/park.h"
#include "tests/contention.h"

namespace malthus {
namespace {

using test::AwaitKernelParksAbove;

// Spawns `n` workers that all start together (no startup skew) and runs
// `body(t)` kIters times in each.
template <typename Body>
void RunTogether(int n, int iters, Body&& body) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < n; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < iters; ++i) {
        body(t);
      }
    });
  }
  while (ready.load() != n) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
}

TEST(Loiter, UncontendedUsesFastPath) {
  LoiterLock lock;
  for (int i = 0; i < 10000; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(lock.fast_acquires(), 10000u);
  EXPECT_EQ(lock.slow_acquires(), 0u);
}

TEST(Loiter, MutualExclusionMixedPaths) {
  LoiterLock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8u * 10000u);
}

TEST(Loiter, SlowPathEngagesUnderPressure) {
  LoiterOptions opts;
  // With the spinner population capped at one, every additional contender
  // arriving while the lock is busy self-culls straight to the slow path.
  opts.fast_spin_attempts = 4;
  opts.max_fast_spinners = 1;
  LoiterLock lock(opts);
  // Deterministic pressure (a free-running herd almost never overlaps a
  // 50-iteration hold on a 1-CPU host): hold the lock so the contender's
  // bounded fast-spin phase provably fails, forcing the slow path.
  lock.lock();
  const std::uint64_t parks_before = TotalKernelParks();
  std::thread contender([&] {
    lock.lock();
    lock.unlock();
  });
  AwaitKernelParksAbove(parks_before);  // Contender is the parked standby.
  lock.unlock();
  contender.join();
  EXPECT_EQ(lock.slow_acquires(), 1u);
  EXPECT_EQ(lock.fast_acquires(), 1u);

  // And the free-running herd still upholds exclusion and progress.
  std::uint64_t counter = 0;
  RunTogether(8, 3000, [&](int) {
    lock.lock();
    ++counter;
    volatile int sink = 0;
    for (int k = 0; k < 50; ++k) {
      sink = sink + k;
    }
    lock.unlock();
  });
  EXPECT_EQ(counter, 8u * 3000u);
}

TEST(Loiter, ImpatientStandbyGetsDirectHandoff) {
  LoiterOptions opts;
  opts.fast_spin_attempts = 1;
  opts.max_fast_spinners = 0;  // uncapped, but irrelevant with 1 attempt
  opts.patience = std::chrono::microseconds(100);  // Very impatient.
  LoiterLock lock(opts);
  std::atomic<bool> stop{false};
  // One greedy fast-path thread hammers the lock; a slow-path thread must
  // still get in via the anti-starvation handoff.
  std::thread greedy([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      lock.lock();
      lock.unlock();
    }
  });
  std::uint64_t slow_count = 0;
  std::thread patient([&] {
    for (int i = 0; i < 50; ++i) {
      lock.lock();
      ++slow_count;
      lock.unlock();
    }
  });
  patient.join();
  stop.store(true);
  greedy.join();
  EXPECT_EQ(slow_count, 50u);
}

TEST(Loiter, DirectHandoffCounterAdvancesWhenForced) {
  // Deterministic orchestration (the previous free-running version relied
  // on arrivals overlapping a 30-iteration hold, which a 1-CPU host almost
  // never schedules): hold the lock, let an always-impatient contender
  // become the parked standby — it requests a handoff before parking — and
  // verify the next unlock takes the direct-handoff path.
  LoiterOptions opts;
  opts.patience = std::chrono::nanoseconds(0);  // Always impatient.
  opts.fast_spin_attempts = 1;
  opts.max_fast_spinners = 1;
  opts.standby_park_slice = std::chrono::seconds(10);
  LoiterLock lock(opts);
  lock.lock();
  const std::uint64_t parks_before = TotalKernelParks();
  std::atomic<bool> acquired{false};
  std::thread standby([&] {
    lock.lock();
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  // Once the standby has parked it has already flagged its impatience.
  AwaitKernelParksAbove(parks_before);
  lock.unlock();  // Must grant by direct handoff, not release-and-race.
  standby.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(lock.direct_handoffs(), 1u);
}

TEST(Loiter, OptimizationTogglesAreSafe) {
  LoiterOptions opts;
  opts.deferred_unpark = false;
  opts.self_cull_cas_failures = 0;
  opts.max_fast_spinners = 0;
  LoiterLock lock(opts);
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6u * 5000u);
}

TEST(Loiter, TryLockNeverBlocksAndRespectsOwnership) {
  LoiterLock lock;
  EXPECT_TRUE(lock.try_lock());
  std::thread t([&] { EXPECT_FALSE(lock.try_lock()); });
  t.join();
  lock.unlock();
}

TEST(Loiter, OversubscribedProgress) {
  LoiterLock lock;
  const int n = 2 * static_cast<int>(std::thread::hardware_concurrency());
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < n; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(n) * 500u);
}

// ---------------------------------------------------------------------------
// Wake-ahead (PrepareHandover) on the standby path.

// Options that force every contended arrival down the slow path, with a
// park slice long enough that a parked standby stays parked until the test
// acts (so counter assertions are not raced by slice-expiry re-parks).
LoiterOptions SlowPathOptions() {
  LoiterOptions opts;
  opts.fast_spin_attempts = 1;
  opts.max_fast_spinners = 1;
  opts.patience = std::chrono::seconds(10);
  opts.standby_park_slice = std::chrono::seconds(10);
  return opts;
}

TEST(LoiterHandover, ParkedStandbyIsWokenAheadAndGrantElidesSyscall) {
  LoiterLock lock(SlowPathOptions());
  lock.lock();  // Fast path: we are the owner; no standby exists yet.
  std::atomic<bool> acquired{false};
  const std::uint64_t parks_before = TotalKernelParks();
  std::thread standby([&] {
    lock.lock();  // Forced slow path: becomes the standby and parks.
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  AwaitKernelParksAbove(parks_before);

  const std::uint64_t aheads_before = TotalWakeAheads();
  const std::uint64_t wakes_before = TotalKernelWakes();
  lock.PrepareHandover();
  EXPECT_EQ(TotalWakeAheads() - aheads_before, 1u);
  // The standby was blocked in the kernel, so the hint paid the futex wake
  // — inside our critical section, where it overlaps remaining work.
  EXPECT_EQ(TotalKernelWakes() - wakes_before, 1u);
  lock.unlock();
  standby.join();
  EXPECT_TRUE(acquired.load());
  // Zero-kernel-wake grant: neither the release path nor the deferred
  // unpark may have issued a second futex wake — the heir was runnable (or
  // held the collapsed permit) by then.
  EXPECT_LE(TotalKernelWakes() - wakes_before, 1u);
}

TEST(LoiterHandover, NoWaitersIsANoOp) {
  LoiterLock lock;
  lock.lock();
  const std::uint64_t aheads_before = TotalWakeAheads();
  lock.PrepareHandover();
  EXPECT_EQ(TotalWakeAheads(), aheads_before);
  lock.unlock();
}

TEST(LoiterHandover, SlowOwnerPreWakesTheNextStandby) {
  // Heir prediction across the composite structure: a slow-path owner (the
  // retired standby, still holding the inner MCS lock) has no standby to
  // hint — its heir is the inner lock's successor, which its unlock()
  // promotes to standby. PrepareHandover must delegate to the inner MCS
  // wake-ahead and pre-wake that successor.
  LoiterLock lock(SlowPathOptions());
  lock.lock();  // Main holds via the fast path.
  std::atomic<bool> b_owns{false};
  std::atomic<bool> release_b{false};
  std::atomic<bool> c_acquired{false};
  std::atomic<std::uint64_t> aheads_delta{0};

  const std::uint64_t parks_before_b = TotalKernelParks();
  std::thread b([&] {
    lock.lock();  // Slow path: standby, then owner once main unlocks.
    b_owns.store(true, std::memory_order_release);
    while (!release_b.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    const std::uint64_t aheads_before = TotalWakeAheads();
    lock.PrepareHandover();  // Must reach C through the inner MCS chain.
    aheads_delta.store(TotalWakeAheads() - aheads_before, std::memory_order_release);
    lock.unlock();
  });
  AwaitKernelParksAbove(parks_before_b);  // B is the parked standby.

  const std::uint64_t parks_before_c = TotalKernelParks();
  std::thread c([&] {
    lock.lock();  // Slow path: queues behind B on the inner MCS lock.
    c_acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  AwaitKernelParksAbove(parks_before_c);  // C parked on the inner chain.

  lock.unlock();  // B acquires and reports ownership.
  while (!b_owns.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  release_b.store(true, std::memory_order_release);
  b.join();
  c.join();
  EXPECT_TRUE(c_acquired.load());
  EXPECT_GE(aheads_delta.load(), 1u);
}

TEST(LoiterHandover, StandbyNotStarvedUnderWakeAheadBarrage) {
  // The anti-starvation invariant must survive hints in flight: greedy
  // fast-path threads that wake-ahead on every release still may not
  // starve the standby past its patience.
  LoiterOptions opts;
  opts.fast_spin_attempts = 1;
  opts.max_fast_spinners = 0;  // Uncapped, but irrelevant with 1 attempt.
  opts.patience = std::chrono::microseconds(100);
  LoiterLock lock(opts);
  std::atomic<bool> stop{false};
  std::vector<std::thread> greedy;
  for (int t = 0; t < 2; ++t) {
    greedy.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        HandoverLockGuard<LoiterLock> guard(lock);
      }
    });
  }
  std::uint64_t slow_count = 0;
  std::thread patient([&] {
    for (int i = 0; i < 25; ++i) {
      lock.lock();
      ++slow_count;
      lock.unlock();
    }
  });
  patient.join();
  stop.store(true);
  for (auto& g : greedy) {
    g.join();
  }
  EXPECT_EQ(slow_count, 25u);
}

TEST(LoiterHandover, GuardedCriticalSectionsStayExclusiveWithTogglesOff) {
  // Wake-ahead composed with the optimization toggles disabled (no deferred
  // unpark, no self-culling, uncapped spinners): exclusion and progress
  // must be toggle-independent with hints firing before every unlock.
  LoiterOptions opts;
  opts.deferred_unpark = false;
  opts.self_cull_cas_failures = 0;
  opts.max_fast_spinners = 0;
  LoiterLock lock(opts);
  std::uint64_t counter = 0;
  const int iters = test::ScaledIters(5000, 6);
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        HandoverLockGuard<LoiterLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6u * static_cast<std::uint64_t>(iters));
}

}  // namespace
}  // namespace malthus
