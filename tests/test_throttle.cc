// ThrottledLock: K-exclusion gating, mutual exclusion through the inner
// lock, bounded circulating set, no starvation through the mostly-LIFO
// gate, and composition with different inner lock algorithms.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/throttle.h"
#include "src/locks/mcs.h"
#include "src/locks/tas.h"
#include "tests/contention.h"
#include "src/metrics/admission_log.h"

namespace malthus {
namespace {

TEST(ThrottledLock, MutualExclusion) {
  ThrottledLock<McsSpinLock> lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8u * 10000u);
}

TEST(ThrottledLock, GateBoundsCirculatingSet) {
  ThrottleOptions opts;
  opts.max_circulating = 3;
  ThrottledLock<TtasLock> lock(opts);
  std::atomic<int> in_gate{0};
  std::atomic<bool> violated{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 10; ++t) {
    workers.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        // We hold both the gate and the inner lock; the gate population is
        // everyone between gate-acquire and gate-release.
        const int now = in_gate.fetch_add(1) + 1;
        if (now > 3) {
          violated.store(true);
        }
        in_gate.fetch_sub(1);
        lock.unlock();
      }
    });
  }
  while (ready.load() != 10) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(violated.load());
  if (!test::SingleCpuHost()) {
    // Throttle engagement needs >3 threads *concurrently* at the gate; on
    // one effective CPU arrivals are serialized within quanta and the gate
    // may legitimately never fill. The bound check above still ran.
    EXPECT_GT(lock.throttled(), 0u);
  }
}

TEST(ThrottledLock, LwssClampedToK) {
  ThrottleOptions opts;
  opts.max_circulating = 3;
  ThrottledLock<McsSpinLock> lock(opts);
  AdmissionLog log(1 << 20);
  lock.set_recorder(&log);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 10; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  // The gate strictly bounds *concurrency* to K, but the circulating
  // membership rotates faster than MCSCR keeps it: the gate grants at
  // release time, often before the leaver re-arrives, so an older waiter
  // slips in. The robust property is therefore relative (no worse than an
  // unthrottled FIFO lock, whose LWSS equals the population) — the measured
  // argument for in-lock CR over external throttling.
  const FairnessReport report = log.Report();
  EXPECT_LE(report.average_lwss, 10.0);
  EXPECT_EQ(report.participants, 10u);  // Long-term, everyone circulates.
}

TEST(ThrottledLock, NoStarvationThroughMostlyLifoGate) {
  ThrottleOptions opts;
  opts.max_circulating = 2;
  opts.append_probability = 1.0 / 50;  // Frequent fairness appends.
  ThrottledLock<McsSpinLock> lock(opts);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> acquires(8, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
        ++local;
      }
      acquires[static_cast<std::size_t>(t)] = local;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  for (std::size_t t = 0; t < acquires.size(); ++t) {
    EXPECT_GT(acquires[t], 0u) << "thread " << t << " starved at the gate";
  }
}

TEST(ThrottledLock, TryLockRespectsGateAndInner) {
  ThrottleOptions opts;
  opts.max_circulating = 1;
  ThrottledLock<McsSpinLock> lock(opts);
  EXPECT_TRUE(lock.try_lock());
  std::thread t([&] { EXPECT_FALSE(lock.try_lock()); });  // Gate exhausted.
  t.join();
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(ThrottledLock, UncontendedFastPathAvoidsGateWaits) {
  ThrottledLock<McsSpinLock> lock;
  for (int i = 0; i < 10000; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(lock.throttled(), 0u);
}

}  // namespace
}  // namespace malthus
