// LIFO-CR specifics: LIFO admission, anti-starvation via eldest grants,
// stack integrity under churn, and CR effect on the working set.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/lifocr.h"
#include "src/metrics/admission_log.h"
#include "tests/contention.h"

namespace malthus {
namespace {

using test::ScaledIters;

TEST(LifoCr, EldestGrantBoundsStarvation) {
  LifoCrOptions opts;
  opts.fairness_one_in = 100;
  LifoCrStpLock lock(opts);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> acquires(8, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
        ++local;
      }
      acquires[static_cast<std::size_t>(t)] = local;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  for (std::size_t t = 0; t < acquires.size(); ++t) {
    EXPECT_GT(acquires[t], 0u) << "thread " << t << " starved";
  }
  EXPECT_GT(lock.fairness_grants(), 0u);
}

TEST(LifoCr, RestrictsWorkingSet) {
  LifoCrStpLock lock;
  AdmissionLog log(1 << 20);
  lock.set_recorder(&log);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 10; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  const FairnessReport report = log.Report(1000);
  // LIFO admission keeps the circulating set small.
  EXPECT_LT(report.average_lwss, 6.0);
}

TEST(LifoCr, HighChurnStackIntegrity) {
  // Rapid push/pop with mixed hold times stresses the push/pop CAS paths.
  // CPU-count-gated: pure-spin handovers on a host that cannot run all the
  // contenders are scheduler-paced, so the round count scales with the
  // effective CPU count (the churn pattern itself is unchanged).
  LifoCrSpinLock lock;
  std::uint64_t counter = 0;
  const int kIters = ScaledIters(20000, 8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        counter = counter + 1;
        if ((i & 1023) == 0) {
          std::this_thread::yield();  // Vary hold times inside the CS.
        }
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8u * static_cast<std::uint64_t>(kIters));
}

TEST(LifoCr, FairnessPathExercisedUnderSpinWaiting) {
  LifoCrOptions opts;
  opts.fairness_one_in = 50;
  LifoCrSpinLock lock(opts);
  std::uint64_t counter = 0;
  // CPU-count-gated (see HighChurnStackIntegrity). The periodic yield
  // *inside* the critical section forces waiters to stack even on a 1-CPU
  // host (where free-running threads would otherwise each complete a whole
  // quantum uncontended and never give fairness a Bernoulli trial); each
  // yield window stacks the other workers, yielding thousands of
  // stacked-unlock trials at 1/50 even at the scaled floor.
  const int kIters = ScaledIters(20000, 6);
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        if ((i & 31) == 0) {
          std::this_thread::yield();
        }
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6u * static_cast<std::uint64_t>(kIters));
  EXPECT_GT(lock.fairness_grants(), 0u);
}

TEST(LifoCr, SequentialReuseAfterContention) {
  LifoCrStpLock lock;
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 5000; ++i) {
          lock.lock();
          lock.unlock();
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  // Stack must be empty: plain fast-path cycles still work.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(lock.try_lock());
    lock.unlock();
  }
}

}  // namespace
}  // namespace malthus
