// Property-style parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//   * every CR lock x thread count: exclusion + no-starvation;
//   * condvar append-probability sweep: no waiter is lost at any P;
//   * cache simulator geometry sweep: accounting invariants;
//   * analytic model parameter sweep: peak <= saturation, CR no-harm;
//   * splay heap differential test against a reference allocator;
//   * failure injection: spurious-unpark storms against parking locks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "src/alloc/splay_heap.h"
#include "src/cachesim/cache.h"
#include "src/core/cr_condvar.h"
#include "src/locks/any_lock.h"
#include "src/locks/tas.h"
#include "src/model/throughput_model.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"

namespace malthus {
namespace {

// ---------------------------------------------------------------------------
// CR locks: exclusion + no-starvation across thread counts.

using CrLockParam = std::tuple<std::string, int>;

class CrLockProperty : public ::testing::TestWithParam<CrLockParam> {};

TEST_P(CrLockProperty, ExclusionAndNoStarvation) {
  const auto& [name, threads] = GetParam();
  auto lock = MakeLock(name);
  ASSERT_NE(lock, nullptr);
  std::uint64_t counter = 0;
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> acquires(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock->lock();
        counter = counter + 1;
        lock->unlock();
        ++local;
      }
      acquires[static_cast<std::size_t>(t)] = local;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < acquires.size(); ++t) {
    EXPECT_GT(acquires[t], 0u) << name << ": thread " << t << " starved";
    total += acquires[t];
  }
  EXPECT_EQ(counter, total) << name << ": lost updates — exclusion violated";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrLockProperty,
    ::testing::Combine(::testing::Values("mcscr-s", "mcscr-stp", "lifocr-s", "lifocr-stp",
                                         "loiter", "mcscrn-stp"),
                       ::testing::Values(4, 16)),
    [](const ::testing::TestParamInfo<CrLockParam>& pinfo) {
      std::string name = std::get<0>(pinfo.param) + "_t" + std::to_string(std::get<1>(pinfo.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Condvar discipline sweep: no waiter lost at any append probability.

class CondVarDiscipline : public ::testing::TestWithParam<double> {};

TEST_P(CondVarDiscipline, EveryWaiterEventuallyWoken) {
  TtasLock lock;
  CrCondVar cv(CrCondVarOptions{.append_probability = GetParam()});
  constexpr int kWaiters = 12;
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      lock.lock();
      cv.Wait(lock);
      woken.fetch_add(1);
      lock.unlock();
    });
  }
  while (cv.WaiterCount() != kWaiters) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < kWaiters; ++i) {
    cv.Signal();
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(woken.load(), kWaiters);
  EXPECT_EQ(cv.WaiterCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(PSweep, CondVarDiscipline,
                         ::testing::Values(0.0, 0.001, 0.25, 0.5, 0.75, 1.0),
                         [](const ::testing::TestParamInfo<double>& pinfo) {
                           return "p" + std::to_string(static_cast<int>(pinfo.param * 1000));
                         });

// ---------------------------------------------------------------------------
// Cache simulator geometry sweep.

using CacheGeom = std::tuple<std::size_t, std::uint32_t>;  // size, ways

class CacheSimProperty : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(CacheSimProperty, AccountingInvariants) {
  const auto& [size, ways] = GetParam();
  CacheConfig config;
  config.size_bytes = size;
  config.ways = ways;
  config.line_bytes = 64;
  CacheSim cache(config);
  XorShift64 rng(99);
  constexpr int kAccesses = 50000;
  for (int i = 0; i < kAccesses; ++i) {
    cache.Access(static_cast<std::uint32_t>(rng.NextBelow(4)), rng.NextBelow(size * 4));
  }
  const CacheStats& stats = cache.TotalStats();
  EXPECT_EQ(stats.Accesses(), static_cast<std::uint64_t>(kAccesses));
  EXPECT_EQ(stats.hits + stats.Misses(), stats.Accesses());
  EXPECT_LE(stats.MissRate(), 1.0);
  // Per-CPU stats sum to the totals.
  CacheStats sum;
  for (std::uint32_t cpu = 0; cpu < 4; ++cpu) {
    const CacheStats& s = cache.CpuStats(cpu);
    sum.hits += s.hits;
    sum.cold_misses += s.cold_misses;
    sum.self_misses += s.self_misses;
    sum.extrinsic_misses += s.extrinsic_misses;
  }
  EXPECT_EQ(sum.Accesses(), stats.Accesses());
  EXPECT_EQ(sum.hits, stats.hits);
}

TEST_P(CacheSimProperty, ResidentWorkingSetAllHits) {
  const auto& [size, ways] = GetParam();
  CacheConfig config;
  config.size_bytes = size;
  config.ways = ways;
  CacheSim cache(config);
  // Touch exactly half the capacity, uniformly; second pass must all hit.
  for (std::uint64_t addr = 0; addr < size / 2; addr += 64) {
    cache.Access(0, addr);
  }
  cache.ResetStats();
  for (std::uint64_t addr = 0; addr < size / 2; addr += 64) {
    cache.Access(0, addr);
  }
  EXPECT_EQ(cache.TotalStats().Misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Geometry, CacheSimProperty,
                         ::testing::Values(CacheGeom{32 * 1024, 2}, CacheGeom{64 * 1024, 4},
                                           CacheGeom{256 * 1024, 8}, CacheGeom{1 << 20, 16}),
                         [](const ::testing::TestParamInfo<CacheGeom>& pinfo) {
                           return "s" + std::to_string(std::get<0>(pinfo.param) / 1024) + "k_w" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

// ---------------------------------------------------------------------------
// Analytic model parameter sweep.

using ModelGeom = std::tuple<double, double>;  // cs_ns, ncs_ns

class ModelProperty : public ::testing::TestWithParam<ModelGeom> {};

TEST_P(ModelProperty, PeakNeverExceedsSaturationAndCrDoesNoHarm) {
  const auto& [cs, ncs] = GetParam();
  ModelParams params;
  params.cs_ns = cs;
  params.ncs_ns = ncs;
  ThroughputModel model(params);
  EXPECT_LE(model.PeakThreads(256), model.Saturation());
  for (int n = 1; n <= 256; n *= 2) {
    EXPECT_GE(model.ThroughputWithCr(n) + 1e-9, model.ThroughputWithoutCr(n))
        << "cs=" << cs << " ncs=" << ncs << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, ModelProperty,
                         ::testing::Values(ModelGeom{1000, 1000}, ModelGeom{1000, 5000},
                                           ModelGeom{500, 10000}, ModelGeom{2000, 2000},
                                           ModelGeom{100, 20000}),
                         [](const ::testing::TestParamInfo<ModelGeom>& pinfo) {
                           return "cs" + std::to_string(static_cast<int>(std::get<0>(pinfo.param))) +
                                  "_ncs" + std::to_string(static_cast<int>(std::get<1>(pinfo.param)));
                         });

// ---------------------------------------------------------------------------
// Splay heap differential test against a reference model.

TEST(SplayHeapDifferential, MatchesReferenceSemantics) {
  SplayHeap heap(1 << 20);
  XorShift64 rng(31337);
  // Reference: payload pointer -> (size, fill byte).
  std::map<void*, std::pair<std::size_t, unsigned char>> live;
  for (int step = 0; step < 30000; ++step) {
    if (live.empty() || rng.NextBelow(100) < 55) {
      const std::size_t n = 1 + rng.NextBelow(1500);
      void* p = heap.Allocate(n);
      if (p == nullptr) {
        continue;  // Exhaustion is legal.
      }
      ASSERT_EQ(live.count(p), 0u) << "allocator returned a live block";
      const auto fill = static_cast<unsigned char>(rng.NextBelow(256));
      std::memset(p, fill, n);
      live.emplace(p, std::make_pair(n, fill));
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      const auto [size, fill] = it->second;
      const auto* bytes = static_cast<const unsigned char*>(it->first);
      for (std::size_t i = 0; i < size; ++i) {
        ASSERT_EQ(bytes[i], fill) << "block corrupted before free";
      }
      heap.Free(it->first);
      live.erase(it);
    }
  }
  for (const auto& [p, meta] : live) {
    heap.Free(p);
  }
  EXPECT_TRUE(heap.CheckConsistency());
}

// ---------------------------------------------------------------------------
// Failure injection: spurious-unpark storms. All parking paths must treat a
// permit as advisory (re-check conditions), so random unparks delivered to
// contenders must never break exclusion or strand anyone.

class SpuriousWakeStorm : public ::testing::TestWithParam<std::string> {};

TEST_P(SpuriousWakeStorm, ExclusionSurvivesRandomUnparks) {
  auto lock = MakeLock(GetParam());
  ASSERT_NE(lock, nullptr);
  constexpr int kThreads = 8;
  std::uint64_t counter = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> finished{0};
  std::atomic<bool> release{false};
  std::vector<std::atomic<Parker*>> parkers(kThreads);
  for (auto& p : parkers) {
    p.store(nullptr);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      parkers[static_cast<std::size_t>(t)].store(&Self().parker);
      for (int i = 0; i < 20000; ++i) {
        lock->lock();
        counter = counter + 1;
        lock->unlock();
      }
      finished.fetch_add(1);
      // Keep the thread (and its thread-local Parker) alive until the rogue
      // has been stopped, so its unparks never target a dead thread.
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  std::thread rogue([&] {
    XorShift64 rng(777);
    while (!stop.load(std::memory_order_relaxed)) {
      Parker* p = parkers[rng.NextBelow(kThreads)].load();
      if (p != nullptr) {
        p->Unpark();  // Spurious permit.
      }
    }
  });
  while (finished.load() != kThreads) {
    std::this_thread::yield();
  }
  stop.store(true);
  rogue.join();
  release.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * 20000u);
}

INSTANTIATE_TEST_SUITE_P(ParkingLocks, SpuriousWakeStorm,
                         ::testing::Values("mcs-stp", "mcscr-stp", "lifocr-stp", "loiter",
                                           "pthread-style", "mcscrn-stp"),
                         [](const ::testing::TestParamInfo<std::string>& pinfo) {
                           std::string name = pinfo.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace malthus
