// ShardedTable layer: aggregate-stat invariants, per-shard capacity bounds,
// a differential check of the sharded structures against their unsharded
// originals over a recorded op trace, concurrent mixed-op stress under a
// stall watchdog, the zombie-QNode leak gauge after timed acquisitions on
// per-shard locks, and a FailPoint chaos storm over the sharded ops.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/chaos/failpoint.h"
#include "src/kchash/kchash.h"
#include "src/locks/lock_base.h"
#include "src/locks/mcs.h"
#include "src/locks/tas.h"
#include "src/minidb/minidb.h"
#include "src/rng/xorshift.h"
#include "src/sharded/sharded_kchash.h"
#include "src/sharded/sharded_lru.h"
#include "src/sharded/sharded_table.h"
#include "tests/contention.h"
#include "tests/watchdog.h"

namespace malthus {
namespace {

using test::ScaledIters;
using test::StallWatchdog;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Shard-count normalization and hash spread.

TEST(ShardedTable, NormalizesShardCountToPowersOfTwo) {
  EXPECT_EQ(NormalizeShardCount(0), 1u);
  EXPECT_EQ(NormalizeShardCount(1), 1u);
  EXPECT_EQ(NormalizeShardCount(2), 2u);
  EXPECT_EQ(NormalizeShardCount(3), 4u);
  EXPECT_EQ(NormalizeShardCount(4), 4u);
  EXPECT_EQ(NormalizeShardCount(5), 8u);
  EXPECT_EQ(NormalizeShardCount(16), 16u);
  EXPECT_EQ(NormalizeShardCount(17), 32u);
}

TEST(ShardedTable, MixHashSpreadsSequentialKeys) {
  // Sequential keys (the minidb block-id pattern) must not pile onto one
  // shard: over 16 shards and 16k keys, every shard should see a share
  // within 3x of fair.
  ShardedKcHash<TtasLock> table(1 << 10, 1 << 20, 16);
  std::vector<int> per_shard(table.shard_count(), 0);
  for (std::uint64_t key = 0; key < 16384; ++key) {
    ++per_shard[table.ShardIndex(key)];
  }
  const int fair = 16384 / static_cast<int>(table.shard_count());
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    EXPECT_GT(per_shard[i], fair / 3) << "shard " << i << " starved";
    EXPECT_LT(per_shard[i], fair * 3) << "shard " << i << " overloaded";
  }
}

// ---------------------------------------------------------------------------
// Aggregate invariants.

TEST(ShardedTable, AggregateSizeEqualsSumOfShardSizes) {
  ShardedKcHash<TtasLock> table(1 << 8, 1 << 16, 8);
  XorShift64 rng(11);
  for (int i = 0; i < 20000; ++i) {
    table.WickedStep(rng, 4096);
  }
  std::size_t summed = 0;
  table.table().ForEachShard(
      [&](std::size_t, KcHashCore& core, ShardCounters&) { summed += core.Size(); });
  EXPECT_EQ(table.Size(), summed);
  EXPECT_TRUE(table.CheckInvariants());
  // Hits + misses account for every Get issued by the wicked mix.
  EXPECT_GT(table.hits() + table.misses(), 0u);
}

TEST(ShardedLru, PerShardCapacityBoundHoldsUnderEviction) {
  // Total capacity 64 over 4 shards = 16 per shard. Hammering 10k distinct
  // keys must never push any shard past its bound, and the aggregate past
  // the total.
  ShardedLru<TtasLock> lru(64, 4);
  ASSERT_EQ(lru.shard_count(), 4u);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    lru.Insert(key, key * 3);
  }
  std::size_t total = 0;
  lru.table().ForEachShard([&](std::size_t i, LruCore& core, ShardCounters&) {
    EXPECT_LE(core.Size(), core.capacity()) << "shard " << i;
    EXPECT_LE(core.capacity(), 16u) << "shard " << i;
    total += core.Size();
  });
  EXPECT_LE(total, 64u);
  EXPECT_EQ(lru.Size(), total);
  EXPECT_GT(lru.evictions(), 0u);
  // Every present value is still the one installed.
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const auto v = lru.Lookup(key);
    if (v.has_value()) {
      EXPECT_EQ(*v, key * 3);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: sharded vs unsharded under a recorded op trace.
//
// With capacity above the key range, eviction never fires, and per-shard
// LRU is indistinguishable from global LRU: set/get/remove must agree
// op-for-op between LockedKcHash (one lock, one core) and ShardedKcHash
// (8 partitions) replaying the same recorded trace.

struct TraceOp {
  enum Kind : std::uint8_t { kSet, kGet, kRemove } kind;
  std::uint64_t key;
  std::string value;
};

TEST(ShardedDifferential, MatchesUnshardedUnderRecordedTrace) {
  XorShift64 rng(2025);
  std::vector<TraceOp> trace;
  trace.reserve(60000);
  for (int step = 0; step < 60000; ++step) {
    const std::uint64_t key = rng.NextBelow(512);
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2:
        trace.push_back({TraceOp::kSet, key, std::to_string(step)});
        break;
      case 3:
        trace.push_back({TraceOp::kRemove, key, {}});
        break;
      default:
        trace.push_back({TraceOp::kGet, key, {}});
        break;
    }
  }

  LockedKcHash<TtasLock> unsharded(1 << 10, 100000);
  ShardedKcHash<TtasLock> sharded(1 << 10, 800000, 8);  // 100k per shard
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    switch (op.kind) {
      case TraceOp::kSet:
        unsharded.Set(op.key, op.value);
        sharded.Set(op.key, op.value);
        break;
      case TraceOp::kRemove:
        EXPECT_EQ(sharded.Remove(op.key), unsharded.Remove(op.key)) << "op " << i;
        break;
      case TraceOp::kGet: {
        const auto want = unsharded.Get(op.key);
        const auto got = sharded.Get(op.key);
        ASSERT_EQ(got.has_value(), want.has_value()) << "op " << i << " key " << op.key;
        if (got.has_value()) {
          EXPECT_EQ(*got, *want) << "op " << i;
        }
        break;
      }
    }
  }
  EXPECT_EQ(sharded.Size(), unsharded.core().Size());
  EXPECT_TRUE(sharded.CheckInvariants());
}

// The shards=1 degenerate case must also track the unsharded original
// through evicting workloads: one shard holds the whole capacity, so the
// global LRU order is identical.
TEST(ShardedDifferential, SingleShardMatchesUnshardedWithEvictions) {
  XorShift64 rng(404);
  LockedKcHash<TtasLock> unsharded(64, 200);
  ShardedKcHash<TtasLock> sharded(64, 200, 1);
  ASSERT_EQ(sharded.shard_count(), 1u);
  for (int step = 0; step < 60000; ++step) {
    const std::uint64_t key = rng.NextBelow(600);
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2: {
        const std::string value = std::to_string(step);
        unsharded.Set(key, value);
        sharded.Set(key, value);
        break;
      }
      case 3:
        EXPECT_EQ(sharded.Remove(key), unsharded.Remove(key)) << "step " << step;
        break;
      default: {
        const auto want = unsharded.Get(key);
        const auto got = sharded.Get(key);
        ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
        if (got.has_value()) {
          EXPECT_EQ(*got, *want) << "step " << step;
        }
        break;
      }
    }
  }
  EXPECT_EQ(sharded.Size(), unsharded.core().Size());
  EXPECT_EQ(sharded.evictions(), unsharded.core().evictions());
}

// ---------------------------------------------------------------------------
// Concurrent mixed-op stress under a stall watchdog.

TEST(ShardedStress, ConcurrentMixedOpsStaySane) {
  constexpr int kThreads = 8;
  const int iters = ScaledIters(40000, kThreads);
  ShardedKcHash<McsStpLock> table(1 << 8, 2000, 4);
  StallWatchdog watchdog(30s, [&] {
    std::fprintf(stderr, "sharded stress stalled: size=%zu\n", table.Size());
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng(static_cast<std::uint64_t>(t) + 77);
      for (int i = 0; i < iters; ++i) {
        table.WickedStep(rng, 5000);
        if ((i & 255) == 0) {
          watchdog.Beat();
        }
      }
      watchdog.Beat();
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_TRUE(table.CheckInvariants());
  EXPECT_LE(table.Size(), 2048u);  // per-shard 500 x 4 shards + rounding
  std::size_t summed = 0;
  table.table().ForEachShard(
      [&](std::size_t, KcHashCore& core, ShardCounters&) { summed += core.Size(); });
  EXPECT_EQ(table.Size(), summed);
}

TEST(ShardedStress, ShardedLruConcurrentValuesStayConsistent) {
  constexpr int kThreads = 6;
  const int iters = ScaledIters(20000, kThreads);
  ShardedLru<McsStpLock> lru(1000, 4);
  StallWatchdog watchdog(30s, [&] {
    std::fprintf(stderr, "sharded lru stalled: size=%zu\n", lru.Size());
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < iters; ++i) {
        const std::uint64_t k = rng.NextBelow(5000);
        if (rng.NextBelow(10) == 0) {
          lru.Insert(k, k * 2, static_cast<std::uint32_t>(t));
        } else if (!lru.Lookup(k).has_value()) {
          lru.Insert(k, k * 2, static_cast<std::uint32_t>(t));
        }
        if ((i & 255) == 0) {
          watchdog.Beat();
        }
      }
      watchdog.Beat();
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_LE(lru.Size(), 1024u);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    const auto v = lru.Lookup(k);
    if (v.has_value()) {
      EXPECT_EQ(*v, k * 2);
    }
  }
}

// The sharded minidb block cache: hits must serve the latest committed
// value even while a writer churns generations (the PR 8 hit-path fix
// under shards > 1).
TEST(ShardedStress, ShardedMiniDbReadWhileWriting) {
  MiniDb<McsStpLock> db(/*cache_blocks=*/256, /*cache_shards=*/4);
  db.Put(1, "0");
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    int v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      db.Put(1, std::to_string(++v));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = db.Get(1, static_cast<std::uint32_t>(r));
        if (!v.has_value()) {
          torn.store(true);
          break;
        }
        const std::uint64_t now = std::stoull(*v);
        if (now + 1 < last) {
          torn.store(true);
          break;
        }
        last = now;
      }
    });
  }
  std::this_thread::sleep_for(300ms);
  stop.store(true);
  writer.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_FALSE(torn.load());
  EXPECT_GT(db.reads(), 0u);
}

// ---------------------------------------------------------------------------
// Zombie-QNode gauge: timed acquisitions against per-shard locks must not
// leak husks once holders release and waiters reap.

TEST(ShardedTimed, ZombieGaugeReturnsToBaselineAfterShardLockTimeouts) {
  const std::uint64_t baseline = OutstandingZombieQNodes();
  {
    ShardedKcHash<McsStpLock> table(1 << 6, 1024, 4);
    constexpr int kWaiters = 4;
    std::atomic<bool> release{false};
    std::atomic<int> timeouts{0};
    // Holders pin every shard lock so each waiter's timed acquisition
    // expires and tombstones its QNode mid-chain.
    std::vector<std::thread> holders;
    for (std::size_t s = 0; s < table.shard_count(); ++s) {
      holders.emplace_back([&, s] {
        table.shard_lock(s).lock();
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(1ms);
        }
        table.shard_lock(s).unlock();
        // Granter-side husk reclaim happens in unlock; reap our own nodes
        // before retiring.
        const auto deadline = std::chrono::steady_clock::now() + 2s;
        while (ReapZombieQNodes() > 0 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
      });
    }
    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&, w] {
        for (std::size_t s = 0; s < table.shard_count(); ++s) {
          if (!table.shard_lock(s).TryLockFor(std::chrono::microseconds(200 + w))) {
            timeouts.fetch_add(1, std::memory_order_relaxed);
          } else {
            table.shard_lock(s).unlock();
          }
        }
        // Husks stay pinned until the holder's unlock walks the chain; reap
        // with a bounded retry so this thread retires clean.
        const auto deadline = std::chrono::steady_clock::now() + 5s;
        while (release.load(std::memory_order_acquire) == false &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(1ms);
        }
        while (ReapZombieQNodes() > 0 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
      });
    }
    std::this_thread::sleep_for(50ms);  // let the timed waits expire
    release.store(true, std::memory_order_release);
    for (auto& t : waiters) {
      t.join();
    }
    for (auto& t : holders) {
      t.join();
    }
    EXPECT_GT(timeouts.load(), 0) << "no timed acquisition expired; the "
                                     "zombie path was never exercised";
  }
  // Bounded grace for any in-flight reclaim, then the gauge must be back.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (OutstandingZombieQNodes() > baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(OutstandingZombieQNodes(), baseline);
}

// ---------------------------------------------------------------------------
// FailPoint chaos: the sharded mixed-op storm with the MCS grant/cancel
// windows widened. Skips in builds without -DMALTHUS_FAILPOINTS=ON.

TEST(ShardedChaos, MixedOpStormUnderFailPoints) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "built without MALTHUS_FAILPOINTS";
  }
  // Reuse the MALTHUS_CHAOS / MALTHUS_CHAOS_SEED plumbing: env config wins
  // (the chaos CI job's randomized seed); otherwise arm the lock-path sites
  // deterministically.
  failpoint::Reset();
  failpoint::ConfigureFromEnv();
  std::fprintf(stderr, "MALTHUS_CHAOS_SEED=%llu\n",
               static_cast<unsigned long long>(failpoint::Seed()));
  failpoint::Configure("mcs.grant",
                       {.action = failpoint::Action::kYield, .probability = 0.2});
  failpoint::Configure("mcs.cancel",
                       {.action = failpoint::Action::kYield, .probability = 0.5});

  const std::uint64_t baseline = OutstandingZombieQNodes();
  {
    constexpr int kThreads = 6;
    const int iters = ScaledIters(8000, kThreads);
    ShardedKcHash<McsStpLock> table(1 << 6, 1024, 4);
    StallWatchdog watchdog(60s, [&] {
      std::fprintf(stderr, "sharded chaos stalled: size=%zu\n", table.Size());
      for (const auto& site : failpoint::Sites()) {
        std::fprintf(stderr, "  site %s hits=%llu fires=%llu\n", site.name.c_str(),
                     static_cast<unsigned long long>(site.hits),
                     static_cast<unsigned long long>(site.fires));
      }
    });
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        XorShift64 rng(static_cast<std::uint64_t>(t) + 31);
        for (int i = 0; i < iters; ++i) {
          // Mix plain sharded ops with timed acquisitions on a random shard
          // lock, so cancellation races the widened grant window.
          table.WickedStep(rng, 2048);
          if (rng.NextBelow(16) == 0) {
            const std::size_t s = rng.NextBelow(table.shard_count());
            if (table.shard_lock(s).TryLockFor(std::chrono::microseconds(50))) {
              table.shard_lock(s).unlock();
            }
          }
          if ((i & 127) == 0) {
            watchdog.Beat();
          }
        }
        const auto deadline = std::chrono::steady_clock::now() + 5s;
        while (ReapZombieQNodes() > 0 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
          watchdog.Beat();
        }
        watchdog.Beat();
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    EXPECT_TRUE(table.CheckInvariants());
  }
  failpoint::Reset();
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (OutstandingZombieQNodes() > baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(OutstandingZombieQNodes(), baseline);
}

}  // namespace
}  // namespace malthus
