// Deadline-aware acquisition: TryLockFor/TryLockUntil across every lock
// family, plus timed semaphore/condvar/throttle/queue waits.
//
// Covers the three behaviors a timed lock must get right:
//   1. an uncontended timed acquire succeeds immediately (even with a
//      deadline already in the past — the fast path never consults the
//      clock);
//   2. a timed acquire against a held lock returns false at the deadline
//      and leaves the queue healthy (subsequent acquires work, cancelled
//      QNodes are reclaimed and reaped — no zombie leaks);
//   3. a cancel storm at oversubscription (every thread mixing timed and
//      blocking acquires with tiny random deadlines) preserves mutual
//      exclusion and drains all zombie nodes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "src/core/cr_condvar.h"
#include "src/core/cr_semaphore.h"
#include "src/core/lifocr.h"
#include "src/core/loiter.h"
#include "src/core/mcscr.h"
#include "src/core/mcscrn.h"
#include "src/core/throttle.h"
#include "src/locks/any_lock.h"
#include "src/locks/lock_base.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/locks/tas.h"
#include "src/sync/blocking_queue.h"
#include "tests/contention.h"
#include "tests/watchdog.h"

namespace malthus {
namespace {

using test::ScaledIters;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Generic per-family helpers.

template <typename L>
void UncontendedTimedAcquire() {
  L lock;
  ASSERT_TRUE(lock.TryLockFor(1s));
  lock.unlock();
  // Past deadline, free lock: the enqueue wins before any deadline check.
  ASSERT_TRUE(lock.TryLockUntil(std::chrono::steady_clock::now() - 1s));
  lock.unlock();
}

// Holds the lock on the main thread while a second thread runs a timed
// acquire to its deadline; then lets the canceller reap its zombie QNode
// (reaping happens on the owning thread's next arena acquire).
template <typename L>
void TimesOutWhileHeld() {
  const std::uint64_t zombies_before = OutstandingZombieQNodes();
  {
    L lock;
    std::atomic<bool> timed_out{false};
    std::atomic<bool> unlocked{false};
    lock.lock();
    std::thread waiter([&] {
      const auto t0 = std::chrono::steady_clock::now();
      EXPECT_FALSE(lock.TryLockFor(50ms));
      EXPECT_GE(std::chrono::steady_clock::now() - t0, 45ms);
      timed_out.store(true, std::memory_order_release);
      while (!unlocked.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(1ms);
      }
      // The unlock above reclaimed our cancelled node; this acquire reaps it.
      lock.lock();
      lock.unlock();
    });
    while (!timed_out.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(1ms);
    }
    lock.unlock();  // Walks over the cancelled husk and reclaims it.
    unlocked.store(true, std::memory_order_release);
    waiter.join();
    // Queue must be healthy after the cancellation.
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(OutstandingZombieQNodes(), zombies_before);
}

// Oversubscribed mixed storm: timed acquires with tiny random deadlines
// interleaved with blocking acquires. Asserts mutual exclusion throughout
// and full zombie drain afterwards.
template <typename L>
void CancelStorm() {
  const std::uint64_t zombies_before = OutstandingZombieQNodes();
  {
    L lock;
    const int threads = 8;
    const int iters = ScaledIters(2000, threads);
    std::atomic<int> in_cs{0};
    std::atomic<int> remaining{threads};
    test::StallWatchdog watchdog(20s, [] {
      std::fprintf(stderr, "outstanding zombie qnodes: %llu\n",
                   static_cast<unsigned long long>(OutstandingZombieQNodes()));
    });
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        std::mt19937 rng(static_cast<unsigned>(t) * 7919u + 13u);
        std::uniform_int_distribution<int> wait_us(0, 50);
        for (int i = 0; i < iters; ++i) {
          watchdog.Beat();
          bool acquired;
          if (i % 4 == 0) {
            lock.lock();
            acquired = true;
          } else {
            acquired = lock.TryLockFor(std::chrono::microseconds(wait_us(rng)));
          }
          if (acquired) {
            EXPECT_EQ(in_cs.fetch_add(1, std::memory_order_acq_rel), 0);
            in_cs.fetch_sub(1, std::memory_order_acq_rel);
            lock.unlock();
          }
        }
        // Rendezvous, then reap: once every worker is done looping, all
        // cancelled nodes have been reclaimed by the final unlock walks,
        // and one more acquire returns this thread's zombies to its arena.
        remaining.fetch_sub(1, std::memory_order_acq_rel);
        while (remaining.load(std::memory_order_acquire) > 0) {
          std::this_thread::sleep_for(1ms);
        }
        lock.lock();
        lock.unlock();
      });
    }
    for (auto& th : pool) {
      th.join();
    }
  }
  EXPECT_EQ(OutstandingZombieQNodes(), zombies_before);
}

// ---------------------------------------------------------------------------
// Per-family instantiations.

#define MALTHUS_TIMED_LOCK_SUITE(Name, Type)                        \
  TEST(TimedLock##Name, Uncontended) { UncontendedTimedAcquire<Type>(); } \
  TEST(TimedLock##Name, TimesOutWhileHeld) { TimesOutWhileHeld<Type>(); } \
  TEST(TimedLock##Name, CancelStorm) { CancelStorm<Type>(); }

MALTHUS_TIMED_LOCK_SUITE(McsSpin, McsSpinLock)
MALTHUS_TIMED_LOCK_SUITE(McsStp, McsStpLock)
MALTHUS_TIMED_LOCK_SUITE(McscrSpin, McscrSpinLock)
MALTHUS_TIMED_LOCK_SUITE(McscrStp, McscrStpLock)
MALTHUS_TIMED_LOCK_SUITE(LifoCrSpin, LifoCrSpinLock)
MALTHUS_TIMED_LOCK_SUITE(LifoCrStp, LifoCrStpLock)
MALTHUS_TIMED_LOCK_SUITE(McscrnSpin, McscrnSpinLock)
MALTHUS_TIMED_LOCK_SUITE(McscrnStp, McscrnStpLock)
MALTHUS_TIMED_LOCK_SUITE(Loiter, LoiterLock)
MALTHUS_TIMED_LOCK_SUITE(PthreadStyle, PthreadStyleMutex)
MALTHUS_TIMED_LOCK_SUITE(Ttas, TtasLock)
MALTHUS_TIMED_LOCK_SUITE(Throttled, ThrottledLock<TtasLock>)

#undef MALTHUS_TIMED_LOCK_SUITE

// Timeout counters tick where the family exposes them.
TEST(TimedLockCounters, TimeoutsCounted) {
  McsStpLock lock;
  lock.lock();
  std::thread waiter([&] { EXPECT_FALSE(lock.TryLockFor(10ms)); });
  waiter.join();
  EXPECT_EQ(lock.timeouts(), 1u);
  lock.unlock();
}

// ---------------------------------------------------------------------------
// AnyLock virtual surface (satellite: conservative poll default + native
// forwarding through LockAdapter).

TEST(AnyLockTimed, UncontendedAllRegistryLocks) {
  for (const auto& name : AllLockNames()) {
    auto lock = MakeLock(name);
    ASSERT_NE(lock, nullptr) << name;
    EXPECT_TRUE(lock->TryLockFor(1s)) << name;
    lock->unlock();
  }
}

TEST(AnyLockTimed, TimesOutWhileHeldAllRegistryLocks) {
  for (const auto& name : AllLockNames()) {
    // "null" cannot be held; "clh" has neither a native timed path nor
    // try_lock, so its adapter degrades to a blocking acquire (documented).
    if (name == "null" || name == "clh") {
      continue;
    }
    auto lock = MakeLock(name);
    ASSERT_NE(lock, nullptr) << name;
    lock->lock();
    std::thread waiter([&] { EXPECT_FALSE(lock->TryLockFor(30ms)) << name; });
    waiter.join();
    lock->unlock();
    lock->lock();
    lock->unlock();
  }
}

// ---------------------------------------------------------------------------
// Timed semaphore / condvar / blocking queue.

TEST(TimedSemaphore, PermitAvailable) {
  CrSemaphore sem(1);
  EXPECT_TRUE(sem.TryWaitFor(1s));
  EXPECT_EQ(sem.Count(), 0);
}

TEST(TimedSemaphore, TimesOutEmpty) {
  CrSemaphore sem(0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(sem.TryWaitFor(30ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
  EXPECT_EQ(sem.WaiterCount(), 0u);  // The timed waiter unlinked itself.
  EXPECT_EQ(sem.Timeouts(), 1u);
  // A later Post must bank the permit, not signal the departed waiter.
  sem.Post();
  EXPECT_EQ(sem.Count(), 1);
}

TEST(TimedSemaphore, GrantBeatsTimeout) {
  // A poster races many short-deadline waiters; every permit posted must be
  // consumed by exactly one waiter (none lost to a cancelling waiter).
  CrSemaphore sem(0);
  const int waiters = 4;
  const int rounds = ScaledIters(500, waiters + 1);
  std::atomic<int> consumed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < waiters; ++t) {
    pool.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (sem.TryWaitFor(std::chrono::microseconds(50))) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < rounds; ++i) {
    sem.Post();
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  // Every posted permit is either consumed or still banked in the count.
  while (consumed.load(std::memory_order_acquire) + sem.Count() < rounds) {
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) {
    th.join();
  }
  EXPECT_EQ(consumed.load() + sem.Count(), rounds);
}

TEST(TimedCondVar, TimesOutAndUnlinks) {
  CrCondVar cv;
  McsStpLock lock;
  lock.lock();
  EXPECT_FALSE(cv.WaitFor(lock, 30ms));
  lock.unlock();
  EXPECT_EQ(cv.WaiterCount(), 0u);
  EXPECT_EQ(cv.Timeouts(), 1u);
}

TEST(TimedCondVar, SignalBeatsTimeout) {
  CrCondVar cv;
  McsStpLock lock;
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    lock.lock();
    const bool ok = cv.WaitUntil(lock, std::chrono::steady_clock::now() + 5s,
                                 [&] { return flag.load(std::memory_order_acquire); });
    lock.unlock();
    EXPECT_TRUE(ok);
  });
  while (cv.WaiterCount() == 0) {
    std::this_thread::sleep_for(1ms);
  }
  lock.lock();
  flag.store(true, std::memory_order_release);
  lock.unlock();
  cv.Signal();
  waiter.join();
}

TEST(TimedBlockingQueue, PopTimesOutEmptyPushTimesOutFull) {
  BoundedBlockingQueue<int, McsStpLock> q(1);
  int out = 0;
  EXPECT_FALSE(q.PopFor(&out, 20ms));
  EXPECT_TRUE(q.PushFor(1, 20ms));
  EXPECT_FALSE(q.PushFor(2, 20ms));  // Full.
  EXPECT_TRUE(q.PopFor(&out, 20ms));
  EXPECT_EQ(out, 1);
}

TEST(TimedBlockingQueue, TimedProducerConsumerFlow) {
  BoundedBlockingQueue<int, McsStpLock> q(4);
  const int items = ScaledIters(5000, 2);
  std::thread producer([&] {
    for (int i = 0; i < items; ++i) {
      while (!q.PushFor(i, 1ms)) {
      }
    }
  });
  long long sum = 0;
  int received = 0;
  while (received < items) {
    int v;
    if (q.PopFor(&v, 1ms)) {
      sum += v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(items) * (items - 1) / 2);
}

}  // namespace
}  // namespace malthus
