// kchash substrate: CRUD, LRU capacity eviction, bucket/LRU invariants, and
// the locked wicked-mix stress.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/kchash/kchash.h"
#include "src/locks/pthread_style.h"

namespace malthus {
namespace {

TEST(KcHash, SetGetRemove) {
  KcHashCore db(64, 100);
  db.Set(1, "one");
  db.Set(2, "two");
  ASSERT_TRUE(db.Get(1).has_value());
  EXPECT_EQ(*db.Get(1), "one");
  EXPECT_TRUE(db.Remove(1));
  EXPECT_FALSE(db.Get(1).has_value());
  EXPECT_FALSE(db.Remove(1));
  EXPECT_EQ(db.Size(), 1u);
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(KcHash, OverwriteKeepsSingleRecord) {
  KcHashCore db(64, 100);
  db.Set(5, "a");
  db.Set(5, "b");
  EXPECT_EQ(db.Size(), 1u);
  EXPECT_EQ(*db.Get(5), "b");
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(KcHash, CapacityEvictsColdestFirst) {
  KcHashCore db(16, 3);
  db.Set(1, "a");
  db.Set(2, "b");
  db.Set(3, "c");
  db.Get(1);       // 1 becomes MRU; 2 is now coldest.
  db.Set(4, "d");  // Evicts 2.
  EXPECT_TRUE(db.Get(1).has_value());
  EXPECT_FALSE(db.Get(2).has_value());
  EXPECT_TRUE(db.Get(3).has_value());
  EXPECT_TRUE(db.Get(4).has_value());
  EXPECT_EQ(db.evictions(), 1u);
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(KcHash, SizeNeverExceedsCapacity) {
  KcHashCore db(32, 50);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    db.Set(k, "v");
    ASSERT_LE(db.Size(), 50u);
  }
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(KcHash, CollidingKeysChainCorrectly) {
  KcHashCore db(1, 100);  // Single bucket: everything collides.
  for (std::uint64_t k = 0; k < 50; ++k) {
    db.Set(k, std::to_string(k));
  }
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(db.Get(k).has_value());
    EXPECT_EQ(*db.Get(k), std::to_string(k));
  }
  for (std::uint64_t k = 0; k < 50; k += 2) {
    EXPECT_TRUE(db.Remove(k));
  }
  EXPECT_EQ(db.Size(), 25u);
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(LockedKcHash, WickedMixUnderContention) {
  LockedKcHash<McscrStpLock> db(1 << 12, 10000);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng(static_cast<std::uint64_t>(t) * 7 + 1);
      for (int i = 0; i < 30000; ++i) {
        db.WickedStep(rng, 100000);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_TRUE(db.core().CheckInvariants());
  EXPECT_LE(db.core().Size(), 10000u);
}

TEST(LockedKcHash, WorksWithPthreadStyleMutex) {
  LockedKcHash<PthreadStyleMutex> db(1 << 10, 1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng(static_cast<std::uint64_t>(t) + 99);
      for (int i = 0; i < 10000; ++i) {
        db.WickedStep(rng, 5000);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_TRUE(db.core().CheckInvariants());
}

}  // namespace
}  // namespace malthus
