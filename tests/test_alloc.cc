// Splay-heap allocator: split/coalesce correctness, boundary-tag integrity,
// exhaustion behaviour, pattern integrity, and the locked multi-thread form.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/alloc/splay_heap.h"
#include "src/core/mcscr.h"
#include "src/rng/xorshift.h"

namespace malthus {
namespace {

TEST(SplayHeap, AllocateFreeRoundTrip) {
  SplayHeap heap(1 << 20);
  void* p = heap.Allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  heap.Free(p);
  EXPECT_TRUE(heap.CheckConsistency());
  EXPECT_EQ(heap.FreeBlockCount(), 1u);  // Fully coalesced back.
}

TEST(SplayHeap, DistinctAllocationsDoNotOverlap) {
  SplayHeap heap(1 << 20);
  std::vector<std::pair<char*, std::size_t>> blocks;
  XorShift64 rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = 16 + rng.NextBelow(500);
    char* p = static_cast<char*>(heap.Allocate(n));
    ASSERT_NE(p, nullptr);
    std::memset(p, static_cast<int>(i & 0xFF), n);
    blocks.emplace_back(p, n);
  }
  // Verify every block still holds its pattern (no overlap/corruption).
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = 0; j < blocks[i].second; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(blocks[i].first[j]),
                static_cast<unsigned char>(i & 0xFF));
    }
  }
  for (auto& [p, n] : blocks) {
    heap.Free(p);
  }
  EXPECT_TRUE(heap.CheckConsistency());
  EXPECT_EQ(heap.FreeBlockCount(), 1u);
}

TEST(SplayHeap, CoalescesWithBothNeighbours) {
  SplayHeap heap(1 << 16);
  void* a = heap.Allocate(256);
  void* b = heap.Allocate(256);
  void* c = heap.Allocate(256);
  ASSERT_NE(c, nullptr);
  heap.Free(a);
  heap.Free(c);
  EXPECT_TRUE(heap.CheckConsistency());
  heap.Free(b);  // Middle free must merge a+b+c (and the arena tail).
  EXPECT_TRUE(heap.CheckConsistency());
  EXPECT_EQ(heap.FreeBlockCount(), 1u);
}

TEST(SplayHeap, ExhaustionReturnsNullNotUb) {
  SplayHeap heap(4096);
  std::vector<void*> blocks;
  while (void* p = heap.Allocate(256)) {
    blocks.push_back(p);
  }
  EXPECT_FALSE(blocks.empty());
  EXPECT_EQ(heap.Allocate(256), nullptr);
  for (void* p : blocks) {
    heap.Free(p);
  }
  EXPECT_TRUE(heap.CheckConsistency());
  EXPECT_NE(heap.Allocate(256), nullptr);  // Usable again.
}

TEST(SplayHeap, BestFitPrefersSmallestSufficientBlock) {
  SplayHeap heap(1 << 16);
  // Carve the arena into two free islands of different sizes.
  void* a = heap.Allocate(512);   // island boundary pins
  void* big = heap.Allocate(4096);
  void* b = heap.Allocate(512);
  void* small = heap.Allocate(1024);
  void* c = heap.Allocate(512);
  ASSERT_NE(c, nullptr);
  heap.Free(big);
  heap.Free(small);
  // A 900-byte request fits both islands; best-fit must take the 1024 one.
  void* p = heap.Allocate(900);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p, small);  // Reused the smaller island's storage.
  heap.Free(p);
  heap.Free(a);
  heap.Free(b);
  heap.Free(c);
  EXPECT_TRUE(heap.CheckConsistency());
}

TEST(SplayHeap, RandomChurnKeepsInvariants) {
  SplayHeap heap(1 << 20);
  XorShift64 rng(17);
  std::vector<std::pair<void*, std::size_t>> live;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng.NextBelow(2) == 0) {
      const std::size_t n = 16 + rng.NextBelow(2000);
      void* p = heap.Allocate(n);
      if (p != nullptr) {
        live.emplace_back(p, n);
      }
    } else {
      const std::size_t i = rng.NextBelow(live.size());
      heap.Free(live[i].first);
      live[i] = live.back();
      live.pop_back();
    }
  }
  EXPECT_TRUE(heap.CheckConsistency());
  for (auto& [p, n] : live) {
    heap.Free(p);
  }
  EXPECT_TRUE(heap.CheckConsistency());
  EXPECT_EQ(heap.FreeBlockCount(), 1u);
}

TEST(SplayHeap, ZeroAndNullEdgeCases) {
  SplayHeap heap(1 << 16);
  heap.Free(nullptr);  // No-op.
  void* p = heap.Allocate(0);  // Minimum block, still valid storage.
  ASSERT_NE(p, nullptr);
  heap.Free(p);
  EXPECT_TRUE(heap.CheckConsistency());
}

TEST(SplayHeap, SplayTreeActuallySplays) {
  SplayHeap heap(1 << 20);
  void* p = heap.Allocate(64);
  heap.Free(p);
  EXPECT_GT(heap.splay_operations(), 0u);
}

TEST(LockedHeap, MmicroStyleMultithreadedChurn) {
  // The mmicro inner loop: allocate and zero a batch, then free it, all
  // through the central lock.
  LockedHeap<McscrStpLock> heap(64u << 20);
  constexpr int kThreads = 8;
  constexpr int kBatches = 30;
  constexpr int kBatch = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      std::vector<void*> batch(kBatch);
      for (int r = 0; r < kBatches; ++r) {
        for (int i = 0; i < kBatch; ++i) {
          batch[static_cast<std::size_t>(i)] = heap.Allocate(1000);
          ASSERT_NE(batch[static_cast<std::size_t>(i)], nullptr);
          std::memset(batch[static_cast<std::size_t>(i)], 0, 1000);
        }
        for (int i = 0; i < kBatch; ++i) {
          heap.Free(batch[static_cast<std::size_t>(i)]);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_TRUE(heap.heap().CheckConsistency());
  EXPECT_EQ(heap.heap().FreeBlockCount(), 1u);
}

}  // namespace
}  // namespace malthus
