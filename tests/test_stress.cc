// Cross-cutting stress tests: concurrent signal/broadcast storms on the
// condvar, mixed lock()/try_lock() contention on every algorithm, node-pool
// recycling across many locks, and semaphore post/wait storms.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/cr_condvar.h"
#include "src/core/cr_semaphore.h"
#include "src/core/mcscr.h"
#include "src/locks/any_lock.h"
#include "src/locks/mcs.h"
#include "src/locks/tas.h"

namespace malthus {
namespace {

TEST(CondVarStress, ConcurrentSignalersAndBroadcasters) {
  TtasLock lock;
  CrCondVar cv(CrCondVarOptions{.append_probability = 0.5});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> wakeups{0};
  std::atomic<int> waiters_exited{0};
  constexpr int kWaiters = 6;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWaiters; ++w) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        lock.lock();
        if (!stop.load(std::memory_order_acquire)) {
          cv.Wait(lock);
          wakeups.fetch_add(1, std::memory_order_relaxed);
        }
        lock.unlock();
      }
      waiters_exited.fetch_add(1, std::memory_order_release);
    });
  }
  // Two signalers and one broadcaster hammer the condvar concurrently.
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        cv.Signal();
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cv.Broadcast();
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  // Flush until every waiter has actually exited its loop, not for a fixed
  // number of broadcasts: a waiter that passed its stop check can be
  // descheduled *before* Enqueue for arbitrarily long on a busy 1-CPU host
  // (its peers spin on the TTAS lock), then park after the last of a
  // bounded broadcast volley — a permanent hang this test used to race.
  while (waiters_exited.load(std::memory_order_acquire) < kWaiters) {
    cv.Broadcast();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(wakeups.load(), 0u);
  EXPECT_EQ(cv.WaiterCount(), 0u);
}

class MixedTryLockStress : public ::testing::TestWithParam<std::string> {};

TEST_P(MixedTryLockStress, LockAndTryLockInterleave) {
  // try_lock paths must compose with blocking lock() paths without breaking
  // exclusion. Only algorithms exposing try_lock through templates here.
  const std::string& name = GetParam();
  std::uint64_t counter = 0;
  std::uint64_t expected = 0;

  auto run = [&](auto& lock) {
    std::atomic<std::uint64_t> try_successes{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 8000; ++i) {
          lock.lock();
          counter = counter + 1;
          lock.unlock();
        }
      });
      threads.emplace_back([&] {
        for (int i = 0; i < 8000; ++i) {
          if (lock.try_lock()) {
            counter = counter + 1;
            try_successes.fetch_add(1, std::memory_order_relaxed);
            lock.unlock();
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    expected = 4u * 8000u + try_successes.load();
  };

  if (name == "tas") {
    TtasLock lock;
    run(lock);
  } else if (name == "mcs-stp") {
    McsStpLock lock;
    run(lock);
  } else if (name == "mcscr-stp") {
    McscrStpLock lock;
    run(lock);
  } else {
    GTEST_SKIP() << "no try_lock variant wired for " << name;
  }
  EXPECT_EQ(counter, expected);
}

INSTANTIATE_TEST_SUITE_P(Locks, MixedTryLockStress,
                         ::testing::Values("tas", "mcs-stp", "mcscr-stp"),
                         [](const ::testing::TestParamInfo<std::string>& pinfo) {
                           std::string name = pinfo.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(NodePool, RecyclesAcrossManyLocks) {
  // A thread acquiring hundreds of distinct MCS-family locks in sequence
  // reuses pooled nodes; interleaved contention must not alias them.
  constexpr int kLocks = 200;
  std::vector<std::unique_ptr<McscrStpLock>> locks;
  for (int i = 0; i < kLocks; ++i) {
    locks.push_back(std::make_unique<McscrStpLock>());
  }
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      XorShift64 rng(static_cast<std::uint64_t>(t) + 3);
      for (int i = 0; i < 20000; ++i) {
        auto& lock = *locks[rng.NextBelow(kLocks)];
        lock.lock();
        total.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(total.load(), 4u * 20000u);
  for (auto& lock : locks) {
    EXPECT_EQ(lock->passive_set_size(), 0u);
  }
}

TEST(NodePool, DeepNestingAcrossLocks) {
  // Hold a chain of locks simultaneously: each nesting level pops another
  // node from the thread's pool.
  constexpr int kDepth = 16;
  std::vector<std::unique_ptr<McsStpLock>> chain;
  for (int i = 0; i < kDepth; ++i) {
    chain.push_back(std::make_unique<McsStpLock>());
  }
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> total{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        for (auto& lock : chain) {
          lock->lock();
        }
        total.fetch_add(1, std::memory_order_relaxed);
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
          (*it)->unlock();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(total.load(), 4u * 2000u);
}

TEST(SemaphoreStress, PostWaitStormConservesPermits) {
  CrSemaphore sem(0, CrSemaphoreOptions{.append_probability = 0.5});
  constexpr int kThreads = 6;
  constexpr int kRounds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        sem.Post();
        sem.Wait();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(sem.Count(), 0);
  EXPECT_EQ(sem.WaiterCount(), 0u);
}

TEST(LockChurn, CreateDestroyUnderUse) {
  // Locks created and destroyed repeatedly (quiescent at destruction) must
  // not leak nodes or corrupt the thread pools.
  for (int round = 0; round < 50; ++round) {
    auto lock = std::make_unique<McscrStpLock>();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          lock->lock();
          lock->unlock();
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_EQ(lock->passive_set_size(), 0u);
  }
}

}  // namespace
}  // namespace malthus
