// Sync constructs: bounded blocking queue, buffer pools (condvar and
// semaphore variants), and the thread pool's activation-set behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/locks/mcs.h"
#include "src/metrics/fairness.h"
#include "src/sync/blocking_queue.h"
#include "src/sync/buffer_pool.h"
#include "src/sync/thread_pool.h"

namespace malthus {
namespace {

TEST(BlockingQueue, FifoContentIntegritySingleConsumer) {
  BoundedBlockingQueue<int, McsStpLock> queue(64);
  constexpr int kTotal = 10000;
  std::thread producer([&] {
    for (int i = 0; i < kTotal; ++i) {
      queue.Push(i);
    }
  });
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(queue.Pop(), i);  // Single producer + FIFO queue: exact order.
  }
  producer.join();
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(BlockingQueue, CapacityBoundsProducers) {
  BoundedBlockingQueue<int, McsStpLock> queue(4);
  for (int i = 0; i < 4; ++i) {
    queue.Push(i);
  }
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.Push(99);  // Must block on the full queue.
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GT(queue.futile_waits(), 0u);
}

TEST(BlockingQueue, ManyProducersManyConsumersConserveValues) {
  BoundedBlockingQueue<int, McscrStpLock> queue(128);
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 5000;
  std::atomic<std::uint64_t> sum_consumed{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (true) {
        const int n = consumed.fetch_add(1);
        if (n >= kProducers * kPerProducer) {
          break;
        }
        sum_consumed.fetch_add(static_cast<std::uint64_t>(queue.Pop()));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::uint64_t total = static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(sum_consumed.load(), total * (total - 1) / 2);
}

TEST(BlockingQueue, TryPopDoesNotBlock) {
  BoundedBlockingQueue<int, McsStpLock> queue(8);
  int out = -1;
  EXPECT_FALSE(queue.TryPop(&out));
  queue.Push(7);
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 7);
}

TEST(BufferPool, NeverExceedsCapacityAndAllBuffersReturn) {
  BufferPool<McsStpLock> pool(5, 4096, CrCondVarOptions{});
  std::atomic<int> outstanding{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        PoolBuffer* b = pool.Acquire();
        const int now = outstanding.fetch_add(1) + 1;
        if (now > 5) {
          violated.store(true);
        }
        b->data[static_cast<std::size_t>(i) % b->data.size()] = static_cast<std::uint32_t>(i);
        outstanding.fetch_sub(1);
        pool.Release(b);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(pool.AvailableCount(), 5u);
}

TEST(BufferPool, LifoAllocationReusesWarmBuffer) {
  BufferPool<McsStpLock> pool(3, 1024, CrCondVarOptions{});
  PoolBuffer* a = pool.Acquire();
  pool.Release(a);
  PoolBuffer* b = pool.Acquire();
  EXPECT_EQ(a, b);  // LIFO: the just-released buffer comes back first.
  pool.Release(b);
}

TEST(SemaphoreBufferPool, EquivalentSemantics) {
  SemaphoreBufferPool pool(5, 4096, CrSemaphoreOptions{.append_probability = 1.0 / 1000});
  std::atomic<int> outstanding{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        PoolBuffer* b = pool.Acquire();
        const int now = outstanding.fetch_add(1) + 1;
        if (now > 5) {
          violated.store(true);
        }
        outstanding.fetch_sub(1);
        pool.Release(b);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violated.load());
}

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4, CrCondVarOptions{});
  std::atomic<int> executed{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { executed.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(executed.load(), 1000);
}

TEST(ThreadPool, TaskCountsSumToSubmissions) {
  ThreadPool pool(4, CrCondVarOptions{});
  std::atomic<int> executed{0};
  for (int i = 0; i < 2000; ++i) {
    pool.Submit([&] { executed.fetch_add(1); });
  }
  pool.Drain();
  const auto counts = pool.TaskCountsPerWorker();
  const std::uint64_t sum = std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(sum, 2000u);
}

TEST(ThreadPool, LifoDisciplineConcentratesActivation) {
  // A slow trickle of tasks: a mostly-LIFO pool keeps re-waking the same
  // few workers, while a FIFO pool round-robins across all of them.
  auto activation_gini = [](double append_probability) {
    ThreadPool pool(8, CrCondVarOptions{.append_probability = append_probability});
    for (int i = 0; i < 600; ++i) {
      pool.Submit([] {});
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      pool.Drain();
    }
    const auto counts = pool.TaskCountsPerWorker();
    std::vector<double> values(counts.begin(), counts.end());
    return GiniCoefficient(values);
  };
  const double fifo_gini = activation_gini(1.0);
  const double lifo_gini = activation_gini(1.0 / 1000);
  EXPECT_GT(lifo_gini, fifo_gini);
}

TEST(ThreadPool, ShutdownWithPendingWorkCompletes) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2, CrCondVarOptions{});
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        executed.fetch_add(1);
      });
    }
    pool.Drain();
  }
  EXPECT_EQ(executed.load(), 100);
}

}  // namespace
}  // namespace malthus
