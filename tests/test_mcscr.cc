// MCSCR-specific behaviour: culling, work conservation, long-term fairness,
// LWSS reduction versus classic MCS, MCS degeneracy, and option handling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/locks/mcs.h"
#include "src/metrics/admission_log.h"
#include "tests/contention.h"

namespace malthus {
namespace {

// Runs `threads` contenders hammering `lock` for `duration`, returning the
// admission report. `Lock` must expose set_recorder.
template <typename Lock>
FairnessReport Hammer(Lock& lock, int threads, std::chrono::milliseconds duration,
                      std::vector<std::uint64_t>* per_thread_acquires = nullptr) {
  AdmissionLog log(1 << 20);
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::uint64_t> acquires(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
        ++local;
      }
      acquires[static_cast<std::size_t>(t)] = local;
    });
  }
  // Barrier: attach the recorder only once all threads are circulating, so
  // startup skew does not pollute the admission history.
  while (ready.load() != threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.set_recorder(&log);
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  lock.set_recorder(nullptr);
  if (per_thread_acquires != nullptr) {
    *per_thread_acquires = acquires;
  }
  return log.Report(1000);
}

TEST(Mcscr, CullingEngagesUnderContention) {
  McscrStpLock lock;
  Hammer(lock, 8, std::chrono::milliseconds(200));
  EXPECT_GT(lock.culls(), 0u);
}

TEST(Mcscr, PassiveSetDrainsAtQuiescence) {
  McscrStpLock lock;
  Hammer(lock, 8, std::chrono::milliseconds(200));
  // Work conservation: once all threads have stopped and released, nobody
  // may be stranded in the passive set.
  EXPECT_EQ(lock.passive_set_size(), 0u);
  lock.lock();  // Lock must still be acquirable.
  lock.unlock();
}

TEST(Mcscr, ReducesLwssRelativeToMcs) {
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "LWSS restriction is concurrency-emergent (see tests/contention.h)";
  }
  const int threads = 12;
  const auto duration = std::chrono::milliseconds(300);

  McsStpLock mcs;
  const FairnessReport mcs_report = Hammer(mcs, threads, duration);

  McscrStpLock mcscr;
  const FairnessReport cr_report = Hammer(mcscr, threads, duration);

  // MCS admits round-robin: LWSS == thread count. CR clamps the circulating
  // set far below that.
  EXPECT_GT(mcs_report.average_lwss, threads * 0.8);
  EXPECT_LT(cr_report.average_lwss, mcs_report.average_lwss * 0.7);
  EXPECT_LT(cr_report.mttr, mcs_report.mttr);
}

TEST(Mcscr, LongTermFairnessReachesEveryThread) {
  McscrOptions opts;
  opts.fairness_one_in = 200;
  McscrStpLock lock(opts);
  std::vector<std::uint64_t> acquires;
  Hammer(lock, 8, std::chrono::milliseconds(400), &acquires);
  for (std::size_t t = 0; t < acquires.size(); ++t) {
    EXPECT_GT(acquires[t], 0u) << "thread " << t << " starved";
  }
  EXPECT_GT(lock.fairness_grants(), 0u);
}

TEST(Mcscr, FairnessDisabledAllowsStarvationButCullsHard) {
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "LWSS restriction is concurrency-emergent (see tests/contention.h)";
  }
  McscrOptions opts;
  opts.fairness_one_in = 0;  // Pure CR.
  McscrStpLock lock(opts);
  const FairnessReport report = Hammer(lock, 8, std::chrono::milliseconds(200));
  EXPECT_EQ(lock.fairness_grants(), 0u);
  // The ACS should be tiny: the owner plus about one waiter circulating.
  EXPECT_LT(report.average_lwss, 5.0);
}

TEST(Mcscr, CullLimitZeroDegeneratesToMcs) {
  McscrOptions opts;
  opts.cull_limit = 0;
  opts.fairness_one_in = 0;
  McscrStpLock lock(opts);
  const int threads = 8;
  const FairnessReport report = Hammer(lock, threads, std::chrono::milliseconds(200));
  EXPECT_EQ(lock.culls(), 0u);
  EXPECT_EQ(lock.passive_set_size(), 0u);
  // Round-robin admission: LWSS equals the thread count.
  EXPECT_GT(report.average_lwss, threads * 0.8);
}

TEST(Mcscr, DrainCullingConvergesFaster) {
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "LWSS restriction is concurrency-emergent (see tests/contention.h)";
  }
  McscrOptions drain;
  drain.cull_limit = UINT32_MAX;
  drain.fairness_one_in = 0;
  McscrStpLock lock(drain);
  const FairnessReport report = Hammer(lock, 12, std::chrono::milliseconds(200));
  EXPECT_GT(lock.culls(), 0u);
  EXPECT_LT(report.average_lwss, 5.0);
}

TEST(Mcscr, UncontendedPathMatchesMcsExactly) {
  McscrStpLock lock;
  for (int i = 0; i < 200000; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(lock.culls(), 0u);
  EXPECT_EQ(lock.reprovisions(), 0u);
  EXPECT_EQ(lock.fairness_grants(), 0u);
}

TEST(Mcscr, SpinVariantAlsoRestricts) {
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "LWSS restriction is concurrency-emergent (see tests/contention.h)";
  }
  McscrSpinLock lock;
  const FairnessReport report = Hammer(lock, 8, std::chrono::milliseconds(200));
  EXPECT_GT(lock.culls(), 0u);
  EXPECT_LT(report.average_lwss, 6.0);
}

TEST(Mcscr, MttrTracksAcsSize) {
  // Under CR the median reacquire distance reflects the small ACS, not the
  // full population (paper Figure 4: MTTR 3 vs 31 at 32 threads).
  McscrStpLock lock;
  const FairnessReport report = Hammer(lock, 12, std::chrono::milliseconds(300));
  EXPECT_LT(report.mttr, 6.0);
}

TEST(Mcscr, ManyLocksIndependentPassiveSets) {
  // CR state is per-lock; hammering two locks from disjoint thread groups
  // must not interfere.
  McscrStpLock lock_a;
  McscrStpLock lock_b;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock_a.lock();
        lock_a.unlock();
      }
    });
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock_b.lock();
        lock_b.unlock();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(lock_a.passive_set_size(), 0u);
  EXPECT_EQ(lock_b.passive_set_size(), 0u);
}

TEST(Mcscr, NestedMcscrLocksDoNotDeadlockOrCorrupt) {
  // A thread holding one MCSCR lock can block on a second; queue nodes come
  // from the per-thread pool and must not alias.
  McscrStpLock outer;
  McscrStpLock inner;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        outer.lock();
        inner.lock();
        ++counter;
        inner.unlock();
        outer.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6u * 3000u);
}

TEST(Mcscr, AnticipatoryWarmupPreservesCorrectness) {
  McscrOptions opts;
  opts.anticipatory_warmup = true;
  McscrStpLock lock(opts);
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8u * 10000u);
  EXPECT_EQ(lock.passive_set_size(), 0u);
}

TEST(Mcscr, AnticipatoryWarmupFiresUnderDeepQueues) {
  McscrOptions opts;
  opts.anticipatory_warmup = true;
  opts.cull_limit = 0;  // Keep the chain deep so an heir-after-next exists.
  McscrStpLock lock(opts);
  Hammer(lock, 8, std::chrono::milliseconds(200));
  EXPECT_GT(lock.warmups(), 0u);
}

TEST(Mcscr, BurstyLoadReprovisionsFromPassiveSet) {
  // Alternating bursts force deficits: when the chain empties, passivated
  // threads must be re-activated rather than stranded.
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "deficit re-provisioning needs a passive set, which needs "
                    "concurrent surplus waiters (see tests/contention.h)";
  }
  McscrStpLock lock;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng(static_cast<std::uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
        if (rng.BernoulliOneIn(100)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GT(lock.reprovisions(), 0u);
  EXPECT_EQ(lock.passive_set_size(), 0u);
}

}  // namespace
}  // namespace malthus
