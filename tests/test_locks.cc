// Lock correctness tests: mutual exclusion, progress, nesting, and
// admission-order properties, parameterized over every algorithm in the
// registry (TEST_P), plus per-algorithm specifics (FIFO order for queue
// locks, try_lock semantics, preemption-ish oversubscription runs).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/lifocr.h"
#include "src/core/mcscr.h"
#include "src/locks/any_lock.h"
#include "src/locks/clh.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/locks/tas.h"
#include "src/locks/ticket.h"
#include "src/metrics/admission_log.h"
#include "tests/contention.h"

namespace malthus {
namespace {

using test::ScaledIters;

// ---------------------------------------------------------------------------
// Parameterized property tests over all real locks (the degenerate "null"
// lock is excluded: it intentionally provides no exclusion).

class AllLocksTest : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> RealLockNames() {
  std::vector<std::string> names = AllLockNames();
  names.erase(std::remove(names.begin(), names.end(), "null"), names.end());
  return names;
}

TEST_P(AllLocksTest, MutualExclusionUnderContention) {
  auto lock = MakeLock(GetParam());
  ASSERT_NE(lock, nullptr);
  constexpr int kThreads = 8;
  // CPU-count-gated: full coverage with cpus >= threads, scaled-down rounds
  // on smaller hosts where each contended handover can cost a scheduling
  // quantum (this instantiates over the pure-spin variants too).
  const int kIters = ScaledIters(4000, kThreads);
  std::uint64_t counter = 0;  // Deliberately non-atomic.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock->lock();
        counter = counter + 1;
        lock->unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_P(AllLocksTest, SingleThreadedLockUnlockCycles) {
  auto lock = MakeLock(GetParam());
  ASSERT_NE(lock, nullptr);
  for (int i = 0; i < 100000; ++i) {
    lock->lock();
    lock->unlock();
  }
}

TEST_P(AllLocksTest, CriticalSectionStateIsConsistent) {
  auto lock = MakeLock(GetParam());
  ASSERT_NE(lock, nullptr);
  // Two variables updated together under the lock must always be observed
  // equal inside the critical section.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::atomic<bool> mismatch{false};
  constexpr int kThreads = 6;
  const int kIters = ScaledIters(3000, kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock->lock();
        if (a != b) {
          mismatch.store(true);
        }
        ++a;
        ++b;
        lock->unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(a, b);
}

TEST_P(AllLocksTest, NestedDistinctLocks) {
  auto outer = MakeLock(GetParam());
  auto inner = MakeLock(GetParam());
  ASSERT_NE(outer, nullptr);
  std::uint64_t counter = 0;
  const int kIters = ScaledIters(2000, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        outer->lock();
        inner->lock();
        ++counter;
        inner->unlock();
        outer->unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 4u * static_cast<std::uint64_t>(kIters));
}

TEST_P(AllLocksTest, OversubscribedProgress) {
  // More threads than cores: parking-based locks must keep making progress
  // and spin-based locks must survive preemption.
  auto lock = MakeLock(GetParam());
  ASSERT_NE(lock, nullptr);
  const int threads_count = 2 * static_cast<int>(std::thread::hardware_concurrency());
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < threads_count; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 300; ++i) {
        lock->lock();
        ++counter;
        lock->unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads_count) * 300u);
}

TEST_P(AllLocksTest, RecorderSeesEveryAdmission) {
  auto lock = MakeLock(GetParam());
  ASSERT_NE(lock, nullptr);
  AdmissionLog log(1 << 16);
  lock->set_recorder(&log);
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock->lock();
        lock->unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  if (GetParam() == "std") {
    // std::mutex adapter has no recorder hook; nothing recorded.
    EXPECT_EQ(log.TotalAdmissions(), 0u);
  } else {
    EXPECT_EQ(log.TotalAdmissions(), static_cast<std::uint64_t>(kThreads) * kIters);
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllLocksTest, ::testing::ValuesIn(RealLockNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Admission-order tests. Waiters enqueue in a controlled order (spaced by
// generous sleeps while the main thread holds the lock); on release, queue
// locks must admit FIFO and LIFO-CR must admit LIFO.

template <typename Lock>
std::vector<int> OrderedArrivalAdmissions(Lock& lock, int waiters) {
  std::vector<int> admissions;
  std::atomic<std::uint32_t> admitted{0};
  lock.lock();
  std::vector<std::thread> threads;
  for (int t = 0; t < waiters; ++t) {
    threads.emplace_back([&, t] {
      lock.lock();
      admissions.push_back(t);  // Serialized by the lock itself.
      admitted.fetch_add(1);
      lock.unlock();
    });
    // Give thread t time to enqueue before spawning t+1.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  lock.unlock();
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(admitted.load(), static_cast<std::uint32_t>(waiters));
  return admissions;
}

TEST(AdmissionOrder, McsIsFifo) {
  McsSpinLock lock;
  const auto order = OrderedArrivalAdmissions(lock, 4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(AdmissionOrder, McsStpIsFifo) {
  McsStpLock lock;
  const auto order = OrderedArrivalAdmissions(lock, 4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(AdmissionOrder, ClhIsFifo) {
  ClhLock lock;
  const auto order = OrderedArrivalAdmissions(lock, 4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(AdmissionOrder, TicketIsFifo) {
  TicketLock lock;
  const auto order = OrderedArrivalAdmissions(lock, 4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(AdmissionOrder, LifoCrIsLifo) {
  // Fairness disabled so the order is purely LIFO.
  LifoCrSpinLock lock(LifoCrOptions{.fairness_one_in = 0});
  const auto order = OrderedArrivalAdmissions(lock, 4);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

// MCSCR with one cull per unlock and three queued waiters 1,2,3: the first
// unlock culls waiter 0 (the immediate successor) and grants waiter 1; the
// next grants waiter 2 (tail, never culled); the final unlock finds an
// empty chain and re-provisions waiter 0 from the passive set — the
// work-conservation path.
TEST(AdmissionOrder, McscrCullsAndReprovisions) {
  McscrSpinLock lock(McscrOptions{.fairness_one_in = 0, .cull_limit = 1});
  const auto order = OrderedArrivalAdmissions(lock, 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(lock.culls(), 1u);
  EXPECT_EQ(lock.reprovisions(), 1u);
  EXPECT_EQ(lock.passive_set_size(), 0u);
}

// ---------------------------------------------------------------------------
// try_lock semantics for the algorithms that provide one.

template <typename Lock>
void ExpectTryLockSemantics(Lock& lock) {
  EXPECT_TRUE(lock.try_lock());
  std::atomic<bool> failed{false};
  std::thread t([&] { failed.store(!lock.try_lock()); });
  t.join();
  EXPECT_TRUE(failed.load());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TryLock, Tas) {
  TtasLock lock;
  ExpectTryLockSemantics(lock);
}

TEST(TryLock, Ticket) {
  TicketLock lock;
  ExpectTryLockSemantics(lock);
}

TEST(TryLock, Mcs) {
  McsSpinLock lock;
  ExpectTryLockSemantics(lock);
}

TEST(TryLock, Mcscr) {
  McscrStpLock lock;
  ExpectTryLockSemantics(lock);
}

TEST(TryLock, LifoCr) {
  LifoCrStpLock lock;
  ExpectTryLockSemantics(lock);
}

TEST(TryLock, PthreadStyle) {
  PthreadStyleMutex lock;
  ExpectTryLockSemantics(lock);
}

TEST(TryLock, TicketRefusesWhenWaitersQueued) {
  // try_lock on a ticket lock must not jump the queue.
  TicketLock lock;
  lock.lock();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.lock();
    acquired.store(true);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(lock.try_lock());  // A waiter holds the next ticket.
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

// ---------------------------------------------------------------------------
// Algorithm-specific behaviours.

TEST(PthreadStyle, UnfairBargingIsPossibleButProgressHolds) {
  PthreadStyleMutex lock;
  std::uint64_t counter = 0;
  const int kIters = ScaledIters(5000, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 8u * static_cast<std::uint64_t>(kIters));
}

TEST(PthreadStyle, SpinnerCapAndBudgetConfigurable) {
  PthreadStyleMutex lock;
  lock.set_spin_budget(1);   // Force almost everyone into the park path.
  lock.set_max_spinners(1);
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 6u * 2000u);
}

TEST(Mcs, SpinBudgetConfigurable) {
  McsStpLock lock;
  lock.set_spin_budget(0);  // Park immediately: pure ParkPolicy behaviour.
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 4u * 2000u);
}

TEST(Clh, ManySequentialThreads) {
  // Node recycling across threads must not corrupt state.
  ClhLock lock;
  for (int round = 0; round < 20; ++round) {
    std::thread t([&] {
      lock.lock();
      lock.unlock();
    });
    t.join();
  }
}

}  // namespace
}  // namespace malthus
