// CrSemaphore & LifoSem: counting semantics, direct permit handoff, queue
// disciplines, and multi-producer/multi-consumer stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/cr_semaphore.h"

namespace malthus {
namespace {

TEST(CrSemaphore, InitialPermitsConsumable) {
  CrSemaphore sem(3);
  EXPECT_EQ(sem.Count(), 3);
  sem.Wait();
  sem.Wait();
  sem.Wait();
  EXPECT_EQ(sem.Count(), 0);
  EXPECT_FALSE(sem.TryWait());
}

TEST(CrSemaphore, PostMakesWaitReturn) {
  CrSemaphore sem(0);
  std::atomic<bool> proceeded{false};
  std::thread waiter([&] {
    sem.Wait();
    proceeded.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(proceeded.load());
  sem.Post();
  waiter.join();
  EXPECT_TRUE(proceeded.load());
}

TEST(CrSemaphore, TryWaitNeverBlocks) {
  CrSemaphore sem(1);
  EXPECT_TRUE(sem.TryWait());
  EXPECT_FALSE(sem.TryWait());
  sem.Post();
  EXPECT_TRUE(sem.TryWait());
}

TEST(CrSemaphore, PermitsHandedDirectlyToWaiters) {
  // With a waiter queued, Post must not bump the public count (no
  // thundering herd; the permit goes point-to-point).
  CrSemaphore sem(0);
  std::thread waiter([&] { sem.Wait(); });
  while (sem.WaiterCount() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sem.Post();
  waiter.join();
  EXPECT_EQ(sem.Count(), 0);
}

TEST(CrSemaphore, CountNeverNegativeNeverLeaksPermits) {
  CrSemaphore sem(4);
  constexpr int kThreads = 8;
  constexpr int kRounds = 5000;
  std::atomic<int> in_section{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        sem.Wait();
        const int now = in_section.fetch_add(1) + 1;
        if (now > 4) {
          violated.store(true);
        }
        in_section.fetch_sub(1);
        sem.Post();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(sem.Count(), 4);
  EXPECT_EQ(sem.WaiterCount(), 0u);
}

TEST(LifoSem, MostRecentWaiterWinsThePermit) {
  LifoSem sem(0);
  std::vector<int> wake_order;
  std::atomic<std::uint32_t> woken{0};
  std::mutex record_mutex;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      sem.Wait();
      std::lock_guard<std::mutex> g(record_mutex);
      wake_order.push_back(i);
      woken.fetch_add(1);
    });
    while (sem.WaiterCount() != static_cast<std::size_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (int i = 0; i < 4; ++i) {
    sem.Post();
    while (woken.load() != static_cast<std::uint32_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(wake_order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(CrSemaphore, FifoDisciplineWakesInArrivalOrder) {
  CrSemaphore sem(0, CrSemaphoreOptions{.append_probability = 1.0});
  std::vector<int> wake_order;
  std::atomic<std::uint32_t> woken{0};
  std::mutex record_mutex;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      sem.Wait();
      std::lock_guard<std::mutex> g(record_mutex);
      wake_order.push_back(i);
      woken.fetch_add(1);
    });
    while (sem.WaiterCount() != static_cast<std::size_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (int i = 0; i < 4; ++i) {
    sem.Post();
    while (woken.load() != static_cast<std::uint32_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(wake_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CrSemaphore, ProducerConsumerConveysEverything) {
  CrSemaphore items(0, CrSemaphoreOptions{.append_probability = 1.0 / 1000});
  CrSemaphore slots(64, CrSemaphoreOptions{.append_probability = 1.0 / 1000});
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};
  constexpr std::uint64_t kTotal = 40000;
  std::vector<std::thread> workers;
  for (int p = 0; p < 4; ++p) {
    workers.emplace_back([&] {
      while (true) {
        const std::uint64_t n = produced.fetch_add(1);
        if (n >= kTotal) {
          break;
        }
        slots.Wait();
        items.Post();
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    workers.emplace_back([&] {
      while (consumed.load() < kTotal) {
        if (items.TryWait()) {
          slots.Post();
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GE(consumed.load(), kTotal);
}

}  // namespace
}  // namespace malthus
