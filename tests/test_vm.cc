// VM substrate: opcode semantics, control flow, canned programs, error
// handling, and the perl-style VmLock construct.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/vm/interp.h"
#include "src/vm/program.h"
#include "src/vm/vm_lock.h"

namespace malthus {
namespace {

using vm::Context;
using vm::Instr;
using vm::Interp;
using vm::Op;
using vm::Program;

TEST(Vm, ArithmeticOps) {
  Program p = {
      {Op::kPushI, 6}, {Op::kPushI, 7}, {Op::kMul, 0},  {Op::kPushI, 2},
      {Op::kAdd, 0},   {Op::kPushI, 4}, {Op::kSub, 0},  {Op::kPushI, 10},
      {Op::kMod, 0},   {Op::kHalt, 0},
  };
  Context ctx;
  EXPECT_EQ(Interp::Run(p, ctx).top, ((6 * 7 + 2 - 4) % 10));
}

TEST(Vm, LocalsAndComparison) {
  Program p = {
      {Op::kPushI, 5}, {Op::kStoreL, 0}, {Op::kLoadL, 0}, {Op::kPushI, 9},
      {Op::kLt, 0},    {Op::kHalt, 0},
  };
  Context ctx;
  EXPECT_EQ(Interp::Run(p, ctx).top, 1);
}

TEST(Vm, DupAndPop) {
  Program p = {
      {Op::kPushI, 3}, {Op::kDup, 0}, {Op::kAdd, 0}, {Op::kPushI, 99},
      {Op::kPop, 0},   {Op::kHalt, 0},
  };
  Context ctx;
  EXPECT_EQ(Interp::Run(p, ctx).top, 6);
}

TEST(Vm, JumpAndJnz) {
  // Skip over a poison push via kJmp.
  Program p = {
      {Op::kJmp, 2}, {Op::kPushI, -1}, {Op::kPushI, 42}, {Op::kHalt, 0},
  };
  Context ctx;
  EXPECT_EQ(Interp::Run(p, ctx).top, 42);
}

TEST(Vm, SumLoopProgram) {
  Context ctx;
  const auto result = Interp::Run(vm::BuildSumLoop(100), ctx);
  EXPECT_EQ(result.top, 4950);
}

TEST(Vm, ArrayRoundTrip) {
  Context ctx;
  const int arr = ctx.AddArray(64);
  const auto result = Interp::Run(vm::BuildArrayRoundTrip(arr, 7, 1234), ctx);
  EXPECT_EQ(result.top, 1234);
  EXPECT_EQ(ctx.ArrayAt(arr)[7], 1234);
}

TEST(Vm, SharedArrayVisibleAcrossContexts) {
  std::vector<std::int64_t> shared(16, 0);
  Context a;
  Context b;
  const int ida = a.AddSharedArray(&shared);
  const int idb = b.AddSharedArray(&shared);
  Interp::Run(vm::BuildArrayRoundTrip(ida, 3, 77), a);
  Program read = {{Op::kPushI, 3}, {Op::kArrLoad, idb}, {Op::kHalt, 0}};
  EXPECT_EQ(Interp::Run(read, b).top, 77);
}

TEST(Vm, RandArrayLoopTouchesArrayDeterministically) {
  Context a(42);
  Context b(42);
  const int ida = a.AddArray(1000);
  const int idb = b.AddArray(1000);
  a.ArrayAt(ida).assign(1000, 5);
  b.ArrayAt(idb).assign(1000, 5);
  const auto ra = Interp::Run(vm::BuildRandArrayLoop(ida, 400), a);
  const auto rb = Interp::Run(vm::BuildRandArrayLoop(idb, 400), b);
  EXPECT_EQ(ra.top, rb.top);          // Same seed, same result.
  EXPECT_EQ(ra.top, 400 * 5);         // All elements are 5.
  EXPECT_GT(ra.instructions, 400u);   // Interpreted overhead is real.
}

TEST(Vm, StackUnderflowThrows) {
  Program p = {{Op::kAdd, 0}, {Op::kHalt, 0}};
  Context ctx;
  EXPECT_THROW(Interp::Run(p, ctx), std::runtime_error);
}

TEST(Vm, ModByZeroThrows) {
  Program p = {{Op::kPushI, 1}, {Op::kPushI, 0}, {Op::kMod, 0}, {Op::kHalt, 0}};
  Context ctx;
  EXPECT_THROW(Interp::Run(p, ctx), std::runtime_error);
}

TEST(Vm, PcOutOfRangeThrows) {
  Program p = {{Op::kJmp, 100}};
  Context ctx;
  EXPECT_THROW(Interp::Run(p, ctx), std::runtime_error);
}

TEST(Vm, MaxInstructionsBoundsRunawayLoops) {
  Program p = {{Op::kJmp, 0}};
  Context ctx;
  const auto result = Interp::Run(p, ctx, 1000);
  EXPECT_EQ(result.instructions, 1000u);
}

TEST(Vm, DisassembleIsReadable) {
  Program p = {{Op::kPushI, 9}, {Op::kHalt, 0}};
  const std::string text = vm::Disassemble(p);
  EXPECT_NE(text.find("push 9"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(VmLock, MutualExclusion) {
  vm::VmLock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6u * 5000u);
  EXPECT_FALSE(lock.IsHeld());
}

TEST(VmLock, MostlyLifoDisciplineStillExcludesAndProgresses) {
  vm::VmLock lock(CrCondVarOptions{.append_probability = 1.0 / 1000});
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> acquires(6, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
        ++local;
      }
      acquires[static_cast<std::size_t>(t)] = local;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  for (std::size_t t = 0; t < acquires.size(); ++t) {
    EXPECT_GT(acquires[t], 0u) << "thread " << t << " starved";
  }
}

TEST(VmLock, InterpretedCriticalSectionsStayAtomic) {
  // Threads run interpreted read-modify-write programs on a shared array
  // under the VmLock; the final sum must equal the iteration count.
  vm::VmLock lock;
  std::vector<std::int64_t> shared(1, 0);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      Context ctx(static_cast<std::uint64_t>(Self().id) + 1);
      const int arr = ctx.AddSharedArray(&shared);
      // shared[0] = shared[0] + 1, interpreted.
      Program increment = {
          {Op::kPushI, 0}, {Op::kPushI, 0},   {Op::kArrLoad, arr}, {Op::kPushI, 1},
          {Op::kAdd, 0},   {Op::kArrStore, arr}, {Op::kHalt, 0},
      };
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        Interp::Run(increment, ctx);
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(shared[0], static_cast<std::int64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace malthus
