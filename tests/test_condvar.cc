// CrCondVar: Mesa semantics, signal/broadcast, FIFO vs LIFO queue
// discipline, and producer/consumer correctness through the condvar.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/cr_condvar.h"
#include "src/locks/mcs.h"
#include "src/locks/tas.h"

namespace malthus {
namespace {

TEST(CrCondVar, SignalWakesOneWaiter) {
  TtasLock lock;
  CrCondVar cv;
  std::atomic<int> awake{0};
  bool go = false;
  std::thread waiter([&] {
    lock.lock();
    while (!go) {
      cv.Wait(lock);
    }
    awake.fetch_add(1);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(awake.load(), 0);
  lock.lock();
  go = true;
  lock.unlock();
  cv.Signal();
  waiter.join();
  EXPECT_EQ(awake.load(), 1);
}

TEST(CrCondVar, SignalWithNoWaitersIsLost) {
  TtasLock lock;
  CrCondVar cv;
  cv.Signal();  // Must not persist.
  EXPECT_EQ(cv.WaiterCount(), 0u);
}

TEST(CrCondVar, BroadcastWakesAll) {
  TtasLock lock;
  CrCondVar cv;
  constexpr int kWaiters = 6;
  std::atomic<int> awake{0};
  bool go = false;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      lock.lock();
      while (!go) {
        cv.Wait(lock);
      }
      awake.fetch_add(1);
      lock.unlock();
    });
  }
  while (cv.WaiterCount() != kWaiters) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  lock.lock();
  go = true;
  lock.unlock();
  cv.Broadcast();
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(awake.load(), kWaiters);
}

TEST(CrCondVar, FifoDisciplineWakesInArrivalOrder) {
  TtasLock lock;
  CrCondVar cv;  // default: append_probability = 1 (FIFO)
  std::vector<int> wake_order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      lock.lock();
      cv.Wait(lock);
      wake_order.push_back(i);
      lock.unlock();
    });
    // Arrival order i = 0,1,2,3.
    while (cv.WaiterCount() != static_cast<std::size_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (int i = 0; i < 4; ++i) {
    cv.Signal();
    // Let the woken thread record itself before the next signal.
    while (static_cast<int>([&] {
             lock.lock();
             const std::size_t n = wake_order.size();
             lock.unlock();
             return n;
           }()) != i + 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(wake_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CrCondVar, LifoDisciplineWakesMostRecentFirst) {
  TtasLock lock;
  CrCondVar cv(CrCondVarOptions{.append_probability = 0.0});  // pure LIFO
  std::vector<int> wake_order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      lock.lock();
      cv.Wait(lock);
      wake_order.push_back(i);
      lock.unlock();
    });
    while (cv.WaiterCount() != static_cast<std::size_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (int i = 0; i < 4; ++i) {
    cv.Signal();
    while (static_cast<int>([&] {
             lock.lock();
             const std::size_t n = wake_order.size();
             lock.unlock();
             return n;
           }()) != i + 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(wake_order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(CrCondVar, PredicateOverloadLoopsUntilTrue) {
  TtasLock lock;
  CrCondVar cv;
  int value = 0;
  std::thread consumer([&] {
    lock.lock();
    cv.Wait(lock, [&] { return value == 3; });
    EXPECT_EQ(value, 3);
    lock.unlock();
  });
  for (int i = 1; i <= 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    lock.lock();
    value = i;
    lock.unlock();
    cv.Signal();
  }
  consumer.join();
}

TEST(CrCondVar, WorksWithMcsMutex) {
  McsStpLock lock;
  CrCondVar cv;
  bool ready = false;
  int data = 0;
  std::thread consumer([&] {
    lock.lock();
    cv.Wait(lock, [&] { return ready; });
    EXPECT_EQ(data, 42);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.lock();
  data = 42;
  ready = true;
  lock.unlock();
  cv.Signal();
  consumer.join();
}

TEST(CrCondVar, StressPingPong) {
  TtasLock lock;
  CrCondVar cv;
  int turn = 0;  // 0 = producer's turn, 1 = consumer's
  constexpr int kRounds = 5000;
  std::thread consumer([&] {
    for (int i = 0; i < kRounds; ++i) {
      lock.lock();
      while (turn != 1) {
        cv.Wait(lock);
      }
      turn = 0;
      lock.unlock();
      cv.Broadcast();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    lock.lock();
    while (turn != 0) {
      cv.Wait(lock);
    }
    turn = 1;
    lock.unlock();
    cv.Broadcast();
  }
  consumer.join();
}

TEST(CrCondVar, MostlyLifoMixesBothEnds) {
  // With P = 0.5 and many enqueues, both append and prepend paths must be
  // exercised (statistically certain).
  TtasLock lock;
  CrCondVar cv(CrCondVarOptions{.append_probability = 0.5});
  std::atomic<int> woken{0};
  constexpr int kWaiters = 16;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      lock.lock();
      cv.Wait(lock);
      woken.fetch_add(1);
      lock.unlock();
    });
  }
  while (cv.WaiterCount() != kWaiters) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < kWaiters; ++i) {
    cv.Signal();
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(woken.load(), kWaiters);
}

}  // namespace
}  // namespace malthus
