// Memory-hygiene tests for the generation-stamped slab layer (alloc/slab.h)
// and its clients: ThreadCtx checkout/return in the thread registry, the
// QNode pools + orphanage under the queue locks, and KvServer worker churn.
//
// The properties pinned here are exactly the ones the slab exists for:
//   * slab bytes are flat under churn (thread attach/detach, server
//     start/stop) — the old intentional leaks would show as monotonic
//     growth;
//   * a wake aimed at an exited thread's recycled ThreadCtx slot is a
//     counted no-op (ParkerRef generation validation), both in the unit
//     sense and driven through the real MCS post-grant window via the
//     "mcs.wake" FailPoint;
//   * a thread that exits with cancelled-but-unreclaimed QNodes hands them
//     to the orphanage, and ScavengeOrphanQNodes() returns them to the
//     slab once their granters release the pins.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/alloc/slab.h"
#include "src/chaos/failpoint.h"
#include "src/locks/lock_base.h"
#include "src/locks/mcs.h"
#include "src/platform/thread_registry.h"
#include "src/server/server.h"

namespace malthus {
namespace {

struct TestSlot {
  std::atomic<std::uint64_t> slot_gen{0};
  std::uint64_t payload = 0;
};

TEST(SlabAllocator, CheckoutStampsOddGeneration) {
  SlabAllocator<TestSlot> alloc(8);
  const auto h = alloc.Checkout();
  ASSERT_NE(h.obj, nullptr);
  EXPECT_EQ(h.gen % 2, 1u);  // Odd = checked out.
  EXPECT_TRUE(SlabAllocator<TestSlot>::IsCurrent(h.obj, h.gen));
  EXPECT_EQ(alloc.SlotsLive(), 1u);
  alloc.Return(h.obj);
  EXPECT_FALSE(SlabAllocator<TestSlot>::IsCurrent(h.obj, h.gen));
  EXPECT_EQ(SlabAllocator<TestSlot>::GenerationOf(h.obj) % 2, 0u);
  EXPECT_EQ(alloc.SlotsLive(), 0u);
}

TEST(SlabAllocator, GenerationsAreMonotonicAcrossTenancies) {
  SlabAllocator<TestSlot> alloc(1);  // One slot per slab: force recycling.
  const auto first = alloc.Checkout();
  TestSlot* slot = first.obj;
  std::uint64_t prev = first.gen;
  alloc.Return(slot);
  for (int i = 0; i < 100; ++i) {
    const auto h = alloc.Checkout();
    if (h.obj == slot) {  // The single-slot slab makes this the common case.
      EXPECT_GT(h.gen, prev);
      prev = h.gen;
    }
    alloc.Return(h.obj);
  }
}

TEST(SlabAllocator, ConstructedStateSurvivesRecycling) {
  // Constructed-object caching: the constructor runs once per slot, so a
  // tenant's writes persist into the next tenancy (callers re-init what
  // they own — this is what keeps recycled ThreadCtx parkers type-stable).
  SlabAllocator<TestSlot> alloc(1);
  const auto a = alloc.Checkout();
  a.obj->payload = 0xfeed;
  TestSlot* slot = a.obj;
  alloc.Return(a.obj);
  const auto b = alloc.Checkout();
  if (b.obj == slot) {
    EXPECT_EQ(b.obj->payload, 0xfeedu);
  }
  alloc.Return(b.obj);
}

TEST(SlabAllocator, BytesFlatOnceWorkingSetWarm) {
  SlabAllocator<TestSlot> alloc(8);
  constexpr int kBatch = 100;
  std::vector<TestSlot*> held;
  held.reserve(kBatch);
  // Warm: establish the working set.
  for (int i = 0; i < kBatch; ++i) {
    held.push_back(alloc.Checkout().obj);
  }
  const std::size_t warm = alloc.BytesReserved();
  EXPECT_GT(warm, 0u);
  for (TestSlot* s : held) {
    alloc.Return(s);
  }
  held.clear();
  // Churn the same working set; growth means recycling is broken. One
  // extra slab of slack absorbs slots stranded in per-CPU magazines if the
  // test thread migrates.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < kBatch; ++i) {
      held.push_back(alloc.Checkout().obj);
    }
    for (TestSlot* s : held) {
      alloc.Return(s);
    }
    held.clear();
  }
  EXPECT_LE(alloc.BytesReserved(), warm + 8 * sizeof(TestSlot));
  EXPECT_EQ(alloc.SlotsLive(), 0u);
}

TEST(ParkerRef, DefaultRefIsInertNoOp) {
  const std::uint64_t before = StaleWakesSuppressed();
  ParkerRef ref;
  EXPECT_FALSE(static_cast<bool>(ref));
  EXPECT_FALSE(ref.Unpark());
  EXPECT_FALSE(ref.WakeAhead());
  // A null ref is not a *stale* wake; it must not pollute the counter.
  EXPECT_EQ(StaleWakesSuppressed(), before);
}

TEST(ParkerRef, StaleWakeAfterThreadExitIsSuppressedNoOp) {
  ParkerRef ref;
  std::thread t([&] { ref = SelfWakeRef(Self()); });
  t.join();  // TLS destructors ran: the ThreadCtx slot was returned.
  ASSERT_TRUE(static_cast<bool>(ref));
  EXPECT_FALSE(ref.Current());
  const std::uint64_t before = StaleWakesSuppressed();
  EXPECT_FALSE(ref.Unpark());
  EXPECT_FALSE(ref.WakeAhead());
  EXPECT_EQ(StaleWakesSuppressed(), before + 2);
}

TEST(ParkerRef, SelfRefIsCurrentAndWakes) {
  ThreadCtx& self = Self();
  const ParkerRef ref = SelfWakeRef(self);
  EXPECT_TRUE(ref.Current());
  EXPECT_TRUE(ref.Unpark());
  self.parker.DrainPermit();
}

TEST(ThreadChurn, SlabBytesStayFlat) {
  McsStpLock lock;
  const auto churn = [&](int cycles) {
    for (int i = 0; i < cycles; ++i) {
      std::thread t([&] {
        (void)Self().id;  // Attach: ThreadCtx checkout.
        lock.lock();      // QNode arena refill from the slab.
        lock.unlock();
        EXPECT_TRUE(lock.TryLockFor(std::chrono::seconds(1)));
        lock.unlock();
      });
      t.join();
    }
    ScavengeOrphanQNodes();
  };
  churn(32);  // Warm: magazines populated, slabs carved.
  const std::size_t warm = TotalSlabBytesReserved();
  const std::uint64_t ctx_live = ThreadCtxSlab().SlotsLive();
  const std::uint64_t qnode_live = QNodeSlab().SlotsLive();
  churn(96);
  // The retired leak was ~1 ThreadCtx + 16 QNodes per exited thread; 96
  // cycles of that dwarfs the one-slab-per-type slack allowed here for
  // slots stranded in per-CPU magazines.
  EXPECT_LE(TotalSlabBytesReserved(),
            warm + SlabAllocator<ThreadCtx>::kDefaultSlotsPerSlab * sizeof(ThreadCtx) +
                SlabAllocator<QNode>::kDefaultSlotsPerSlab * sizeof(QNode));
  EXPECT_EQ(ThreadCtxSlab().SlotsLive(), ctx_live);
  EXPECT_EQ(QNodeSlab().SlotsLive(), qnode_live);
}

TEST(ThreadChurn, ConcurrentAttachDetachKeepsSlotsBalanced) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 8;
  const std::uint64_t ctx_live = ThreadCtxSlab().SlotsLive();
  for (int r = 0; r < kRounds; ++r) {
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    std::vector<ThreadId> ids(kThreads, kInvalidThreadId);
    std::atomic<int> arrived{0};  // Barrier: all ids sampled while every
                                  // thread is still live, so recycling of
                                  // an exited thread's id cannot alias.
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&ids, &arrived, i] {
        ids[i] = Self().id;
        arrived.fetch_add(1, std::memory_order_acq_rel);
        while (arrived.load(std::memory_order_acquire) < kThreads) {
          std::this_thread::yield();
        }
      });
    }
    for (auto& t : ts) {
      t.join();
    }
    // Concurrently-live threads must hold distinct ids even while the free
    // list recycles ids of exited threads.
    for (int i = 0; i < kThreads; ++i) {
      ASSERT_NE(ids[i], kInvalidThreadId);
      for (int j = i + 1; j < kThreads; ++j) {
        EXPECT_NE(ids[i], ids[j]);
      }
    }
  }
  EXPECT_EQ(ThreadCtxSlab().SlotsLive(), ctx_live);
}

TEST(Orphanage, ExitWithPinnedHuskIsScavengedAfterRelease) {
  // Deterministic husk: a waiter times out behind a held lock (tombstone
  // cancellation), then its thread exits while the owner still pins the
  // chain. The husk must ride the orphanage, not leak.
  ScavengeOrphanQNodes();  // Clear leftovers from other tests.
  const std::size_t orphans_before = OrphanedQNodes();
  McsStpLock lock;
  lock.lock();
  std::thread t([&] {
    EXPECT_FALSE(lock.TryLockFor(std::chrono::milliseconds(10)));
  });
  t.join();  // Exits with the cancelled node unreclaimed -> orphanage.
  EXPECT_GE(OrphanedQNodes(), orphans_before + 1);
  // While the owner holds the lock the husk is not yet kReclaimed; the
  // scavenger must leave it pinned (generation-validated kClaimed-style
  // pin: reclaiming now would hand the slab a node the unlocker is about
  // to walk).
  ScavengeOrphanQNodes();
  EXPECT_GE(OrphanedQNodes(), orphans_before + 1);
  lock.unlock();  // Steps over the husk and releases it (kReclaimed).
  // The release store is immediate, but be generous to slow CI.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (OrphanedQNodes() > orphans_before &&
         std::chrono::steady_clock::now() < deadline) {
    ScavengeOrphanQNodes();
    std::this_thread::yield();
  }
  EXPECT_EQ(OrphanedQNodes(), orphans_before);
}

TEST(StaleWake, McsPostGrantWakeToExitedThreadIsNoOp) {
  // Drives the real window: granter commits the grant CAS, stalls (the
  // "mcs.wake" FailPoint), and only then issues the wake — by which time
  // the granted waiter has run its critical section, unlocked, and exited,
  // recycling its ThreadCtx slot. The generation check must suppress the
  // wake. Timing-assisted (the waiter must fully exit inside the stall),
  // hence the bounded retry loop.
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "built without MALTHUS_FAILPOINTS";
  }
  bool suppressed = false;
  for (int attempt = 0; attempt < 5 && !suppressed; ++attempt) {
    failpoint::Reset();
    McsStpLock lock;
    lock.set_spin_budget(1u << 30);  // Waiter spins: it must observe the
                                     // grant in userspace and move on while
                                     // the granter is stalled.
    lock.lock();
    std::atomic<bool> enqueueing{false};
    std::thread waiter([&] {
      enqueueing.store(true, std::memory_order_release);
      lock.lock();
      lock.unlock();
    });
    while (!enqueueing.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Let the waiter reach its spin loop behind us.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::uint64_t before = StaleWakesSuppressed();
    failpoint::Configure("mcs.wake",
                         {.action = failpoint::Action::kDelay,
                          .max_hits = 1,
                          .delay_iters = 200u * 1000 * 1000});
    lock.unlock();  // Grant CAS -> long stall -> generation-checked wake.
    waiter.join();
    failpoint::Reset();
    suppressed = StaleWakesSuppressed() > before;
  }
  EXPECT_TRUE(suppressed)
      << "post-grant wake was never suppressed: either the waiter never "
         "exited inside the stall (flaky scheduling) or generation "
         "validation is broken";
}

TEST(ServerChurn, StartStopTimes100IsMemoryFlat) {
  KvServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 64;
  opts.structure = "minidb";
  opts.lock_name = "mcs-stp";
  const auto round = [&](KvServer& server) {
    ASSERT_TRUE(server.Start());
    for (std::uint64_t k = 0; k < 16; ++k) {
      ServerRequest r;
      r.tenant = 0;
      r.key = k;
      r.value = k;
      r.op = (k % 2 == 0) ? ServerRequest::Op::kPut : ServerRequest::Op::kGet;
      r.arrival = std::chrono::steady_clock::now();
      server.Submit(r);
    }
    server.Stop();
  };
  // Warm rounds: worker ThreadCtx/QNode working set carved into slabs.
  {
    KvServer server(opts);
    for (int i = 0; i < 10; ++i) {
      round(server);
    }
  }
  const std::size_t warm = TotalSlabBytesReserved();
  {
    KvServer server(opts);
    for (int i = 0; i < 100; ++i) {
      round(server);
    }
  }
  // 100 start/stop cycles re-use the warm working set; the pre-slab
  // registry leaked 2 ThreadCtx + 32 QNodes per cycle, which would blow
  // through the one-slab-per-type slack immediately.
  EXPECT_LE(TotalSlabBytesReserved(),
            warm + SlabAllocator<ThreadCtx>::kDefaultSlotsPerSlab * sizeof(ThreadCtx) +
                SlabAllocator<QNode>::kDefaultSlotsPerSlab * sizeof(QNode));
}

}  // namespace
}  // namespace malthus
