// Waiting policies and backoff helpers: spin/spin-then-park/park semantics,
// spin-budget resolution and calibration, and backoff bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/platform/calibrate.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"
#include "src/waiting/backoff.h"
#include "src/waiting/policy.h"

namespace malthus {
namespace {

template <typename Policy>
void ExpectAwaitReturnsOnFlagFlip() {
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  std::thread waiter([&] {
    Policy::Await(flag, 0u, parker, 100);
    EXPECT_EQ(flag.load(), 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  flag.store(1, std::memory_order_release);
  Policy::Wake(parker);
  waiter.join();
}

TEST(WaitPolicy, SpinReturnsOnFlagFlip) { ExpectAwaitReturnsOnFlagFlip<SpinPolicy>(); }

TEST(WaitPolicy, SpinThenParkReturnsOnFlagFlip) {
  ExpectAwaitReturnsOnFlagFlip<SpinThenParkPolicy>();
}

TEST(WaitPolicy, ParkReturnsOnFlagFlip) { ExpectAwaitReturnsOnFlagFlip<ParkPolicy>(); }

TEST(WaitPolicy, SpinThenParkActuallyParksAfterBudget) {
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  const std::uint64_t kernel_before = parker.kernel_waits();
  std::thread waiter([&] { SpinThenParkPolicy::Await(flag, 0u, parker, 10); });
  // Give the waiter ample time to burn its 10-iteration budget and block.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  flag.store(1, std::memory_order_release);
  SpinThenParkPolicy::Wake(parker);
  waiter.join();
  EXPECT_GT(parker.kernel_waits(), kernel_before);
}

TEST(WaitPolicy, SpinThenParkWithZeroBudgetIsParkPolicy) {
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  std::thread waiter([&] { SpinThenParkPolicy::Await(flag, 0u, parker, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  flag.store(1, std::memory_order_release);
  parker.Unpark();
  waiter.join();
  EXPECT_GT(parker.kernel_waits(), 0u);
}

TEST(WaitPolicy, StalePermitDoesNotBreakAwait) {
  // The paper's litmus test: permits from previous grant cycles may linger;
  // Await must re-check the flag and keep waiting.
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  parker.Unpark();  // Stale permit.
  std::thread waiter([&] { SpinThenParkPolicy::Await(flag, 0u, parker, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Waiter must still be waiting (the stale permit only caused a re-check).
  flag.store(1, std::memory_order_release);
  parker.Unpark();
  waiter.join();
  EXPECT_EQ(flag.load(), 1u);
}

TEST(SpinBudget, ResolveKeepsExplicitValues) {
  EXPECT_EQ(ResolveSpinBudget(0), 0u);
  EXPECT_EQ(ResolveSpinBudget(123), 123u);
}

TEST(SpinBudget, AutoResolvesToCalibrated) {
  EXPECT_EQ(ResolveSpinBudget(kAutoSpinBudget), CalibratedSpinBudget());
}

TEST(SpinBudget, CalibrationIsStableAndSane) {
  const std::uint32_t a = CalibratedSpinBudget();
  const std::uint32_t b = CalibratedSpinBudget();
  EXPECT_EQ(a, b);  // Cached.
  EXPECT_GE(a, 20000u);
  EXPECT_LE(a, 1000000u);
}

TEST(Backoff, ExponentialCeilingDoublesAndSaturates) {
  ExponentialBackoff backoff(16, 64);
  XorShift64 rng(1);
  EXPECT_EQ(backoff.ceiling(), 16u);
  backoff.Pause(rng);
  EXPECT_EQ(backoff.ceiling(), 32u);
  backoff.Pause(rng);
  EXPECT_EQ(backoff.ceiling(), 64u);
  backoff.Pause(rng);
  EXPECT_EQ(backoff.ceiling(), 64u);  // Truncated.
}

TEST(Backoff, ResetRestoresInitialCeiling) {
  ExponentialBackoff backoff(8, 1024);
  XorShift64 rng(2);
  backoff.Pause(rng);
  backoff.Pause(rng);
  backoff.Reset();
  EXPECT_EQ(backoff.ceiling(), 8u);
}

TEST(Backoff, ProportionalScalesWithDistance) {
  // Behavioural smoke: longer distances must take longer (measured
  // coarsely; generous margins keep this robust under CI noise).
  const auto t0 = std::chrono::steady_clock::now();
  ProportionalBackoff(1, 64);
  const auto t1 = std::chrono::steady_clock::now();
  ProportionalBackoff(2000, 64);
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_GT((t2 - t1).count(), (t1 - t0).count());
}

}  // namespace
}  // namespace malthus
