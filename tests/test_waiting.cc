// Waiting policies and backoff helpers: spin/spin-then-park/park semantics,
// the yield-aware oversubscription-safe spin variant, spin-budget
// resolution and calibration, and backoff bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/platform/calibrate.h"
#include "src/platform/sysinfo.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"
#include "src/waiting/backoff.h"
#include "src/waiting/policy.h"

namespace malthus {
namespace {

// Scoped EffectiveCpuCount() override; restores the measured value on exit.
class ForcedEffectiveCpus {
 public:
  explicit ForcedEffectiveCpus(int n) { SetEffectiveCpuCountForTesting(n); }
  ~ForcedEffectiveCpus() { SetEffectiveCpuCountForTesting(0); }
};

template <typename Policy>
void ExpectAwaitReturnsOnFlagFlip() {
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  std::thread waiter([&] {
    Policy::Await(flag, 0u, parker, 100);
    EXPECT_EQ(flag.load(), 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  flag.store(1, std::memory_order_release);
  Policy::Wake(parker);
  waiter.join();
}

TEST(WaitPolicy, SpinReturnsOnFlagFlip) { ExpectAwaitReturnsOnFlagFlip<SpinPolicy>(); }

TEST(WaitPolicy, SpinThenParkReturnsOnFlagFlip) {
  ExpectAwaitReturnsOnFlagFlip<SpinThenParkPolicy>();
}

TEST(WaitPolicy, ParkReturnsOnFlagFlip) { ExpectAwaitReturnsOnFlagFlip<ParkPolicy>(); }

TEST(WaitPolicy, SpinThenParkActuallyParksAfterBudget) {
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  const std::uint64_t kernel_before = parker.kernel_waits();
  std::thread waiter([&] { SpinThenParkPolicy::Await(flag, 0u, parker, 10); });
  // Give the waiter ample time to burn its 10-iteration budget and block.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  flag.store(1, std::memory_order_release);
  SpinThenParkPolicy::Wake(parker);
  waiter.join();
  EXPECT_GT(parker.kernel_waits(), kernel_before);
}

TEST(WaitPolicy, SpinThenParkWithZeroBudgetIsParkPolicy) {
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  std::thread waiter([&] { SpinThenParkPolicy::Await(flag, 0u, parker, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  flag.store(1, std::memory_order_release);
  parker.Unpark();
  waiter.join();
  EXPECT_GT(parker.kernel_waits(), 0u);
}

TEST(WaitPolicy, StalePermitDoesNotBreakAwait) {
  // The paper's litmus test: permits from previous grant cycles may linger;
  // Await must re-check the flag and keep waiting.
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  parker.Unpark();  // Stale permit.
  std::thread waiter([&] { SpinThenParkPolicy::Await(flag, 0u, parker, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Waiter must still be waiting (the stale permit only caused a re-check).
  flag.store(1, std::memory_order_release);
  parker.Unpark();
  waiter.join();
  EXPECT_EQ(flag.load(), 1u);
}

TEST(WaitPolicy, YieldingSpinReturnsOnFlagFlip) {
  ExpectAwaitReturnsOnFlagFlip<YieldingSpinPolicy>();
}

TEST(WaitPolicy, YieldingSpinNeverEscalatesWithSpareCpus) {
  // With the effective CPU count comfortably above the spinner population,
  // the policy must remain pure spinning: no escalations, ever.
  ForcedEffectiveCpus forced(64);
  const std::uint64_t escalations_before = TotalSpinYieldEscalations();
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  std::thread waiter([&] { YieldingSpinPolicy::Await(flag, 0u, parker, 100); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  flag.store(1, std::memory_order_release);
  waiter.join();
  EXPECT_EQ(TotalSpinYieldEscalations(), escalations_before);
}

TEST(WaitPolicy, YieldingSpinEscalatesUnderForcedOversubscription) {
  // Simulate a 1-CPU host and run 4x that many spinners: every one of them
  // must abandon pure spinning for the sched_yield loop, and the wait must
  // still terminate promptly when the flags flip.
  ForcedEffectiveCpus forced(1);
  constexpr int kSpinners = 4;  // threads = 4x effective cores
  const std::uint64_t escalations_before = TotalSpinYieldEscalations();
  std::vector<std::atomic<std::uint32_t>> flags(kSpinners);
  std::vector<std::thread> waiters;
  for (int t = 0; t < kSpinners; ++t) {
    waiters.emplace_back([&, t] {
      Parker parker;
      YieldingSpinPolicy::Await(flags[static_cast<std::size_t>(t)], 0u, parker, 100);
    });
  }
  // Give every spinner time to cross its probe slice and observe the
  // oversubscribed gauge.
  while (ActiveSpinners() < static_cast<std::uint32_t>(kSpinners)) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (auto& flag : flags) {
    flag.store(1, std::memory_order_release);
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_GE(TotalSpinYieldEscalations() - escalations_before,
            static_cast<std::uint64_t>(kSpinners));
  EXPECT_EQ(ActiveSpinners(), 0u);
}

TEST(WaitPolicy, YieldingSpinFeedsAdaptiveBudgetFromEscalatedWaits) {
  // The adaptive-budget wiring: an escalated wait records its observed
  // grant latency, exactly like a parked STP round.
  ForcedEffectiveCpus forced(1);
  AdaptiveSpinBudget budget;
  ASSERT_EQ(budget.samples(), 0u);
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  std::thread waiter([&] { YieldingSpinPolicy::Await(flag, 0u, parker, budget); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  flag.store(1, std::memory_order_release);
  waiter.join();
  EXPECT_GE(budget.samples(), 1u);
  EXPECT_GT(budget.ema_ns(), 0);
  EXPECT_LE(budget.Get(), budget.cap());
}

TEST(WaitPolicy, YieldingSpinDoesNotFeedBudgetFromPureSpins) {
  // A grant that lands while still pure-spinning is not an observation of
  // post-descheduling latency and must not touch the EMA.
  ForcedEffectiveCpus forced(64);
  AdaptiveSpinBudget budget;
  std::atomic<std::uint32_t> flag{0};
  Parker parker;
  std::thread waiter([&] { YieldingSpinPolicy::Await(flag, 0u, parker, budget); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  flag.store(1, std::memory_order_release);
  waiter.join();
  EXPECT_EQ(budget.samples(), 0u);
}

TEST(YieldingBackoff, BurstDecaysGeometricallyToFloor) {
  YieldingBackoff backoff(1024, 64);
  EXPECT_EQ(backoff.burst(), 1024u);
  backoff.Pause();
  EXPECT_EQ(backoff.burst(), 512u);
  backoff.Pause();
  EXPECT_EQ(backoff.burst(), 256u);
  backoff.Pause();
  backoff.Pause();
  EXPECT_EQ(backoff.burst(), 64u);
  backoff.Pause();
  EXPECT_EQ(backoff.burst(), 64u);  // Floored.
  EXPECT_EQ(backoff.yields(), 5u);
}

TEST(YieldingBackoff, ResetRestoresInitialBurst) {
  YieldingBackoff backoff(512, 32);
  backoff.Pause();
  backoff.Pause();
  backoff.Reset();
  EXPECT_EQ(backoff.burst(), 512u);
  EXPECT_EQ(backoff.yields(), 2u);  // Reset does not erase the yield count.
}

TEST(EffectiveCpus, SaneAndCached) {
  const int n = EffectiveCpuCount();
  EXPECT_GE(n, 1);
  EXPECT_LE(n, LogicalCpuCount());
  EXPECT_EQ(EffectiveCpuCount(), n);
}

TEST(EffectiveCpus, TestingOverrideRoundTrips) {
  const int measured = EffectiveCpuCount();
  SetEffectiveCpuCountForTesting(3);
  EXPECT_EQ(EffectiveCpuCount(), 3);
  SetEffectiveCpuCountForTesting(0);
  EXPECT_EQ(EffectiveCpuCount(), measured);
}

TEST(SpinBudget, ResolveKeepsExplicitValues) {
  EXPECT_EQ(ResolveSpinBudget(0), 0u);
  EXPECT_EQ(ResolveSpinBudget(123), 123u);
}

TEST(SpinBudget, AutoResolvesToCalibrated) {
  EXPECT_EQ(ResolveSpinBudget(kAutoSpinBudget), CalibratedSpinBudget());
}

TEST(SpinBudget, CalibrationIsStableAndSane) {
  const std::uint32_t a = CalibratedSpinBudget();
  const std::uint32_t b = CalibratedSpinBudget();
  EXPECT_EQ(a, b);  // Cached.
  if (std::getenv("MALTHUS_SPIN_BUDGET") != nullptr) {
    // The operator pinned the budget (CI does this under TSan to keep spin
    // phases short); the measured-value sanity bounds do not apply.
    GTEST_SKIP() << "MALTHUS_SPIN_BUDGET overrides calibration";
  }
  EXPECT_GE(a, 20000u);
  EXPECT_LE(a, 1000000u);
}

TEST(Backoff, ExponentialCeilingDoublesAndSaturates) {
  ExponentialBackoff backoff(16, 64);
  XorShift64 rng(1);
  EXPECT_EQ(backoff.ceiling(), 16u);
  backoff.Pause(rng);
  EXPECT_EQ(backoff.ceiling(), 32u);
  backoff.Pause(rng);
  EXPECT_EQ(backoff.ceiling(), 64u);
  backoff.Pause(rng);
  EXPECT_EQ(backoff.ceiling(), 64u);  // Truncated.
}

TEST(Backoff, ResetRestoresInitialCeiling) {
  ExponentialBackoff backoff(8, 1024);
  XorShift64 rng(2);
  backoff.Pause(rng);
  backoff.Pause(rng);
  backoff.Reset();
  EXPECT_EQ(backoff.ceiling(), 8u);
}

TEST(Backoff, ProportionalScalesWithDistance) {
  // Behavioural smoke: longer distances must take longer (measured
  // coarsely; generous margins keep this robust under CI noise).
  const auto t0 = std::chrono::steady_clock::now();
  ProportionalBackoff(1, 64);
  const auto t1 = std::chrono::steady_clock::now();
  ProportionalBackoff(2000, 64);
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_GT((t2 - t1).count(), (t1 - t0).count());
}

}  // namespace
}  // namespace malthus
