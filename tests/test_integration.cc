// Cross-module integration tests: the paper's claims exercised end-to-end
// through the harness — CR reduces the working set without losing
// throughput, waiting policy interactions, producer-consumer fast flow, and
// the AnyLock registry driving real workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/core/mcscr.h"
#include "src/harness/fixed_time.h"
#include "src/locks/any_lock.h"
#include "src/locks/mcs.h"
#include "src/metrics/admission_log.h"
#include "src/rng/xorshift.h"
#include "src/sync/blocking_queue.h"
#include "tests/contention.h"

namespace malthus {
namespace {

struct RunStats {
  double throughput = 0.0;
  FairnessReport fairness;
};

// A scaled-down RandArray: CS touches a shared array, NCS a private one.
RunStats RunMiniRandArray(const std::string& lock_name, int threads,
                          std::chrono::milliseconds duration) {
  auto lock = MakeLock(lock_name);
  AdmissionLog log(1 << 20);
  lock->set_recorder(&log);
  constexpr std::size_t kWords = 1 << 14;  // 64 KB arrays: fast, portable.
  std::vector<std::uint32_t> shared(kWords, 1);
  std::vector<std::vector<std::uint32_t>> privates(
      static_cast<std::size_t>(threads), std::vector<std::uint32_t>(kWords, 1));
  BenchConfig config;
  config.threads = threads;
  config.duration = duration;
  std::atomic<std::uint64_t> sink{0};
  const BenchResult result = RunFixedTime(config, [&](int t) {
    XorShift64& rng = ThreadLocalRng();
    std::uint64_t sum = 0;
    lock->lock();
    for (int i = 0; i < 50; ++i) {
      sum += shared[rng.NextBelow(kWords)];
    }
    lock->unlock();
    auto& mine = privates[static_cast<std::size_t>(t)];
    for (int i = 0; i < 200; ++i) {
      sum += mine[rng.NextBelow(kWords)];
    }
    sink.fetch_add(sum, std::memory_order_relaxed);
  });
  RunStats stats;
  stats.throughput = result.Throughput();
  stats.fairness = log.Report(1000);
  return stats;
}

TEST(Integration, CrShrinksWorkingSetVersusMcs) {
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "LWSS restriction is concurrency-emergent; one effective "
                    "CPU serializes the circulating set for MCS and CR alike";
  }
  const int threads = 12;
  const auto duration = std::chrono::milliseconds(250);
  const RunStats mcs = RunMiniRandArray("mcs-stp", threads, duration);
  const RunStats cr = RunMiniRandArray("mcscr-stp", threads, duration);
  EXPECT_LT(cr.fairness.average_lwss, mcs.fairness.average_lwss);
  EXPECT_LT(cr.fairness.mttr, mcs.fairness.mttr);
}

TEST(Integration, CrThroughputCompetitiveAtHighThreadCounts) {
  // "Primum non nocere": MCSCR-STP must not collapse where MCS-STP
  // struggles. We assert CR is at least half of MCS (in practice it is
  // well above 1x; the loose bound keeps CI robust).
  const int threads = 16;
  const auto duration = std::chrono::milliseconds(250);
  const RunStats mcs = RunMiniRandArray("mcs-stp", threads, duration);
  const RunStats cr = RunMiniRandArray("mcscr-stp", threads, duration);
  EXPECT_GT(cr.throughput, 0.5 * mcs.throughput);
}

TEST(Integration, CrLongTermFairnessHoldsInRealWorkload) {
  auto lock = MakeLock("mcscr-stp");
  AdmissionLog log(1 << 20);
  lock->set_recorder(&log);
  BenchConfig config;
  config.threads = 8;
  config.duration = std::chrono::milliseconds(300);
  RunFixedTime(config, [&](int) {
    lock->lock();
    lock->unlock();
  });
  const auto counts = log.CountsPerThread();
  EXPECT_EQ(counts.size(), 8u);  // Every thread acquired at least once.
  // Gini over a full run with 1/1000 fairness stays well below total
  // starvation (1.0); the paper reports ~0.08 for MCSCR at 32 threads.
  EXPECT_LT(log.Report().gini, 0.9);
}

TEST(Integration, RegistryLocksAllSurviveHarnessRun) {
  for (const auto& name : AllLockNames()) {
    auto lock = MakeLock(name);
    ASSERT_NE(lock, nullptr) << name;
    BenchConfig config;
    config.threads = 4;
    config.duration = std::chrono::milliseconds(30);
    std::atomic<std::uint64_t> counter{0};
    const BenchResult result = RunFixedTime(config, [&](int) {
      lock->lock();
      counter.fetch_add(1, std::memory_order_relaxed);
      lock->unlock();
    });
    EXPECT_GT(result.total_iterations, 0u) << name;
  }
}

TEST(Integration, ProducerConsumerFastFlowUnderCr) {
  // Figure 10's mechanism: with a CR condvar+lock, producers stop futilely
  // acquiring the lock only to block on the full condvar. We check the
  // accounting: messages conveyed vs lock acquisitions per message.
  constexpr int kMessages = 20000;
  auto run = [&](double append_probability) {
    BoundedBlockingQueue<int, McscrStpLock> queue(
        1000, CrCondVarOptions{.append_probability = append_probability});
    std::atomic<int> produced{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < 6; ++p) {
      threads.emplace_back([&] {
        while (true) {
          const int n = produced.fetch_add(1);
          if (n >= kMessages) {
            break;
          }
          queue.Push(n);
        }
      });
    }
    std::atomic<int> consumed{0};
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&] {
        while (true) {
          const int n = consumed.fetch_add(1);
          if (n >= kMessages) {
            break;
          }
          queue.Pop();
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    return static_cast<double>(queue.lock_acquisitions()) / kMessages;
  };
  const double fifo_cost = run(1.0);
  const double cr_cost = run(1.0 / 1000);
  // Both must at least convey everything with a sane cost (2..4 acquisitions
  // per message plus condvar requeues).
  EXPECT_GT(fifo_cost, 1.9);
  EXPECT_GT(cr_cost, 1.9);
  EXPECT_LT(cr_cost, fifo_cost + 2.0);
}

TEST(Integration, RecorderOverheadIsTolerable) {
  // The admission log must not destroy throughput (it is used inside the
  // measured region in some benches).
  if (test::SingleCpuHost()) {
    GTEST_SKIP() << "throughput-ratio comparison needs parallel contenders; "
                    "one effective CPU makes both runs scheduler-paced";
  }
  auto plain = MakeLock("mcscr-stp");
  auto instrumented = MakeLock("mcscr-stp");
  AdmissionLog log(1 << 20);
  instrumented->set_recorder(&log);
  BenchConfig config;
  config.threads = 4;
  config.duration = std::chrono::milliseconds(150);
  const double t_plain = RunFixedTime(config, [&](int) {
    plain->lock();
    plain->unlock();
  }).Throughput();
  const double t_inst = RunFixedTime(config, [&](int) {
    instrumented->lock();
    instrumented->unlock();
  }).Throughput();
  EXPECT_GT(t_inst, 0.3 * t_plain);
}

}  // namespace
}  // namespace malthus
