// MCSCRN (NUMA-aware CR) specifics: node-homogeneous admission, remote
// culling, home rotation for cross-node fairness, and migration accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/mcscrn.h"
#include "src/core/topology.h"
#include "src/metrics/admission_log.h"
#include "tests/contention.h"

namespace malthus {
namespace {

class McscrnTest : public ::testing::Test {
 protected:
  void SetUp() override { Topology::Instance().ConfigureSimulated(2); }
};

TEST_F(McscrnTest, TopologyHonoursForcedNode) {
  ThreadCtx& self = Self();
  const std::uint32_t saved = self.forced_node;
  self.forced_node = 1;
  EXPECT_EQ(Topology::Instance().NodeOf(self), 1u);
  self.forced_node = 5;  // Wraps modulo node count.
  EXPECT_EQ(Topology::Instance().NodeOf(self), 1u);
  self.forced_node = saved;
}

TEST_F(McscrnTest, MutualExclusion) {
  McscrnStpLock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      Self().forced_node = static_cast<std::uint32_t>(t % 2);
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8u * 5000u);
}

TEST_F(McscrnTest, RemoteThreadsAreCulled) {
  McscrnStpLock lock;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      Self().forced_node = static_cast<std::uint32_t>(t % 2);
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GT(lock.remote_culls(), 0u);
}

TEST_F(McscrnTest, HomeRotationConfersCrossNodeFairness) {
  McscrnOptions opts;
  opts.fairness_one_in = 100;
  McscrnStpLock lock(opts);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> acquires(8, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      Self().forced_node = static_cast<std::uint32_t>(t % 2);
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
        ++local;
      }
      acquires[static_cast<std::size_t>(t)] = local;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  for (std::size_t t = 0; t < acquires.size(); ++t) {
    EXPECT_GT(acquires[t], 0u) << "thread " << t << " (node " << t % 2 << ") starved";
  }
  EXPECT_GT(lock.home_rotations(), 0u);
}

TEST_F(McscrnTest, MigrationRateLowerThanNodeObliviousRoundRobin) {
  if (test::SingleCpuHost()) {
    // Low migration rate needs the cull scan to engage, which needs waiters
    // to stack up in the chain — on a serialized scheduler the chain stays
    // ~1 deep and grants alternate nodes (concurrency-emergent, see
    // tests/contention.h).
    GTEST_SKIP() << "migration restriction is concurrency-emergent";
  }
  // With 2 simulated nodes and node-homogeneous admission, grants crossing
  // node boundaries should be rare relative to total grants. A node-
  // oblivious FIFO over alternating nodes would migrate ~every grant.
  McscrnStpLock lock;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      Self().forced_node = static_cast<std::uint32_t>(t % 2);
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock();
        lock.unlock();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  ASSERT_GT(lock.grants(), 200u);
  const double migration_rate =
      static_cast<double>(lock.lock_migrations()) / static_cast<double>(lock.grants());
  // A node-oblivious FIFO over alternating-node arrivals migrates on nearly
  // every grant (rate ~1); node-homogeneous admission must stay well below
  // that even on a noisy scheduler.
  EXPECT_LT(migration_rate, 0.65);
}

TEST_F(McscrnTest, SingleNodeDegeneratesGracefully) {
  Topology::Instance().ConfigureSimulated(1);
  McscrnStpLock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      Self().forced_node = UINT32_MAX;  // Use provider default.
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 6u * 5000u);
  EXPECT_EQ(lock.remote_culls(), 0u);  // Everyone is on the home node.
  Topology::Instance().ConfigureSimulated(2);
}

}  // namespace
}  // namespace malthus
