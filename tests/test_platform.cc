// Unit tests for the platform substrate: Parker (park/unpark semantics),
// thread registry, rusage snapshots, sysinfo, and the xorshift RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/platform/align.h"
#include "src/platform/park.h"
#include "src/platform/rusage.h"
#include "src/platform/sysinfo.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"

namespace malthus {
namespace {

TEST(Parker, UnparkBeforeParkReturnsImmediately) {
  Parker p;
  p.Unpark();
  EXPECT_TRUE(p.PermitPending());
  const auto start = std::chrono::steady_clock::now();
  p.Park();  // Consumes the pending permit without blocking.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(50));
  EXPECT_FALSE(p.PermitPending());
}

TEST(Parker, RedundantUnparksCollapseToOnePermit) {
  Parker p;
  p.Unpark();
  p.Unpark();
  p.Unpark();
  p.Park();  // One permit consumed...
  EXPECT_FALSE(p.PermitPending());  // ...and nothing left.
}

TEST(Parker, ParkBlocksUntilUnpark) {
  Parker p;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    p.Park();
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(woke.load());
  p.Unpark();
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST(Parker, ParkForTimesOutWithoutPermit) {
  Parker p;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.ParkFor(std::chrono::milliseconds(20)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(Parker, ParkForConsumesPendingPermit) {
  Parker p;
  p.Unpark();
  EXPECT_TRUE(p.ParkFor(std::chrono::milliseconds(20)));
}

TEST(Parker, ParkForWokenByConcurrentUnpark) {
  Parker p;
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    p.Unpark();
  });
  EXPECT_TRUE(p.ParkFor(std::chrono::seconds(5)));
  t.join();
}

TEST(Parker, PermitPostedAfterTimeoutStaysPending) {
  Parker p;
  EXPECT_FALSE(p.ParkFor(std::chrono::milliseconds(5)));
  p.Unpark();
  EXPECT_TRUE(p.PermitPending());
  p.Park();  // Fast path.
  EXPECT_FALSE(p.PermitPending());
}

TEST(Parker, FastPathCounterTracksPendingConsumption) {
  Parker p;
  p.Unpark();
  p.Park();
  EXPECT_EQ(p.fast_path_parks(), 1u);
  EXPECT_EQ(p.kernel_waits(), 0u);
}

TEST(Parker, StressManyHandoffs) {
  Parker ping;
  Parker pong;
  constexpr int kRounds = 20000;
  std::thread t([&] {
    for (int i = 0; i < kRounds; ++i) {
      ping.Park();
      pong.Unpark();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    ping.Unpark();
    pong.Park();
  }
  t.join();
}

TEST(ThreadRegistry, IdsAreDenseAndStable) {
  const ThreadId mine = Self().id;
  EXPECT_EQ(Self().id, mine);  // Stable on repeat calls.
  ThreadId other = kInvalidThreadId;
  std::thread t([&] { other = Self().id; });
  t.join();
  EXPECT_NE(other, kInvalidThreadId);
  EXPECT_NE(other, mine);
  EXPECT_GE(RegisteredThreadCount(), 2u);
}

TEST(ThreadRegistry, ParkerIsPerThread) {
  Parker* mine = &Self().parker;
  Parker* other = nullptr;
  std::thread t([&] { other = &Self().parker; });
  t.join();
  EXPECT_NE(mine, other);
}

TEST(Sysinfo, CpuCountPositive) { EXPECT_GE(LogicalCpuCount(), 1); }

TEST(Sysinfo, LlcSizePlausible) {
  const std::size_t llc = LastLevelCacheBytes();
  EXPECT_GE(llc, 256u * 1024);         // At least 256 KB.
  EXPECT_LE(llc, 4096ull << 20);       // At most 4 GB.
}

TEST(Rusage, CapturesCpuTime) {
  const UsageSnapshot begin = CaptureUsage();
  // Burn enough CPU to exceed the coarse (10 ms) rusage granularity.
  volatile std::uint64_t sink = 0;
  for (long i = 0; i < 80000000L; ++i) {
    sink = sink + static_cast<std::uint64_t>(i);
  }
  const UsageSnapshot end = CaptureUsage();
  const UsageDelta d = DiffUsage(begin, end, 0.05);
  EXPECT_GT(d.cpu_seconds, 0.0);
  EXPECT_GT(d.CpuUtilization(), 0.0);
  EXPECT_GT(d.ModelWattsAboveIdle(), 0.0);
}

TEST(Rusage, KernelParkCounterTracksVoluntarySwitches) {
  // getrusage's ru_nvcsw is not populated on all kernels (sandboxes report
  // 0), so lock-induced voluntary context switches are counted at the
  // source: every Park that blocks in the kernel.
  const std::uint64_t before = TotalKernelParks();
  Parker p;
  std::thread t([&] { p.Park(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  p.Unpark();
  t.join();
  EXPECT_GE(TotalKernelParks(), before + 1);
}

TEST(Align, CacheAlignedHasNoFalseSharing) {
  CacheAligned<std::uint64_t> a[2];
  const auto* p0 = reinterpret_cast<const char*>(&a[0]);
  const auto* p1 = reinterpret_cast<const char*>(&a[1]);
  EXPECT_GE(static_cast<std::size_t>(p1 - p0), kCacheLineSize);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p0) % kCacheLineSize, 0u);
}

TEST(XorShift, DeterministicForSeed) {
  XorShift64 a(123);
  XorShift64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(XorShift, DifferentSeedsDiverge) {
  XorShift64 a(1);
  XorShift64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(XorShift, NextBelowRespectsBound) {
  XorShift64 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(37), 37u);
  }
}

TEST(XorShift, UniformityChiSquaredSane) {
  XorShift64 rng(7);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBelow(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 dof; P(chi2 > 37) < 0.002 for a uniform source.
  EXPECT_LT(chi2, 37.0);
}

TEST(XorShift, BernoulliOneInMatchesRate) {
  XorShift64 rng(11);
  constexpr int kTrials = 200000;
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.BernoulliOneIn(100) ? 1 : 0;
  }
  EXPECT_NEAR(hits, kTrials / 100, kTrials / 100 / 3);
}

TEST(XorShift, BernoulliEdgeCases) {
  XorShift64 rng(5);
  EXPECT_FALSE(rng.BernoulliOneIn(0));  // "never"
  EXPECT_TRUE(rng.BernoulliOneIn(1));   // "always"
  EXPECT_FALSE(rng.BernoulliP(0.0));
  EXPECT_TRUE(rng.BernoulliP(1.0));
}

TEST(XorShift, BernoulliPMatchesRate) {
  XorShift64 rng(17);
  constexpr int kTrials = 200000;
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.BernoulliP(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits, kTrials / 4, kTrials / 4 / 10);
}

}  // namespace
}  // namespace malthus
