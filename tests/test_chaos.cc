// FailPoint-driven chaos tests: deterministic coverage of the few-
// instruction races in the grant/cancel/park paths, plus an oversubscribed
// randomized storm with every chaos site armed.
//
// All tests skip in builds without -DMALTHUS_FAILPOINTS=ON (the chaos CI
// job compiles them in); the suite must pass deterministically there with
// zero hangs, zero leaked QNodes, and zero TSan reports.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/chaos/failpoint.h"
#include "src/core/lifocr.h"
#include "src/core/loiter.h"
#include "src/core/mcscr.h"
#include "src/core/mcscrn.h"
#include "src/locks/any_lock.h"
#include "src/locks/lock_base.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/platform/park.h"
#include "src/platform/thread_registry.h"
#include "tests/contention.h"
#include "tests/watchdog.h"

namespace malthus {
namespace {

using test::ScaledIters;
using namespace std::chrono_literals;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "built without MALTHUS_FAILPOINTS";
    }
    failpoint::Reset();
  }
  void TearDown() override {
    if (failpoint::kCompiledIn) {
      failpoint::Reset();
    }
  }
};

// ---------------------------------------------------------------------------
// Framework basics.

TEST_F(ChaosTest, TriggerFiresWhenArmedNotAfterReset) {
  EXPECT_FALSE(MALTHUS_FAILPOINT_TRIGGERED("chaos.test.site"));
  failpoint::Configure("chaos.test.site", {.action = failpoint::Action::kTrigger});
  EXPECT_TRUE(MALTHUS_FAILPOINT_TRIGGERED("chaos.test.site"));
  EXPECT_EQ(failpoint::Fires("chaos.test.site"), 1u);
  failpoint::Reset();
  EXPECT_FALSE(MALTHUS_FAILPOINT_TRIGGERED("chaos.test.site"));
  EXPECT_EQ(failpoint::Fires("chaos.test.site"), 0u);
}

TEST_F(ChaosTest, MaxHitsBoundsFires) {
  failpoint::Configure("chaos.test.maxhits",
                       {.action = failpoint::Action::kTrigger, .max_hits = 2});
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (MALTHUS_FAILPOINT_TRIGGERED("chaos.test.maxhits")) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 2);
}

TEST_F(ChaosTest, SeededProbabilityIsReproducible) {
  auto draw = [](std::uint64_t seed) {
    failpoint::Reset();
    failpoint::SetSeed(seed);
    failpoint::Configure("chaos.test.prob",
                         {.action = failpoint::Action::kTrigger, .probability = 0.5});
    std::uint64_t pattern = 0;
    for (int i = 0; i < 64; ++i) {
      pattern = (pattern << 1) | (MALTHUS_FAILPOINT_TRIGGERED("chaos.test.prob") ? 1u : 0u);
    }
    return pattern;
  };
  const std::uint64_t a = draw(42);
  const std::uint64_t b = draw(42);
  const std::uint64_t c = draw(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);          // p=0.5 over 64 draws: all-zero means a broken RNG.
  EXPECT_NE(a, ~0ull);
  EXPECT_NE(a, c) << "different seeds should diverge";
}

// ---------------------------------------------------------------------------
// Satellite: the PR 1 ParkFor timeout/permit race, driven deterministically.
// park.spurious forces every kernel wait to return immediately, so ParkFor
// spins through its retract CAS (kParked -> kNeutral) at maximum frequency
// while Unpark posts permits into the window. The invariants: a ParkFor
// with no permit never reports true, never returns before its deadline,
// and a posted permit is never lost (the loser of the retract CAS must
// consume it and report true).

TEST_F(ChaosTest, ParkForSpuriousWakesStillTimeOut) {
  failpoint::Configure("park.spurious", {.action = failpoint::Action::kTrigger});
  Parker& parker = Self().parker;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(parker.ParkFor(30ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
}

TEST_F(ChaosTest, ParkForPermitRaceNeverLosesPermits) {
  failpoint::Configure("park.spurious", {.action = failpoint::Action::kTrigger});
  std::atomic<int> consumed{0};
  std::atomic<int> posted{0};
  std::atomic<bool> stop{false};
  Parker* waiter_parker = nullptr;
  std::atomic<bool> ready{false};
  std::thread waiter([&] {
    waiter_parker = &Self().parker;
    ready.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      // Deadline chosen so the retract CAS races the poster's permit store
      // as often as possible.
      if (Self().parker.ParkFor(std::chrono::microseconds(20))) {
        consumed.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    // Drain a possibly in-flight final permit so accounting closes.
    if (Self().parker.ParkFor(10ms)) {
      consumed.fetch_add(1, std::memory_order_acq_rel);
    }
  });
  while (!ready.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(1ms);
  }
  const int rounds = ScaledIters(2000, 2);
  for (int i = 0; i < rounds; ++i) {
    // Post a permit only after the previous one was consumed: permits are
    // sticky and collapse, so pacing them 1:1 makes the count exact.
    waiter_parker->Unpark();
    posted.fetch_add(1, std::memory_order_acq_rel);
    while (consumed.load(std::memory_order_acquire) < posted.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  stop.store(true, std::memory_order_release);
  waiter.join();
  EXPECT_EQ(consumed.load(), posted.load());
}

// ---------------------------------------------------------------------------
// Satellite: cancellation x wake-ahead on every PrepareHandover lock. A
// waiter cancels at its deadline; the owner then runs wake-ahead (which may
// target the cancelled heir — a stale permit) and unlocks; a second,
// blocking waiter must still be granted promptly, and the cancelled
// waiter's QNode must be reclaimed without leaking.

template <typename L>
void CancelledHeirDoesNotStrandGrant() {
  const std::uint64_t zombies_before = OutstandingZombieQNodes();
  const std::uint64_t wakes_before = TotalKernelWakes();
  {
    L lock;
    // Delay grant-side stores so the cancel CAS wins races it would rarely
    // win under scheduler luck.
    for (const char* site : {"mcs.grant", "mcscr.grant", "mcscrn.grant", "lifocr.pop",
                             "pthread.pop", "loiter.handoff"}) {
      failpoint::Configure(site,
                           {.action = failpoint::Action::kDelay, .delay_iters = 2000});
    }
    lock.lock();
    std::atomic<bool> cancelled{false};
    std::atomic<bool> acquired{false};
    std::thread cancelling([&] {
      EXPECT_FALSE(lock.TryLockFor(20ms));
      cancelled.store(true, std::memory_order_release);
      // Stay alive until the second waiter got through, then reap.
      while (!acquired.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(1ms);
      }
      lock.lock();
      lock.unlock();
    });
    while (!cancelled.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(1ms);
    }
    std::thread blocking([&] {
      lock.lock();
      acquired.store(true, std::memory_order_release);
      lock.unlock();
    });
    // Give the blocking waiter time to enqueue (possibly behind the
    // cancelled husk), then wake-ahead + unlock. The hint may land on the
    // husk's parker — a stale permit the protocol must tolerate.
    std::this_thread::sleep_for(10ms);
    lock.PrepareHandover();
    lock.unlock();
    cancelling.join();
    blocking.join();
    EXPECT_TRUE(acquired.load());
    lock.lock();
    lock.unlock();
  }
  failpoint::Reset();
  EXPECT_EQ(OutstandingZombieQNodes(), zombies_before);
  // Sanity on the Parker counters: the run terminated, so however many
  // kernel wakes were issued, none were stranded mid-protocol. (The exact
  // count is scheduling-dependent; what we pin is termination + no leak.)
  EXPECT_GE(TotalKernelWakes(), wakes_before);
}

TEST_F(ChaosTest, CancelVsWakeAheadMcsStp) { CancelledHeirDoesNotStrandGrant<McsStpLock>(); }
TEST_F(ChaosTest, CancelVsWakeAheadMcscrStp) { CancelledHeirDoesNotStrandGrant<McscrStpLock>(); }
TEST_F(ChaosTest, CancelVsWakeAheadMcscrnStp) {
  CancelledHeirDoesNotStrandGrant<McscrnStpLock>();
}
TEST_F(ChaosTest, CancelVsWakeAheadLifoCrStp) {
  CancelledHeirDoesNotStrandGrant<LifoCrStpLock>();
}
TEST_F(ChaosTest, CancelVsWakeAheadLoiter) { CancelledHeirDoesNotStrandGrant<LoiterLock>(); }
TEST_F(ChaosTest, CancelVsWakeAheadPthreadStyle) {
  CancelledHeirDoesNotStrandGrant<PthreadStyleMutex>();
}

// ---------------------------------------------------------------------------
// The chaos storm: every injection site armed with randomized yields and
// delays, 4x oversubscription, timed+blocking acquires over every parking
// lock. The watchdog converts any lost wakeup into a failure with a state
// dump in well under the ctest timeout.

void ArmAllSitesRandomized() {
  const failpoint::SiteConfig yield{.action = failpoint::Action::kYield, .probability = 0.05};
  const failpoint::SiteConfig delay{
      .action = failpoint::Action::kDelay, .probability = 0.05, .delay_iters = 500};
  for (const char* site :
       {"park.spurious", "park.unpark.delay", "mcs.cancel", "mcs.grant", "mcscr.cancel",
        "mcscr.fairness", "mcscr.refill", "mcscr.cull", "mcscr.grant", "mcscr.purge",
        "lifocr.cancel", "lifocr.fairness", "lifocr.pop", "mcscrn.cancel", "mcscrn.refill",
        "mcscrn.cull", "mcscrn.grant", "mcscrn.purge", "mcscrn.rotate", "pthread.pop",
        "pthread.cancel", "loiter.cancel", "loiter.handoff", "sem.post", "sem.cancel",
        "condvar.signal", "condvar.cancel"}) {
    failpoint::Configure(site, (std::string(site).find("cancel") != std::string::npos ||
                                std::string(site).find("park.") == 0)
                                   ? yield
                                   : delay);
  }
  // Wake-ahead elision is armed separately at low probability: it converts
  // hints into no-ops, which the timed parks must absorb.
  failpoint::Configure("park.wakeahead.elide",
                       {.action = failpoint::Action::kTrigger, .probability = 0.2});
  failpoint::Configure("park.wakeahead.delay", delay);
}

void DumpChaosState() {
  std::fprintf(stderr, "outstanding zombie qnodes: %llu\n",
               static_cast<unsigned long long>(OutstandingZombieQNodes()));
  std::fprintf(stderr, "total kernel parks=%llu wakes=%llu wake-aheads=%llu\n",
               static_cast<unsigned long long>(TotalKernelParks()),
               static_cast<unsigned long long>(TotalKernelWakes()),
               static_cast<unsigned long long>(TotalWakeAheads()));
  for (const auto& site : failpoint::Sites()) {
    std::fprintf(stderr, "  site %-22s hits=%llu fires=%llu\n", site.name.c_str(),
                 static_cast<unsigned long long>(site.hits),
                 static_cast<unsigned long long>(site.fires));
  }
}

template <typename L>
void ChaosStorm(const char* label) {
  const std::uint64_t zombies_before = OutstandingZombieQNodes();
  {
    L lock;
    ArmAllSitesRandomized();
    const int threads = 4 * std::max(1, EffectiveCpuCount());
    const int iters = ScaledIters(1500, threads);
    std::atomic<int> in_cs{0};
    std::atomic<int> remaining{threads};
    test::StallWatchdog watchdog(25s, DumpChaosState);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = 0; i < iters; ++i) {
          watchdog.Beat();
          bool acquired;
          if ((i + t) % 3 == 0) {
            lock.lock();
            acquired = true;
          } else {
            acquired = lock.TryLockFor(std::chrono::microseconds(((i * 29 + t * 7) % 60)));
          }
          if (acquired) {
            EXPECT_EQ(in_cs.fetch_add(1, std::memory_order_acq_rel), 0) << label;
            in_cs.fetch_sub(1, std::memory_order_acq_rel);
            if (i % 8 == 0) {
              lock.PrepareHandover();
            }
            lock.unlock();
          }
        }
        remaining.fetch_sub(1, std::memory_order_acq_rel);
        while (remaining.load(std::memory_order_acquire) > 0) {
          std::this_thread::sleep_for(1ms);
        }
        lock.lock();
        lock.unlock();
      });
    }
    for (auto& th : pool) {
      th.join();
    }
    failpoint::Reset();
  }
  EXPECT_EQ(OutstandingZombieQNodes(), zombies_before) << label;
}

TEST_F(ChaosTest, StormMcsStp) { ChaosStorm<McsStpLock>("mcs-stp"); }
TEST_F(ChaosTest, StormMcscrStp) { ChaosStorm<McscrStpLock>("mcscr-stp"); }
TEST_F(ChaosTest, StormLifoCrStp) { ChaosStorm<LifoCrStpLock>("lifocr-stp"); }
TEST_F(ChaosTest, StormMcscrnStp) { ChaosStorm<McscrnStpLock>("mcscrn-stp"); }
TEST_F(ChaosTest, StormLoiter) { ChaosStorm<LoiterLock>("loiter"); }
TEST_F(ChaosTest, StormPthreadStyle) { ChaosStorm<PthreadStyleMutex>("pthread-style"); }

// Echo the seed so a failing randomized run can be replayed with
// MALTHUS_CHAOS_SEED (the chaos CI job greps for this line).
TEST_F(ChaosTest, EchoSeedForReplay) {
  failpoint::ConfigureFromEnv();
  std::fprintf(stderr, "MALTHUS_CHAOS_SEED=%llu\n",
               static_cast<unsigned long long>(failpoint::Seed()));
}

}  // namespace
}  // namespace malthus
