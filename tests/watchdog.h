// Stall watchdog for contention/chaos tests.
//
// A lost wakeup or a stranded grant manifests as a hang, and a hang under
// ctest is a 900-second timeout with zero diagnostics. The watchdog turns
// it into a prompt failure with state attached: worker threads call Beat()
// as they make progress; a monitor thread polls ~4x/second, and if no beat
// lands within `stall_after` it prints the test's dump callback (per-lock
// queue/passive-list state, Parker counters, armed FailPoint sites) to
// stderr and aborts — gtest/ctest then report the failure with the dump in
// the log.
//
// The monitor only reads an atomic beat counter, so Beat() costs one
// relaxed fetch_add and can sit inside the hottest loop.
#ifndef MALTHUS_TESTS_WATCHDOG_H_
#define MALTHUS_TESTS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace malthus {
namespace test {

class StallWatchdog {
 public:
  StallWatchdog(std::chrono::milliseconds stall_after, std::function<void()> dump)
      : stall_after_(stall_after), dump_(std::move(dump)), monitor_([this] { Run(); }) {}
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  ~StallWatchdog() {
    {
      std::lock_guard<std::mutex> g(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    monitor_.join();
  }

  // Progress heartbeat; call from worker loops.
  void Beat() { beats_.fetch_add(1, std::memory_order_relaxed); }

 private:
  void Run() {
    std::unique_lock<std::mutex> g(mu_);
    std::uint64_t last = beats_.load(std::memory_order_relaxed);
    auto last_progress = std::chrono::steady_clock::now();
    while (!stop_) {
      cv_.wait_for(g, std::chrono::milliseconds(250));
      if (stop_) {
        return;
      }
      const std::uint64_t cur = beats_.load(std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      if (cur != last) {
        last = cur;
        last_progress = now;
        continue;
      }
      if (now - last_progress >= stall_after_) {
        std::fprintf(stderr,
                     "[StallWatchdog] no progress beat for %lld ms (beats=%llu) — "
                     "dumping state and aborting\n",
                     static_cast<long long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                                now - last_progress)
                                                .count()),
                     static_cast<unsigned long long>(cur));
        if (dump_) {
          dump_();
        }
        std::fflush(stderr);
        std::abort();
      }
    }
  }

  const std::chrono::milliseconds stall_after_;
  std::function<void()> dump_;
  std::atomic<std::uint64_t> beats_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread monitor_;
};

}  // namespace test
}  // namespace malthus

#endif  // MALTHUS_TESTS_WATCHDOG_H_
