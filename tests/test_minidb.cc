// minidb substrate: skiplist CRUD + invariants, SimpleLRU semantics and
// displacement tracking, and MiniDb end-to-end (readwhilewriting shape).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/locks/mcs.h"
#include "src/minidb/minidb.h"
#include "src/minidb/simple_lru.h"
#include "src/minidb/skiplist.h"
#include "src/rng/xorshift.h"

namespace malthus {
namespace {

TEST(SkipList, PutGetDelete) {
  SkipList list;
  EXPECT_FALSE(list.Get(42).has_value());
  list.Put(42, "answer");
  ASSERT_TRUE(list.Get(42).has_value());
  EXPECT_EQ(*list.Get(42), "answer");
  EXPECT_TRUE(list.Delete(42));
  EXPECT_FALSE(list.Get(42).has_value());
  EXPECT_FALSE(list.Delete(42));
}

TEST(SkipList, OverwriteKeepsSingleEntry) {
  SkipList list;
  list.Put(7, "a");
  list.Put(7, "b");
  EXPECT_EQ(list.Size(), 1u);
  EXPECT_EQ(*list.Get(7), "b");
}

TEST(SkipList, ManyKeysOrderedAndConsistent) {
  SkipList list;
  XorShift64 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.Next() % 100000;
    keys.push_back(k);
    list.Put(k, std::to_string(k));
  }
  EXPECT_TRUE(list.CheckInvariants());
  for (const auto k : keys) {
    ASSERT_TRUE(list.Get(k).has_value());
    EXPECT_EQ(*list.Get(k), std::to_string(k));
  }
}

TEST(SkipList, DeleteMaintainsInvariants) {
  SkipList list;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    list.Put(k, "v");
  }
  for (std::uint64_t k = 0; k < 1000; k += 2) {
    EXPECT_TRUE(list.Delete(k));
  }
  EXPECT_EQ(list.Size(), 500u);
  EXPECT_TRUE(list.CheckInvariants());
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(list.Get(k).has_value(), k % 2 == 1);
  }
}

TEST(SkipList, LowerBound) {
  SkipList list;
  list.Put(10, "a");
  list.Put(20, "b");
  list.Put(30, "c");
  EXPECT_EQ(*list.LowerBoundKey(5), 10u);
  EXPECT_EQ(*list.LowerBoundKey(10), 10u);
  EXPECT_EQ(*list.LowerBoundKey(11), 20u);
  EXPECT_EQ(*list.LowerBoundKey(25), 30u);
  EXPECT_FALSE(list.LowerBoundKey(31).has_value());
}

TEST(SimpleLru, LookupPromotesAndInsertTrims) {
  SimpleLru<McsSpinLock> lru(3);
  lru.Insert(1, 100);
  lru.Insert(2, 200);
  lru.Insert(3, 300);
  EXPECT_EQ(*lru.Lookup(1), 100u);  // 1 is now MRU.
  lru.Insert(4, 400);               // Evicts 2 (LRU).
  EXPECT_TRUE(lru.Lookup(1).has_value());
  EXPECT_FALSE(lru.Lookup(2).has_value());
  EXPECT_TRUE(lru.Lookup(3).has_value());
  EXPECT_TRUE(lru.Lookup(4).has_value());
  EXPECT_EQ(lru.Size(), 3u);
}

TEST(SimpleLru, OverwriteUpdatesValueInPlace) {
  SimpleLru<McsSpinLock> lru(4);
  lru.Insert(9, 1);
  lru.Insert(9, 2);
  EXPECT_EQ(lru.Size(), 1u);
  EXPECT_EQ(*lru.Lookup(9), 2u);
}

TEST(SimpleLru, MissRateAccounting) {
  SimpleLru<McsSpinLock> lru(8);
  lru.Lookup(1);  // miss
  lru.Insert(1, 1);
  lru.Lookup(1);  // hit
  EXPECT_EQ(lru.hits(), 1u);
  EXPECT_EQ(lru.misses(), 1u);
  EXPECT_DOUBLE_EQ(lru.MissRate(), 0.5);
}

TEST(SimpleLru, DisplacementDiscrimination) {
  // Footnote 33: the software cache can tell self- from other-displacement.
  SimpleLru<McsSpinLock> lru(2, /*track_displacement=*/true);
  lru.Insert(1, 1, /*tid=*/0);
  lru.Insert(2, 2, /*tid=*/0);
  lru.Insert(3, 3, /*tid=*/0);  // Thread 0 displaces its own entry 1.
  EXPECT_EQ(lru.self_displacements(), 1u);
  lru.Insert(4, 4, /*tid=*/1);  // Thread 1 displaces thread 0's entry 2.
  EXPECT_EQ(lru.extrinsic_displacements(), 1u);
}

TEST(SimpleLru, ConcurrentMixedOpsStaySane) {
  SimpleLru<McscrStpLock> lru(1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.NextBelow(5000);
        if (rng.NextBelow(10) == 0) {
          lru.Insert(k, k * 2, static_cast<std::uint32_t>(t));
        } else if (!lru.Lookup(k).has_value()) {
          lru.Insert(k, k * 2, static_cast<std::uint32_t>(t));
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_LE(lru.Size(), 1000u);
  // Values, when present, are always consistent.
  for (std::uint64_t k = 0; k < 5000; ++k) {
    const auto v = lru.Lookup(k);
    if (v.has_value()) {
      EXPECT_EQ(*v, k * 2);
    }
  }
}

TEST(MiniDb, PutGetDeleteRoundTrip) {
  MiniDb<McsSpinLock> db;
  db.Put(1, "one");
  db.Put(2, "two");
  EXPECT_EQ(*db.Get(1), "one");
  EXPECT_EQ(*db.Get(2), "two");
  EXPECT_FALSE(db.Get(3).has_value());
  EXPECT_TRUE(db.Delete(1));
  EXPECT_FALSE(db.Get(1).has_value());
  EXPECT_EQ(db.Size(), 1u);
}

TEST(MiniDb, BlockCacheWarmsOnRepeatedReads) {
  MiniDb<McsSpinLock> db(128);
  for (std::uint64_t k = 0; k < 64; ++k) {
    db.Put(k, "v");
  }
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(db.Get(k).has_value());
    }
  }
  // 64 keys / 16 per block = 4 blocks; after warmup everything hits.
  EXPECT_LT(db.CacheMissRate(), 0.1);
}

TEST(MiniDb, ReadWhileWritingIsLinearizableEnough) {
  // One writer updating a sentinel pair, readers must never observe torn
  // state across the two keys (both guarded by the same DB mutex).
  MiniDb<McscrStpLock> db;
  db.Put(1, "0");
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    int v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      db.Put(1, std::to_string(++v));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = db.Get(1);
        if (!v.has_value()) {
          torn.store(true);
          break;
        }
        const std::uint64_t now = std::stoull(*v);
        if (now + 1 < last) {  // Writer is monotone; allow benign raciness of one step.
          torn.store(true);
          break;
        }
        last = now;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  writer.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_FALSE(torn.load());
  EXPECT_GT(db.reads(), 0u);
  EXPECT_GT(db.writes(), 0u);
}

TEST(MiniDb, CacheHitServesWithoutDbMutex) {
  // The PR 8 satellite fix: a fresh cached block serves the value with no
  // DB-mutex acquisition (leveldb behavior — table blocks are immutable).
  // Warm the cache, seize the DB mutex from this thread, and a reader must
  // still complete a Get on the warmed key.
  MiniDb<McsSpinLock> db(128);
  db.Put(1, "warm");
  ASSERT_TRUE(db.Get(1).has_value());  // fill the block
  const std::uint64_t hits_before = db.cache_hits();

  db.db_mutex().lock();
  std::atomic<bool> done{false};
  std::string observed;
  std::thread reader([&] {
    const auto v = db.Get(1);
    observed = v.value_or("<missing>");
    done.store(true, std::memory_order_release);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  const bool completed = done.load(std::memory_order_acquire);
  // Unlock before asserting so a regression (hit path retaking the DB
  // mutex) reports a clean failure instead of deadlocking the test.
  db.db_mutex().unlock();
  reader.join();
  EXPECT_TRUE(completed) << "Get on a warm cached key blocked on the DB "
                            "mutex — the hit path must bypass it";
  EXPECT_EQ(observed, "warm");
  EXPECT_EQ(db.cache_hits(), hits_before + 1);
}

TEST(MiniDb, StaleCachedBlockRefillsAfterWrite) {
  // Generation invalidation: a Put to any key in a cached block makes the
  // cached fill stale; the next Get must refill and return the new value.
  MiniDb<McsSpinLock> db(128);
  db.Put(32, "old");
  ASSERT_EQ(*db.Get(32), "old");          // block cached, generation stamped
  ASSERT_EQ(*db.Get(32), "old");          // served from cache
  const std::uint64_t stale_before = db.stale_refills();
  db.Put(33, "neighbor");                 // same block (kBlockSpan = 16)
  EXPECT_EQ(*db.Get(32), "old");          // refill — but value unchanged
  EXPECT_EQ(db.stale_refills(), stale_before + 1);
  db.Put(32, "new");
  EXPECT_EQ(*db.Get(32), "new");          // never the stale "old"
  EXPECT_EQ(*db.Get(32), "new");          // and the refreshed fill now hits
}

TEST(MiniDb, ShardedBlockCacheKeepsRoundTripSemantics) {
  // cache_shards > 1 partitions only the block cache; DB semantics are
  // unchanged and displacement tracking still attributes per tid.
  MiniDb<McsSpinLock> db(/*cache_blocks=*/64, /*cache_shards=*/4);
  EXPECT_EQ(db.block_cache().shard_count(), 4u);
  for (std::uint64_t k = 0; k < 4096; ++k) {
    db.Put(k, std::to_string(k));
  }
  XorShift64 rng(9);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.NextBelow(4096);
    ASSERT_EQ(*db.Get(k, static_cast<std::uint32_t>(rng.NextBelow(4))),
              std::to_string(k));
  }
  // 4096 keys / 16 per block = 256 blocks over a 64-block cache: evictions
  // and (random tids) both displacement kinds must have fired.
  EXPECT_GT(db.block_cache().evictions(), 0u);
  EXPECT_GT(db.block_cache().self_displacements() +
                db.block_cache().extrinsic_displacements(),
            0u);
}

}  // namespace
}  // namespace malthus
