// KV server subsystem tests: Zipf generator distribution sanity, CoDel
// state machine under a fake clock, admission-queue semantics, server
// admission accounting, multi-tenant isolation, teardown hygiene (zombie
// QNode drain), an end-to-end sweep smoke under a stall watchdog, and the
// server FailPoint sites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/chaos/failpoint.h"
#include "src/locks/lock_base.h"
#include "src/locks/mcs.h"
#include "src/server/admission_queue.h"
#include "src/server/backend.h"
#include "src/server/codel.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"
#include "src/server/zipf.h"
#include "tests/contention.h"
#include "tests/watchdog.h"

namespace malthus {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Zipf generator.

TEST(Zipf, RankZeroDrawsItsAnalyticShare) {
  ZipfGenerator zipf(1000, 0.99);
  XorShift64 rng(1);
  constexpr int kSamples = 200000;
  int head = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.NextRank(rng) == 0) {
      ++head;
    }
  }
  const double observed = static_cast<double>(head) / kSamples;
  const double expected = zipf.HeadProbability();
  EXPECT_GT(expected, 0.1);  // theta=0.99, N=1000: the head is genuinely hot
  EXPECT_NEAR(observed, expected, expected * 0.1);
}

TEST(Zipf, FrequenciesDecreaseWithRank) {
  ZipfGenerator zipf(10000, 0.99);
  XorShift64 rng(2);
  std::vector<int> counts(10000, 0);
  for (int i = 0; i < 500000; ++i) {
    const std::uint64_t r = zipf.NextRank(rng);
    ASSERT_LT(r, 10000u);
    ++counts[r];
  }
  // Head ranks dominate successively coarser tail bands.
  const auto band = [&](std::size_t lo, std::size_t hi) {
    long total = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      total += counts[i];
    }
    return total;
  };
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(band(0, 10), band(10, 100) / 2);
  EXPECT_GT(band(0, 100), band(100, 1000) / 2);
  EXPECT_GT(band(0, 1000), band(1000, 10000));
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfGenerator zipf(100, 0.0);
  XorShift64 rng(3);
  std::vector<int> counts(100, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[zipf.NextRank(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 100, kSamples / 100 * 0.25);
  }
}

TEST(Zipf, ScrambledKeysStayInRange) {
  ZipfGenerator zipf(4096, 0.99, /*scramble=*/true);
  XorShift64 rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 4096u);
  }
}

// ---------------------------------------------------------------------------
// CoDel under a fake clock: every transition at a deterministic timestamp.

constexpr auto kTarget = 5ms;
constexpr auto kInterval = 100ms;

CoDelOptions FakeOpts() {
  return CoDelOptions{.target = kTarget, .interval = kInterval};
}

std::chrono::nanoseconds At(std::int64_t ms) {
  return std::chrono::milliseconds(ms);
}

TEST(CoDel, BelowTargetNeverSheds) {
  CoDel codel(FakeOpts());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(codel.OnDequeue(4ms, At(1000 + i)));
  }
  EXPECT_FALSE(codel.dropping());
  EXPECT_EQ(codel.drops(), 0u);
}

TEST(CoDel, ShortSpikeAboveTargetIsForgiven) {
  CoDel codel(FakeOpts());
  // Above target for 90 ms — less than one interval — then back below.
  EXPECT_FALSE(codel.OnDequeue(20ms, At(1000)));
  EXPECT_FALSE(codel.OnDequeue(20ms, At(1050)));
  EXPECT_FALSE(codel.OnDequeue(20ms, At(1090)));
  EXPECT_FALSE(codel.OnDequeue(2ms, At(1095)));  // dip resets the streak
  // A fresh streak must again survive a full interval before shedding.
  EXPECT_FALSE(codel.OnDequeue(20ms, At(1100)));
  EXPECT_FALSE(codel.OnDequeue(20ms, At(1199)));
  EXPECT_EQ(codel.drops(), 0u);
  EXPECT_FALSE(codel.dropping());
}

TEST(CoDel, EntersDropStateAfterFullIntervalAboveTarget) {
  CoDel codel(FakeOpts());
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1000)));  // streak starts; arm at 1100
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1050)));
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1099)));
  EXPECT_TRUE(codel.OnDequeue(10ms, At(1100)));  // enter drop state: shed
  EXPECT_TRUE(codel.dropping());
  EXPECT_EQ(codel.drop_count(), 1u);
  // Next shed scheduled one full interval out (count == 1).
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1150)));
  EXPECT_TRUE(codel.OnDequeue(10ms, At(1200)));
  EXPECT_EQ(codel.drop_count(), 2u);
  // Control law accelerates: interval/sqrt(2) ≈ 70.7 ms after 1200.
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1265)));
  EXPECT_TRUE(codel.OnDequeue(10ms, At(1271)));
  EXPECT_EQ(codel.drop_count(), 3u);
  EXPECT_EQ(codel.drops(), 3u);
}

TEST(CoDel, ExitsDropStateWhenSojournRecovers) {
  CoDel codel(FakeOpts());
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1000)));
  EXPECT_TRUE(codel.OnDequeue(10ms, At(1100)));
  EXPECT_TRUE(codel.dropping());
  EXPECT_FALSE(codel.OnDequeue(1ms, At(1150)));  // recovered
  EXPECT_FALSE(codel.dropping());
  // Re-entering requires a fresh full interval above target.
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1200)));
  EXPECT_FALSE(codel.OnDequeue(10ms, At(1299)));
  EXPECT_TRUE(codel.OnDequeue(10ms, At(1300)));
}

TEST(CoDel, ResumesNearPreviousDropRate) {
  CoDel codel(FakeOpts());
  // Build an episode with several sheds (count climbs to 5).
  EXPECT_FALSE(codel.OnDequeue(10ms, At(0)));
  std::int64_t t = 100;
  EXPECT_TRUE(codel.OnDequeue(10ms, At(t)));  // count 1
  for (int expected_count = 2; expected_count <= 5; ++expected_count) {
    // Step past drop_next by walking in 1 ms ticks.
    std::uint32_t before = codel.drop_count();
    while (codel.drop_count() == before) {
      t += 1;
      codel.OnDequeue(10ms, At(t));
    }
  }
  EXPECT_EQ(codel.drop_count(), 5u);
  // Recover briefly, then overload again shortly after: the control-law
  // divisor resumes near the old rate (count = 5 - 2) instead of 1.
  EXPECT_FALSE(codel.OnDequeue(1ms, At(t + 1)));
  EXPECT_FALSE(codel.dropping());
  EXPECT_FALSE(codel.OnDequeue(10ms, At(t + 10)));
  EXPECT_TRUE(codel.OnDequeue(10ms, At(t + 110)));
  EXPECT_EQ(codel.drop_count(), 3u);
}

// ---------------------------------------------------------------------------
// Admission queue.

ServerRequest Req(std::uint32_t tenant, std::uint64_t key) {
  ServerRequest r;
  r.tenant = tenant;
  r.key = key;
  r.arrival = std::chrono::steady_clock::now();
  return r;
}

TEST(AdmissionQueue, FifoOrderAndSojourn) {
  AdmissionQueue q(16, /*codel_enabled=*/false, {});
  ASSERT_TRUE(q.TryPush(Req(0, 1)));
  ASSERT_TRUE(q.TryPush(Req(0, 2)));
  auto a = q.PopFor(100ms);
  auto b = q.PopFor(100ms);
  ASSERT_EQ(a.status, AdmissionQueue::PopStatus::kServe);
  ASSERT_EQ(b.status, AdmissionQueue::PopStatus::kServe);
  EXPECT_EQ(a.request.key, 1u);
  EXPECT_EQ(b.request.key, 2u);
  EXPECT_GE(a.sojourn.count(), 0);
}

TEST(AdmissionQueue, TailDropsAtCapacity) {
  AdmissionQueue q(4, false, {});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPush(Req(0, i)));
  }
  EXPECT_FALSE(q.TryPush(Req(0, 99)));
  EXPECT_EQ(q.tail_drops(), 1u);
  EXPECT_EQ(q.Size(), 4u);
}

TEST(AdmissionQueue, PopTimesOutOnEmpty) {
  AdmissionQueue q(4, false, {});
  const auto res = q.PopFor(10ms);
  EXPECT_EQ(res.status, AdmissionQueue::PopStatus::kTimeout);
}

TEST(AdmissionQueue, StopWakesBlockedConsumersAndDrains) {
  AdmissionQueue q(16, false, {});
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto res = q.PopFor(10s);
    EXPECT_EQ(res.status, AdmissionQueue::PopStatus::kStopped);
    popped.store(true);
  });
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(q.TryPush(Req(0, 1)) || true);  // may race the Stop below
  q.Stop();
  consumer.join();
  EXPECT_TRUE(popped.load());
  q.DrainAll();
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_FALSE(q.TryPush(Req(0, 2)));  // stopped queues reject arrivals
  q.Restart();
  EXPECT_TRUE(q.TryPush(Req(0, 3)));
}

// ---------------------------------------------------------------------------
// Server: admission accounting, isolation, teardown.

KvServerOptions SmallServer(const std::string& structure,
                            const std::string& lock) {
  KvServerOptions opts;
  opts.workers = 3;
  opts.queue_capacity = 1024;
  opts.structure = structure;
  opts.lock_name = lock;
  opts.tenants = 2;
  opts.max_inflight = 2;
  return opts;
}

void AwaitDrained(KvServer& server, std::chrono::milliseconds budget = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (server.QueueDepth() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
}

TEST(KvServer, UnknownBackendFailsStart) {
  KvServerOptions opts;
  opts.structure = "no-such-structure";
  KvServer server(opts);
  EXPECT_FALSE(server.Start());
  opts = KvServerOptions{};
  opts.lock_name = "no-such-lock";
  KvServer server2(opts);
  EXPECT_FALSE(server2.Start());
}

TEST(KvServer, EveryOfferedRequestIsAccountedExactlyOnce) {
  for (const char* structure : {"lru", "kchash", "minidb"}) {
    KvServer server(SmallServer(structure, "mcs-stp"));
    ASSERT_TRUE(server.Start());
    constexpr int kRequests = 2000;
    XorShift64 rng(11);
    for (int i = 0; i < kRequests; ++i) {
      ServerRequest r = Req(static_cast<std::uint32_t>(i % 2), rng.NextBelow(512));
      r.op = (i % 10 == 0) ? ServerRequest::Op::kPut : ServerRequest::Op::kGet;
      server.Submit(r);
    }
    AwaitDrained(server);
    server.Stop();
    const TenantStats agg = server.Aggregate();
    EXPECT_EQ(agg.offered, static_cast<std::uint64_t>(kRequests)) << structure;
    EXPECT_EQ(agg.served + agg.shed_total(), agg.offered) << structure;
    EXPECT_GT(agg.served, 0u) << structure;
    // Served requests have latencies recorded.
    EXPECT_GT(agg.e2e_p50, 0u) << structure;
    EXPECT_GE(agg.e2e_p999, agg.e2e_p50) << structure;
    EXPECT_GE(agg.e2e_max, agg.e2e_p999) << structure;
  }
}

TEST(KvServer, PerTenantAccountingIsolatesTenants) {
  KvServerOptions opts = SmallServer("lru", "tas");
  opts.tenants = 3;
  KvServer server(opts);
  ASSERT_TRUE(server.Start());
  const int per_tenant[] = {900, 300, 100};
  XorShift64 rng(12);
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < per_tenant[t]; ++i) {
      server.Submit(Req(static_cast<std::uint32_t>(t),
                        TenantKey(static_cast<std::uint32_t>(t), rng.NextBelow(256))));
    }
  }
  AwaitDrained(server);
  server.Stop();
  std::uint64_t total_offered = 0, total_served = 0;
  for (int t = 0; t < 3; ++t) {
    const TenantStats s = server.StatsFor(static_cast<std::uint32_t>(t));
    EXPECT_EQ(s.offered, static_cast<std::uint64_t>(per_tenant[t])) << t;
    EXPECT_EQ(s.served + s.shed_total(), s.offered) << t;
    total_offered += s.offered;
    total_served += s.served;
  }
  const TenantStats agg = server.Aggregate();
  EXPECT_EQ(agg.offered, total_offered);
  EXPECT_EQ(agg.served, total_served);
}

TEST(KvServer, BurstBeyondQueueCapacityTailDrops) {
  KvServerOptions opts = SmallServer("lru", "tas");
  opts.queue_capacity = 64;
  opts.workers = 1;
  KvServer server(opts);
  ASSERT_TRUE(server.Start());
  constexpr int kBurst = 20000;
  for (int i = 0; i < kBurst; ++i) {
    server.Submit(Req(0, static_cast<std::uint64_t>(i)));
  }
  AwaitDrained(server);
  server.Stop();
  const TenantStats agg = server.Aggregate();
  EXPECT_EQ(agg.offered, static_cast<std::uint64_t>(kBurst));
  EXPECT_GT(agg.shed_queue_full, 0u);
  EXPECT_EQ(agg.served + agg.shed_total(), agg.offered);
}

TEST(KvServer, GetReturnsWhatPutStored) {
  KvServerOptions opts = SmallServer("kchash", "pthread-style");
  opts.tenants = 1;
  KvServer server(opts);
  ASSERT_TRUE(server.Start());
  ServerRequest put = Req(0, 42);
  put.op = ServerRequest::Op::kPut;
  put.value = 0xDEADBEEF;
  server.Submit(put);
  AwaitDrained(server);
  ServerRequest get = Req(0, 42);
  server.Submit(get);
  AwaitDrained(server);
  server.Stop();
  EXPECT_EQ(server.Aggregate().get_hits, 1u);
}

// The sharded backends through the full server pipeline: every request
// accounted, hits observed, and the backend actually partitioned. CI runs
// the mcs-stp/mcscr-stp pair of this as the sharded server smoke.
TEST(KvServer, ShardedBackendsServeAndAccount) {
  for (const char* lock : {"mcs-stp", "mcscr-stp"}) {
    KvServerOptions opts = SmallServer("sharded-kchash", lock);
    opts.backend_shards = 4;
    KvServer server(opts);
    ASSERT_TRUE(server.Start()) << lock;
    constexpr int kRequests = 2000;
    XorShift64 rng(21);
    for (int i = 0; i < kRequests; ++i) {
      ServerRequest r =
          Req(static_cast<std::uint32_t>(i % 2), rng.NextBelow(512));
      r.op = (i % 10 == 0) ? ServerRequest::Op::kPut : ServerRequest::Op::kGet;
      server.Submit(r);
    }
    AwaitDrained(server);
    server.Stop();
    const TenantStats agg = server.Aggregate();
    EXPECT_EQ(agg.offered, static_cast<std::uint64_t>(kRequests)) << lock;
    EXPECT_EQ(agg.served + agg.shed_total(), agg.offered) << lock;
    EXPECT_GT(agg.served, 0u) << lock;
  }
}

TEST(KvBackend, ShardedVariantsReportTheirShardCount) {
  for (const char* structure : {"sharded-lru", "sharded-kchash", "sharded-minidb"}) {
    auto backend = MakeBackend(structure, "tas", 4);
    ASSERT_NE(backend, nullptr) << structure;
    EXPECT_EQ(backend->shards(), 4u) << structure;
    // Requested counts round up to a power of two.
    auto rounded = MakeBackend(structure, "tas", 3);
    ASSERT_NE(rounded, nullptr) << structure;
    EXPECT_EQ(rounded->shards(), 4u) << structure;
  }
  for (const char* structure : {"lru", "kchash", "minidb"}) {
    auto backend = MakeBackend(structure, "tas");
    ASSERT_NE(backend, nullptr) << structure;
    EXPECT_EQ(backend->shards(), 1u) << structure;
  }
}

// Displacement plumbing (footnote 33) end to end: distinct tids inserting
// past capacity must produce both self- and extrinsic-displacements, in the
// unsharded LRU and in every partition count of the sharded one.
TEST(KvBackend, DisplacementStatsAttributeEvictionsToTids) {
  for (const char* structure : {"lru", "sharded-lru"}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      if (std::string(structure) == "lru" && shards != 1) {
        continue;
      }
      auto backend = MakeBackend(structure, "tas", shards);
      ASSERT_NE(backend, nullptr) << structure;
      // The LRU backends hold 1<<15 entries; push well past capacity from
      // two randomly chosen tids so evictions both cross tid boundaries
      // (extrinsic) and stay within them (self). (A deterministic
      // alternation would correlate tid parity with eviction distance and
      // produce only one kind.)
      constexpr std::uint64_t kKeys = 3u << 15;
      XorShift64 tid_rng(7);
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        backend->Put(k, k, static_cast<std::uint32_t>(1 + tid_rng.NextBelow(2)));
      }
      const KvBackend::Displacement d = backend->displacement();
      EXPECT_GT(d.self, 0u) << structure << " shards=" << shards;
      EXPECT_GT(d.extrinsic, 0u) << structure << " shards=" << shards;
    }
  }
}

TEST(KvServer, StartStopChurnLeaksNothing) {
  // The teardown satellite: short-lived worker pools must not leak
  // timed-waiter husks or Parker state. Stop() aborts the process if the
  // zombie gauge ends above its Start() baseline, so surviving the churn IS
  // the assertion; the explicit gauge check documents it.
  const std::uint64_t before = OutstandingZombieQNodes();
  for (int round = 0; round < 5; ++round) {
    KvServerOptions opts = SmallServer("lru", "mcs-stp");
    opts.workers = 4;
    // Tiny gate budget so gate timeouts (the timed-semaphore path) fire.
    opts.gate_timeout = 1ms;
    opts.max_inflight = 1;
    KvServer server(opts);
    ASSERT_TRUE(server.Start());
    XorShift64 rng(round);
    for (int i = 0; i < 500; ++i) {
      server.Submit(Req(0, rng.NextBelow(128)));
    }
    server.Stop();
  }
  EXPECT_EQ(OutstandingZombieQNodes(), before);
}

TEST(WorkerDrain, ReapZombieQNodesClearsTimedWaiterHusks) {
  // A worker that times out on a queue lock zombies its QNode; the husk is
  // pinned until the owner's unlock walk reclaims it. A short-lived thread
  // must reap before retiring or the husk (and its slab) leaks for good —
  // exactly what KvServer's worker epilogue does.
  const std::uint64_t before = OutstandingZombieQNodes();
  McsStpLock lock;
  lock.lock();
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    EXPECT_FALSE(lock.TryLockFor(5ms));  // times out behind the held lock
    timed_out.store(true);
    // Bounded drain loop, as in KvServer::WorkerLoop's epilogue.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (ReapZombieQNodes() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(ReapZombieQNodes(), 0u);
  });
  while (!timed_out.load()) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(OutstandingZombieQNodes(), before + 1);  // husk exists
  lock.unlock();  // owner's walk skips + reclaims the husk
  waiter.join();
  EXPECT_EQ(OutstandingZombieQNodes(), before);
}

// ---------------------------------------------------------------------------
// Open-loop load generation end to end.

TEST(LoadGen, OpenLoopOffersTheConfiguredRate) {
  KvServerOptions sopts = SmallServer("lru", "tas");
  KvServer server(sopts);
  ASSERT_TRUE(server.Start());
  LoadGenOptions lopts;
  lopts.rate_per_sec = 2000;
  lopts.duration = 250ms;
  lopts.tenants = 2;
  lopts.keys_per_tenant = 1024;
  LoadGenerator gen(lopts);
  const LoadGenStats stats = gen.Run(server);
  AwaitDrained(server);
  server.Stop();
  // Offered count tracks rate × duration (Poisson variance + edge effects).
  EXPECT_NEAR(static_cast<double>(stats.offered), 500.0, 150.0);
  EXPECT_EQ(stats.offered, stats.accepted + stats.dropped);
  const TenantStats agg = server.Aggregate();
  EXPECT_EQ(agg.offered, stats.offered);
  EXPECT_EQ(agg.served + agg.shed_total(), agg.offered);
}

TEST(LoadGen, TenantWeightsShapeOfferedLoad) {
  KvServerOptions sopts = SmallServer("lru", "tas");
  sopts.tenants = 2;
  KvServer server(sopts);
  ASSERT_TRUE(server.Start());
  LoadGenOptions lopts;
  lopts.rate_per_sec = 4000;
  lopts.duration = 250ms;
  lopts.tenants = 2;
  lopts.tenant_weights = {3.0, 1.0};
  lopts.keys_per_tenant = 1024;
  LoadGenerator gen(lopts);
  gen.Run(server);
  AwaitDrained(server);
  server.Stop();
  const TenantStats t0 = server.StatsFor(0);
  const TenantStats t1 = server.StatsFor(1);
  ASSERT_GT(t1.offered, 0u);
  const double ratio =
      static_cast<double>(t0.offered) / static_cast<double>(t1.offered);
  EXPECT_NEAR(ratio, 3.0, 1.0);
}

// A miniature version of the bench sweep, under a stall watchdog: CI runs
// this pinned to one CPU and asserts the server neither hangs nor
// shed-storms at moderate load (the watchdog aborts with a state dump on
// stall; a shed storm fails the served-fraction assertion).
TEST(ServerSweep, SmokeUnderWatchdogNoShedStormOrHang) {
  test::StallWatchdog watchdog(30s, [] {
    std::fprintf(stderr, "[ServerSweep] stalled; zombie gauge=%llu\n",
                 static_cast<unsigned long long>(OutstandingZombieQNodes()));
  });
  for (const bool admission : {true, false}) {
    KvServerOptions opts;
    opts.workers = 4;
    opts.queue_capacity = 2048;
    opts.structure = "lru";
    opts.lock_name = "mcs-stp";
    opts.admission_enabled = admission;
    opts.codel_enabled = admission;
    opts.tenants = 2;
    KvServer server(opts);
    ASSERT_TRUE(server.Start());
    watchdog.Beat();
    LoadGenOptions lopts;
    lopts.rate_per_sec = 3000;  // gentle: well under capacity on any host
    lopts.duration = 300ms;
    lopts.tenants = 2;
    lopts.keys_per_tenant = 4096;
    LoadGenerator gen(lopts);
    const LoadGenStats stats = gen.Run(server);
    watchdog.Beat();
    AwaitDrained(server);
    server.Stop();
    watchdog.Beat();
    const TenantStats agg = server.Aggregate();
    EXPECT_EQ(agg.served + agg.shed_total(), agg.offered);
    EXPECT_GT(stats.offered, 0u);
    // At well-under-capacity load the overwhelming majority must be served
    // — a shed storm here means the CoDel/gate plumbing is broken.
    EXPECT_GT(static_cast<double>(agg.served),
              0.7 * static_cast<double>(agg.offered))
        << "admission=" << admission;
  }
}

// ---------------------------------------------------------------------------
// FailPoint sites on the admission/shed/dispatch paths.

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "MALTHUS_FAILPOINTS not compiled in";
    }
    failpoint::Reset();
  }
  void TearDown() override {
    if (failpoint::kCompiledIn) {
      failpoint::Reset();
    }
  }
};

TEST_F(ServerChaosTest, AdmitAndDispatchSitesAreReached) {
  failpoint::Configure("server.admit",
                       {.action = failpoint::Action::kYield, .probability = 0.5});
  failpoint::Configure("server.dispatch",
                       {.action = failpoint::Action::kYield, .probability = 0.5});
  KvServer server(SmallServer("lru", "mcs-stp"));
  ASSERT_TRUE(server.Start());
  for (int i = 0; i < 200; ++i) {
    server.Submit(Req(0, static_cast<std::uint64_t>(i)));
  }
  AwaitDrained(server);
  server.Stop();
  EXPECT_GE(failpoint::Hits("server.admit"), 200u);
  EXPECT_GT(failpoint::Hits("server.dispatch"), 0u);
  const TenantStats agg = server.Aggregate();
  EXPECT_EQ(agg.served + agg.shed_total(), agg.offered);
}

TEST_F(ServerChaosTest, ShedSiteFiresOnTailDrop) {
  failpoint::Configure("server.shed",
                       {.action = failpoint::Action::kYield, .probability = 1.0});
  KvServerOptions opts = SmallServer("lru", "tas");
  opts.queue_capacity = 8;
  opts.workers = 1;
  KvServer server(opts);
  ASSERT_TRUE(server.Start());
  for (int i = 0; i < 5000; ++i) {
    server.Submit(Req(0, static_cast<std::uint64_t>(i)));
  }
  AwaitDrained(server);
  server.Stop();
  EXPECT_GT(failpoint::Hits("server.shed"), 0u);
  const TenantStats agg = server.Aggregate();
  EXPECT_GT(agg.shed_queue_full, 0u);
  EXPECT_EQ(agg.served + agg.shed_total(), agg.offered);
}

// Randomized storm over the server sites with yields injected everywhere,
// under a watchdog: no interleaving may hang or miscount.
TEST_F(ServerChaosTest, YieldStormPreservesAccounting) {
  failpoint::SetSeed(20260808);
  for (const char* site : {"server.admit", "server.shed", "server.dispatch"}) {
    failpoint::Configure(
        site, {.action = failpoint::Action::kYield, .probability = 0.3});
  }
  test::StallWatchdog watchdog(30s, [] {
    for (const auto& info : failpoint::Sites()) {
      std::fprintf(stderr, "  site %s hits=%llu fires=%llu\n",
                   info.name.c_str(),
                   static_cast<unsigned long long>(info.hits),
                   static_cast<unsigned long long>(info.fires));
    }
  });
  KvServerOptions opts = SmallServer("kchash", "mcscr-stp");
  opts.workers = 6;  // oversubscribed on small hosts — the interesting case
  opts.queue_capacity = 256;
  KvServer server(opts);
  ASSERT_TRUE(server.Start());
  XorShift64 rng(99);
  for (int i = 0; i < 3000; ++i) {
    ServerRequest r = Req(static_cast<std::uint32_t>(i % 2), rng.NextBelow(512));
    r.op = (i % 5 == 0) ? ServerRequest::Op::kPut : ServerRequest::Op::kGet;
    server.Submit(r);
    if (i % 64 == 0) {
      watchdog.Beat();
    }
  }
  AwaitDrained(server);
  server.Stop();
  watchdog.Beat();
  const TenantStats agg = server.Aggregate();
  EXPECT_EQ(agg.offered, 3000u);
  EXPECT_EQ(agg.served + agg.shed_total(), agg.offered);
}

}  // namespace
}  // namespace malthus
