// Shared helpers for contention tests.
//
// Iteration counts that are comfortable when every contender has its own
// CPU are preemption-tick-bound on hosts that cannot run the contenders in
// parallel: each handover to a descheduled waiter can cost a scheduling
// quantum, so wall time scales with iterations x threads / effective CPUs
// rather than with iterations. ScaledIters() keeps the *shape* of a test
// (same thread count, same interleavings) while scaling the round count to
// what the host can retire inside the ctest timeout. On hosts with
// cpus >= threads it returns `base` unchanged, so well-provisioned CI keeps
// full coverage.
#ifndef MALTHUS_TESTS_CONTENTION_H_
#define MALTHUS_TESTS_CONTENTION_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/platform/park.h"
#include "src/platform/sysinfo.h"

namespace malthus {
namespace test {

// Floor for scaled iteration counts: enough rounds that every thread still
// crosses the contended paths (enqueue, cull, fairness grant) many times.
inline constexpr int kMinScaledIters = 1000;

inline int ScaledIters(int base, int threads) {
  const int cpus = EffectiveCpuCount();
  if (threads <= 0 || cpus >= threads) {
    return base;
  }
  return std::max(base * cpus / threads, std::min(base, kMinScaledIters));
}

// True when the host cannot run even two threads in parallel. Tests whose
// assertion is a *concurrency-emergent* property — LWSS restriction,
// throughput scaling with threads, admission-gate throttling — skip on
// such hosts: with one effective CPU, threads execute their critical
// sections back-to-back within scheduling quanta, the circulating set
// never overlaps, and the property under test cannot physically manifest
// (it fails on scheduler mood, not on code). Correctness tests (mutual
// exclusion, progress, counters) must NOT use this: they run everywhere.
inline bool SingleCpuHost() { return EffectiveCpuCount() < 2; }

// Waits until the process-wide kernel-park counter passes `threshold`,
// i.e. some thread has committed to blocking in the kernel. The standard
// way to sequence "waiter is genuinely parked" before poking wake-ahead.
inline void AwaitKernelParksAbove(std::uint64_t threshold) {
  while (TotalKernelParks() <= threshold) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace test
}  // namespace malthus

#endif  // MALTHUS_TESTS_CONTENTION_H_
