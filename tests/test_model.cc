// Analytic model tests: saturation arithmetic, the Figure-1 shape (peak <=
// saturation, collapse without CR, plateau with CR), and boundary cases.
#include <gtest/gtest.h>

#include "src/model/throughput_model.h"

namespace malthus {
namespace {

ModelParams PaperParams() {
  return ModelParams{};  // CS=1us NCS=5us, 8MB LLC, 1MB footprints.
}

TEST(Model, SaturationMatchesPaperExample) {
  // Paper §1: CS=1us NCS=5us -> saturation at 6 threads.
  ThroughputModel model(PaperParams());
  EXPECT_EQ(model.Saturation(), 6);
}

TEST(Model, CurvesCoincideBelowPressureOnset) {
  ThroughputModel model(PaperParams());
  for (int n = 1; n <= 6; ++n) {
    EXPECT_DOUBLE_EQ(model.ThroughputWithoutCr(n), model.ThroughputWithCr(n)) << n;
  }
}

TEST(Model, ThroughputRisesLinearlyBeforeSaturation) {
  ModelParams p = PaperParams();
  p.ncs_footprint_bytes = 0;  // No cache pressure at all.
  ThroughputModel model(p);
  const double t1 = model.ThroughputWithoutCr(1);
  EXPECT_NEAR(model.ThroughputWithoutCr(3), 3 * t1, 1e-6);
  EXPECT_NEAR(model.ThroughputWithoutCr(5), 5 * t1, 1e-6);
}

TEST(Model, WithoutPressureCurveIsFlatPastSaturation) {
  ModelParams p = PaperParams();
  p.ncs_footprint_bytes = 0;
  ThroughputModel model(p);
  const double sat = model.ThroughputWithoutCr(6);
  EXPECT_NEAR(model.ThroughputWithoutCr(32), sat, 1e-6);
}

TEST(Model, CollapseBeyondCapacityWithoutCr) {
  ThroughputModel model(PaperParams());
  // 8 threads: footprint 9MB > 8MB -> CS inflates -> throughput drops below
  // the saturated level.
  EXPECT_LT(model.ThroughputWithoutCr(16), model.ThroughputWithoutCr(6));
  // And it keeps degrading (until the inflation clamp).
  EXPECT_LE(model.ThroughputWithoutCr(16), model.ThroughputWithoutCr(10));
}

TEST(Model, CrHoldsThePlateau) {
  ThroughputModel model(PaperParams());
  const double plateau = model.ThroughputWithCr(6);
  for (int n = 7; n <= 64; n *= 2) {
    EXPECT_NEAR(model.ThroughputWithCr(n), plateau, plateau * 1e-9) << n;
  }
}

TEST(Model, CrNeverWorseThanNoCr) {
  // "Performance diode": CR does no harm anywhere on the curve.
  ThroughputModel model(PaperParams());
  for (int n = 1; n <= 128; ++n) {
    EXPECT_GE(model.ThroughputWithCr(n) + 1e-9, model.ThroughputWithoutCr(n)) << n;
  }
}

TEST(Model, PeakNeverExceedsSaturation) {
  ThroughputModel model(PaperParams());
  EXPECT_LE(model.PeakThreads(128), model.Saturation());
}

TEST(Model, PeakBelowSaturationWhenPressureBitesEarly) {
  ModelParams p = PaperParams();
  p.llc_bytes = 3.0 * (1u << 20);  // Tiny LLC: pressure from ~2 threads.
  ThroughputModel model(p);
  EXPECT_LT(model.PeakThreads(128), model.Saturation());
}

TEST(Model, EffectiveCsClampsAtMaxInflation) {
  ThroughputModel model(PaperParams());
  const double at_1000 = model.EffectiveCsNs(1000);
  const double at_2000 = model.EffectiveCsNs(2000);
  EXPECT_DOUBLE_EQ(at_1000, at_2000);
  EXPECT_NEAR(at_1000, PaperParams().cs_ns * PaperParams().max_cs_inflation, 1e-9);
}

TEST(Model, CurveHasExpectedLengthAndOrdering) {
  ThroughputModel model(PaperParams());
  const auto curve = model.Curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (const auto& point : curve) {
    EXPECT_GE(point.with_cr + 1e-9, point.without_cr);
  }
  EXPECT_EQ(curve.front().threads, 1);
  EXPECT_EQ(curve.back().threads, 50);
}

}  // namespace
}  // namespace malthus
