// Wake-ahead succession (anticipatory handover) and adaptive spin budget:
// Parker's WakeAhead()/elided-wake accounting, PrepareHandover() across the
// lock families, the HandoverLockGuard opt-in, the ParkFor timeout/permit
// race, and EMA convergence of the per-lock spin budget.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "src/core/cr_semaphore.h"
#include "src/core/lifocr.h"
#include "src/core/loiter.h"
#include "src/core/mcscr.h"
#include "src/locks/any_lock.h"
#include "src/locks/handover_guard.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/platform/calibrate.h"
#include "src/platform/park.h"
#include "src/waiting/spin_budget.h"
#include "tests/contention.h"

namespace malthus {
namespace {

using namespace std::chrono_literals;

using test::AwaitKernelParksAbove;

// A spin budget that will not expire within any test's lifetime, used to
// hold a waiter in the spinning phase deterministically.
constexpr std::uint32_t kHugeSpinBudget = 4'000'000'000u;

// ---------------------------------------------------------------------------
// Parker::WakeAhead semantics.

TEST(ParkerWakeAhead, OnParkedOwnerIssuesKernelWake) {
  Parker p;
  const std::uint64_t parks_before = TotalKernelParks();
  std::thread owner([&] { p.Park(); });
  AwaitKernelParksAbove(parks_before);
  // The owner has advertised (and most likely entered) the kernel wait.
  p.WakeAhead();
  owner.join();
  EXPECT_EQ(p.wake_aheads(), 1u);
  EXPECT_EQ(p.kernel_wakes() + p.elided_wakes(), 1u);  // Exactly one post.
  EXPECT_GT(p.kernel_waits(), 0u);
}

TEST(ParkerWakeAhead, OnRunnableOwnerElidesSyscallAndLeavesPermit) {
  Parker p;
  EXPECT_FALSE(p.WakeAhead());  // Nobody parked: no kernel wake.
  EXPECT_EQ(p.elided_wakes(), 1u);
  EXPECT_EQ(p.kernel_wakes(), 0u);
  EXPECT_TRUE(p.PermitPending());
  p.Park();  // Consumes the hint without entering the kernel.
  EXPECT_EQ(p.fast_path_parks(), 1u);
  EXPECT_EQ(p.kernel_waits(), 0u);
}

TEST(ParkerWakeAhead, RedundantHintsCollapse) {
  Parker p;
  p.WakeAhead();
  p.WakeAhead();
  p.Unpark();
  EXPECT_TRUE(p.PermitPending());
  p.Park();
  EXPECT_FALSE(p.PermitPending());  // All posts collapsed into one permit.
  EXPECT_EQ(p.fast_path_parks(), 1u);
}

// The paper's litmus test: a no-op Park/Unpark pair (stale permit) may only
// degrade the consumer to spinning, never break it.
TEST(ParkerWakeAhead, StaleHintOnlyDegradesToRespin) {
  McsStpLock lock;
  lock.set_spin_budget(0);  // Park promptly.
  std::atomic<bool> acquired{false};
  lock.lock();
  std::thread waiter([&] {
    // A stale permit from some previous grant cycle is pending when this
    // thread starts waiting: Park() must consume it, re-check, and go
    // back to waiting rather than treat it as a grant.
    Self().parker.Unpark();
    lock.lock();
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------------
// ParkFor: a permit racing the timeout is never lost.

TEST(ParkForRace, PermitConcurrentWithTimeoutIsNeverLost) {
  Parker p;
  constexpr int kRounds = 300;
  std::atomic<int> consumed{0};
  std::thread owner([&] {
    for (int i = 0; i < kRounds; ++i) {
      // Short timeout chosen to collide with the poster's cadence.
      if (p.ParkFor(std::chrono::microseconds(50 + (i % 7) * 37))) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      } else if (p.ParkFor(std::chrono::seconds(5))) {
        // The round's permit must still arrive; a lost permit times out
        // here and fails the test.
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(30 + (i % 5) * 41));
    p.Unpark();
    // One permit per round: wait for it to be consumed before posting the
    // next, so permits cannot legitimately collapse.
    while (consumed.load(std::memory_order_relaxed) <= i) {
      std::this_thread::sleep_for(100us);
    }
  }
  owner.join();
  EXPECT_EQ(consumed.load(), kRounds);
}

TEST(ParkForRace, PermitAfterTimeoutStaysPending) {
  Parker p;
  EXPECT_FALSE(p.ParkFor(1ms));
  p.Unpark();
  EXPECT_TRUE(p.PermitPending());
  const std::uint64_t fast_before = p.fast_path_parks();
  p.Park();  // Must consume the pending permit without blocking.
  EXPECT_EQ(p.fast_path_parks(), fast_before + 1);
}

TEST(ParkForRace, TimeoutWithoutPermitReturnsFalse) {
  Parker p;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.ParkFor(5ms));
  EXPECT_GE(std::chrono::steady_clock::now() - begin, 4ms);
}

// ---------------------------------------------------------------------------
// PrepareHandover through the lock protocol.

TEST(PrepareHandover, ParkedSuccessorIsWokenAhead) {
  McsStpLock lock;
  lock.set_spin_budget(0);  // Successor parks promptly.
  lock.lock();
  std::atomic<bool> acquired{false};
  const std::uint64_t parks_before = TotalKernelParks();
  std::thread waiter([&] {
    lock.lock();
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  AwaitKernelParksAbove(parks_before);

  const std::uint64_t aheads_before = TotalWakeAheads();
  const std::uint64_t wakes_before = TotalKernelWakes();
  lock.PrepareHandover();
  EXPECT_EQ(TotalWakeAheads() - aheads_before, 1u);
  // The successor was blocked in the kernel, so the hint paid the wake —
  // inside our critical section, where it overlaps remaining work.
  EXPECT_EQ(TotalKernelWakes() - wakes_before, 1u);
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  // The grant itself must not have issued a second kernel wake: the heir
  // was runnable (or holding the collapsed permit) by then.
  EXPECT_LE(TotalKernelWakes() - wakes_before, 1u);
}

TEST(PrepareHandover, SpinningSuccessorCostsNoSyscall) {
  McsStpLock lock;
  lock.set_spin_budget(kHugeSpinBudget);  // Successor never parks.
  lock.lock();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.lock();
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  // Wait until the successor is enqueued (spinning on its node).
  std::this_thread::sleep_for(50ms);

  const std::uint64_t wakes_before = TotalKernelWakes();
  const std::uint64_t elided_before = TotalElidedKernelWakes();
  lock.PrepareHandover();
  EXPECT_EQ(TotalKernelWakes() - wakes_before, 0u);
  EXPECT_EQ(TotalElidedKernelWakes() - elided_before, 1u);
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  // Grant to a spinning successor: still zero syscalls end to end.
  EXPECT_EQ(TotalKernelWakes() - wakes_before, 0u);
}

TEST(PrepareHandover, NoSuccessorIsANoOp) {
  McsStpLock lock;
  lock.lock();
  const std::uint64_t aheads_before = TotalWakeAheads();
  lock.PrepareHandover();
  EXPECT_EQ(TotalWakeAheads(), aheads_before);
  lock.unlock();
}

TEST(PrepareHandover, WorksAcrossLockFamilies) {
  // Smoke: every family's PrepareHandover() fires on a parked successor and
  // the handover still completes. With this PR that is *all* the parking
  // locks — the composite LOITER and the competitive-succession
  // PthreadStyleMutex included.
  const std::uint64_t aheads_before = TotalWakeAheads();

  McscrLock<SpinThenParkPolicy> mcscr{McscrOptions{.spin_budget = 0}};
  LifoCrLock<SpinThenParkPolicy> lifocr{LifoCrOptions{.spin_budget = 0}};
  LoiterOptions loiter_opts;
  loiter_opts.fast_spin_attempts = 1;  // Contenders go straight to standby.
  LoiterLock loiter{loiter_opts};
  PthreadStyleMutex pthread_style;
  pthread_style.set_spin_budget(0);

  auto run = [](auto& lock) {
    lock.lock();
    std::atomic<bool> acquired{false};
    const std::uint64_t parks_before = TotalKernelParks();
    std::thread waiter([&] {
      lock.lock();
      acquired.store(true, std::memory_order_release);
      lock.unlock();
    });
    AwaitKernelParksAbove(parks_before);
    lock.PrepareHandover();
    lock.unlock();
    waiter.join();
    EXPECT_TRUE(acquired.load());
  };
  run(mcscr);
  run(lifocr);
  run(loiter);
  run(pthread_style);
  EXPECT_GE(TotalWakeAheads() - aheads_before, 4u);
}

// ---------------------------------------------------------------------------
// PthreadStyleMutex wake-ahead.

TEST(PthreadStyleHandover, ParkedWaiterIsWokenAheadAndGrantElidesSyscall) {
  PthreadStyleMutex lock;
  lock.set_spin_budget(0);  // Contenders park promptly.
  lock.lock();
  std::atomic<bool> acquired{false};
  const std::uint64_t parks_before = TotalKernelParks();
  std::thread waiter([&] {
    lock.lock();
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  AwaitKernelParksAbove(parks_before);

  const std::uint64_t aheads_before = TotalWakeAheads();
  const std::uint64_t wakes_before = TotalKernelWakes();
  lock.PrepareHandover();
  EXPECT_EQ(TotalWakeAheads() - aheads_before, 1u);
  // The waiter was blocked in the kernel: the hint paid the futex wake
  // inside our critical section.
  EXPECT_EQ(TotalKernelWakes() - wakes_before, 1u);
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  // The pop-and-unpark at release must not have issued a second kernel
  // wake: the waiter was re-spinning on its node (or still held the
  // collapsed permit).
  EXPECT_LE(TotalKernelWakes() - wakes_before, 1u);
}

TEST(PthreadStyleHandover, EmptyStackIsANoOp) {
  PthreadStyleMutex lock;
  lock.lock();
  const std::uint64_t aheads_before = TotalWakeAheads();
  lock.PrepareHandover();
  EXPECT_EQ(TotalWakeAheads(), aheads_before);
  lock.unlock();
}

TEST(PthreadStyleHandover, GuardedContentionStaysCorrect) {
  // Wake-ahead on every release under real contention: exclusion, progress,
  // and node-lifecycle integrity (pops, abandons, re-enqueues) must hold
  // with hints interleaved at arbitrary points.
  PthreadStyleMutex lock;
  lock.set_spin_budget(16);  // Exercise the park path hard.
  std::uint64_t counter = 0;
  constexpr int kThreads = 6;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        HandoverLockGuard<PthreadStyleMutex> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// Type-erased dispatch: the registry's virtual PrepareHandover() must reach
// the newly covered locks, including through HandoverLockGuard<AnyLock>.

TEST(PrepareHandover, DispatchesThroughTypeErasedRegistry) {
  for (const std::string name : {"pthread-style", "loiter"}) {
    auto lock = MakeLock(name);
    ASSERT_NE(lock, nullptr) << name;
    std::atomic<bool> acquired{false};
    const std::uint64_t parks_before = TotalKernelParks();
    const std::uint64_t aheads_before = TotalWakeAheads();
    std::thread waiter;
    {
      HandoverLockGuard<AnyLock> guard(*lock);
      waiter = std::thread([&] {
        lock->lock();
        acquired.store(true, std::memory_order_release);
        lock->unlock();
      });
      AwaitKernelParksAbove(parks_before);
    }  // Guard fires PrepareHandover() through the vtable, then unlock().
    waiter.join();
    EXPECT_TRUE(acquired.load()) << name;
    EXPECT_GE(TotalWakeAheads() - aheads_before, 1u) << name;
  }
}

TEST(PrepareHandover, GuardFiresBeforeUnlock) {
  McsStpLock lock;
  lock.set_spin_budget(0);
  std::atomic<bool> acquired{false};
  const std::uint64_t parks_before = TotalKernelParks();
  const std::uint64_t aheads_before = TotalWakeAheads();
  std::thread waiter;
  {
    HandoverLockGuard<McsStpLock> guard(lock);
    waiter = std::thread([&] {
      lock.lock();
      acquired.store(true, std::memory_order_release);
      lock.unlock();
    });
    AwaitKernelParksAbove(parks_before);
  }
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(TotalWakeAheads() - aheads_before, 1u);
}

TEST(PrepareHandover, GuardIsANoOpForSpinLocks) {
  McsSpinLock lock;
  {
    HandoverLockGuard<McsSpinLock> guard(lock);  // Must compile and not wake anything.
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// CrSemaphore::PreparePost.

TEST(PreparePost, WakesHeadWaiterAhead) {
  CrSemaphore sem(0, CrSemaphoreOptions{.append_probability = 1.0, .spin_budget = 0});
  std::atomic<bool> got{false};
  const std::uint64_t parks_before = TotalKernelParks();
  std::thread waiter([&] {
    sem.Wait();
    got.store(true, std::memory_order_release);
  });
  AwaitKernelParksAbove(parks_before);
  const std::uint64_t aheads_before = TotalWakeAheads();
  sem.PreparePost();
  EXPECT_EQ(TotalWakeAheads() - aheads_before, 1u);
  sem.Post();
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(PreparePost, NoWaitersIsANoOp) {
  CrSemaphore sem(0);
  const std::uint64_t aheads_before = TotalWakeAheads();
  sem.PreparePost();
  EXPECT_EQ(TotalWakeAheads(), aheads_before);
}

// ---------------------------------------------------------------------------
// AdaptiveSpinBudget.

TEST(AdaptiveSpinBudget, SeedsFromCalibration) {
  AdaptiveSpinBudget budget;
  EXPECT_TRUE(budget.adaptive());
  EXPECT_EQ(budget.Get(), CalibratedSpinBudget());
  EXPECT_EQ(budget.samples(), 0u);
}

TEST(AdaptiveSpinBudget, PinDisablesAdaptation) {
  AdaptiveSpinBudget budget(123);
  EXPECT_FALSE(budget.adaptive());
  EXPECT_EQ(budget.Get(), 123u);
  budget.RecordParkedHandoverNs(10'000'000);
  EXPECT_EQ(budget.Get(), 123u);
  EXPECT_EQ(budget.samples(), 0u);
  budget.Reset(kAutoSpinBudget);
  EXPECT_TRUE(budget.adaptive());
}

TEST(AdaptiveSpinBudget, EmaConvergesOnSyntheticSeries) {
  AdaptiveSpinBudget budget;
  constexpr std::int64_t kTargetNs = 2'000'000;  // 2 ms parked handovers.
  for (int i = 0; i < 64; ++i) {
    budget.RecordParkedHandoverNs(kTargetNs);
  }
  EXPECT_EQ(budget.samples(), 64u);
  // First sample seeds the EMA directly, so convergence is exact here.
  EXPECT_EQ(budget.ema_ns(), kTargetNs);
  const double expected_iters =
      AdaptiveSpinBudget::kSafetyFactor * static_cast<double>(kTargetNs) / SpinIterationNs();
  const double clamped = std::min<double>(
      std::max<double>(expected_iters, AdaptiveSpinBudget::kMinBudget),
      static_cast<double>(budget.cap()));
  EXPECT_NEAR(static_cast<double>(budget.Get()), clamped, clamped * 0.01 + 1.0);
}

TEST(AdaptiveSpinBudget, GrowthIsCappedAtCalibratedSeed) {
  // Spinning longer than the park round trip is never rational, and an
  // uncapped EMA feedback loop spirals on oversubscribed hosts — observed
  // handover latency includes the very scheduling delay long spins create.
  AdaptiveSpinBudget budget;
  EXPECT_EQ(budget.cap(), std::min(CalibratedSpinBudget(), AdaptiveSpinBudget::kMaxBudget));
  for (int i = 0; i < 32; ++i) {
    budget.RecordParkedHandoverNs(40'000'000);  // Pathological 40 ms samples.
  }
  EXPECT_LE(budget.Get(), budget.cap());
}

TEST(AdaptiveSpinBudget, EmaTracksShiftingSeries) {
  AdaptiveSpinBudget budget;
  // A phase of slow (5 ms) handovers pins the budget at its cap, then a
  // shift to fast (100 ns) ones — wake-ahead landing every time. The EMA
  // must follow downward and drag the budget below the cap: 100 ns times
  // the safety factor lands under the kMinBudget floor for any plausible
  // spin-iteration cost, and the floor sits below the >= 20000-iteration
  // calibrated cap.
  for (int i = 0; i < 32; ++i) {
    budget.RecordParkedHandoverNs(5'000'000);
  }
  const std::uint32_t slow_budget = budget.Get();
  EXPECT_EQ(slow_budget, budget.cap());
  for (int i = 0; i < 128; ++i) {
    budget.RecordParkedHandoverNs(100);
  }
  const std::uint32_t fast_budget = budget.Get();
  EXPECT_LT(fast_budget, slow_budget);
  // After 128 folds of alpha=1/8 the slow phase's residue is (7/8)^128 of
  // 5 ms ≈ 0.2 ns — the EMA must sit at the new 100 ns level.
  EXPECT_LT(budget.ema_ns(), 300);
  EXPECT_GE(budget.ema_ns(), 100);
}

TEST(AdaptiveSpinBudget, OutlierSamplesAreClamped) {
  AdaptiveSpinBudget budget;
  budget.RecordParkedHandoverNs(std::numeric_limits<std::int64_t>::max());
  EXPECT_LE(budget.ema_ns(), 50'000'000);  // kMaxSampleNs
  EXPECT_LE(budget.Get(), AdaptiveSpinBudget::kMaxBudget);
}

TEST(AdaptiveSpinBudget, LockFeedsBudgetFromParkedHandovers) {
  // End to end: a lock under forced-park handovers accumulates EMA samples.
  McscrLock<SpinThenParkPolicy> lock;  // Adaptive by default.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> acquisitions{0};
  std::thread t([&] {
    while (!done.load(std::memory_order_acquire)) {
      lock.lock();
      acquisitions.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
    }
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline &&
         lock.spin_budget().samples() == 0) {
    lock.lock();
    std::this_thread::sleep_for(8ms);  // Long hold: partner exhausts budget and parks.
    lock.unlock();
    std::this_thread::sleep_for(1ms);
  }
  done.store(true, std::memory_order_release);
  t.join();
  // With an 8ms hold the partner must park at least once (even the clamp
  // ceiling of 2^20 iterations is spent in a few ms), producing a sample.
  EXPECT_GT(lock.spin_budget().samples(), 0u);
  EXPECT_GT(lock.spin_budget().ema_ns(), 0);
}

}  // namespace
}  // namespace malthus
