// Unit tests for the fairness metrics: LWSS (including the paper's worked
// example), MTTR, Gini coefficient, RSTDDEV, and the admission log.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "src/metrics/admission_log.h"
#include "src/metrics/fairness.h"
#include "src/metrics/histogram.h"
#include "src/rng/xorshift.h"

namespace malthus {
namespace {

// Paper §1: admission history A B C A B C D A E (threads 0..4); the LWSS
// for the period 0-5 inclusive is {A,B,C} = 3.
TEST(Lwss, PaperWorkedExample) {
  const std::vector<std::uint32_t> history = {0, 1, 2, 0, 1, 2, 3, 0, 4};
  EXPECT_EQ(WindowLwss(history, 0, 6), 3u);
  EXPECT_EQ(WindowLwss(history, 0, 9), 5u);
}

TEST(Lwss, EmptyHistory) {
  EXPECT_EQ(WindowLwss({}, 0, 10), 0u);
  EXPECT_DOUBLE_EQ(AverageLwss({}, 1000), 0.0);
}

TEST(Lwss, SingleThreadIsOne) {
  const std::vector<std::uint32_t> history(5000, 7);
  EXPECT_DOUBLE_EQ(AverageLwss(history, 1000), 1.0);
}

TEST(Lwss, RoundRobinEqualsThreadCount) {
  std::vector<std::uint32_t> history;
  for (int i = 0; i < 4000; ++i) {
    history.push_back(static_cast<std::uint32_t>(i % 8));
  }
  EXPECT_DOUBLE_EQ(AverageLwss(history, 1000), 8.0);
}

TEST(Lwss, WindowsAreDisjointAndAbutting) {
  // First window all thread 0, second window all thread 1 => average 1.
  std::vector<std::uint32_t> history(1000, 0);
  history.insert(history.end(), 1000, 1);
  EXPECT_DOUBLE_EQ(AverageLwss(history, 1000), 1.0);
  // Window of 2000 sees both threads.
  EXPECT_DOUBLE_EQ(AverageLwss(history, 2000), 2.0);
}

TEST(Lwss, CrScheduleBeatsFifoSchedule) {
  // 16 threads, FIFO round robin vs CR cycling over 4.
  std::vector<std::uint32_t> fifo;
  std::vector<std::uint32_t> cr;
  for (int i = 0; i < 8000; ++i) {
    fifo.push_back(static_cast<std::uint32_t>(i % 16));
    cr.push_back(static_cast<std::uint32_t>(i % 4));
  }
  EXPECT_GT(AverageLwss(fifo, 1000), AverageLwss(cr, 1000));
}

TEST(Mttr, RoundRobin) {
  std::vector<std::uint32_t> history;
  for (int i = 0; i < 900; ++i) {
    history.push_back(static_cast<std::uint32_t>(i % 3));
  }
  // Each thread reacquires exactly 3 admissions later.
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire(history), 3.0);
}

TEST(Mttr, NoReacquisitionIsZero) {
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire({0, 1, 2, 3}), 0.0);
}

TEST(Mttr, SingleThreadIsOne) {
  const std::vector<std::uint32_t> history(100, 5);
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire(history), 1.0);
}

TEST(Mttr, SkewedHistory) {
  // Thread 0 dominates; thread 1 appears rarely.
  std::vector<std::uint32_t> history;
  for (int block = 0; block < 10; ++block) {
    for (int i = 0; i < 99; ++i) {
      history.push_back(0);
    }
    history.push_back(1);
  }
  // Median TTR is dominated by thread 0's distance-1 reacquisitions.
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire(history), 1.0);
}

TEST(Gini, PerfectEqualityIsZero) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({5, 5, 5, 5}), 0.0);
}

TEST(Gini, MaximalInequalityApproachesOne) {
  // One participant holds everything: G = (n-1)/n.
  const double g = GiniCoefficient({0, 0, 0, 100});
  EXPECT_NEAR(g, 3.0 / 4.0, 1e-9);
}

TEST(Gini, KnownTwoValueCase) {
  // {1, 3}: mean 2, G = |1-3|*1 / (2*n^2*mean) summed pairs = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-9);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({42}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0, 0}), 0.0);
}

TEST(Gini, ScaleInvariant) {
  const double g1 = GiniCoefficient({1, 2, 3, 4});
  const double g2 = GiniCoefficient({10, 20, 30, 40});
  EXPECT_NEAR(g1, g2, 1e-12);
}

TEST(Rstddev, UniformIsZero) { EXPECT_DOUBLE_EQ(RelativeStdDev({3, 3, 3}), 0.0); }

TEST(Rstddev, KnownValue) {
  // {2, 4}: mean 3, population stddev 1, rstddev 1/3.
  EXPECT_NEAR(RelativeStdDev({2, 4}), 1.0 / 3.0, 1e-12);
}

TEST(Rstddev, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(RelativeStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(RelativeStdDev({0, 0}), 0.0);
}

TEST(AdmissionLog, RecordsHistoryAndCounts) {
  AdmissionLog log(16);
  log.Record(0);
  log.Record(1);
  log.Record(0);
  const auto history = log.History();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0], 0u);
  EXPECT_EQ(history[1], 1u);
  EXPECT_EQ(history[2], 0u);
  const auto counts = log.CountsPerThread();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(log.TotalAdmissions(), 3u);
}

TEST(AdmissionLog, CountersKeepGoingWhenHistoryFull) {
  AdmissionLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(static_cast<std::uint32_t>(i % 2));
  }
  EXPECT_EQ(log.History().size(), 4u);
  EXPECT_EQ(log.TotalAdmissions(), 10u);
}

TEST(AdmissionLog, HandlesLargeThreadIds) {
  AdmissionLog log(8);
  log.Record(3000);  // Forces counts_ growth.
  log.Record(3000);
  EXPECT_EQ(log.TotalAdmissions(), 2u);
  EXPECT_EQ(log.CountsPerThread().size(), 1u);
}

TEST(AdmissionLog, ReportComputesAllMetrics) {
  AdmissionLog log(1 << 12);
  for (int i = 0; i < 3000; ++i) {
    log.Record(static_cast<std::uint32_t>(i % 4));
  }
  const FairnessReport r = log.Report(1000);
  EXPECT_DOUBLE_EQ(r.average_lwss, 4.0);
  EXPECT_DOUBLE_EQ(r.mttr, 4.0);
  EXPECT_NEAR(r.gini, 0.0, 1e-9);
  EXPECT_NEAR(r.rstddev, 0.0, 1e-9);
  EXPECT_EQ(r.participants, 4u);
  EXPECT_FALSE(r.ToString().empty());
}

TEST(AdmissionLog, ResetClearsEverything) {
  AdmissionLog log(8);
  log.Record(1);
  log.Reset();
  EXPECT_EQ(log.TotalAdmissions(), 0u);
  EXPECT_TRUE(log.History().empty());
  EXPECT_TRUE(log.CountsPerThread().empty());
}

// ---------------------------------------------------------------------------
// LatencyHistogram: log-bucket mapping, percentile accuracy against an exact
// sorted reference, merge correctness, and concurrent recording.

// The rank a percentile resolves to, matching LatencyHistogram::Percentile.
std::uint64_t ExactPercentile(const std::vector<std::uint64_t>& sorted,
                              double p) {
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) {
    rank = 1;
  }
  return sorted[rank - 1];
}

// Quantization bound: bucket upper bounds overstate a value by at most one
// sub-bucket width = value / 32, plus 1 for the -1 in the upper bound.
void ExpectWithinQuantization(std::uint64_t hist_value,
                              std::uint64_t exact_value) {
  EXPECT_GE(hist_value, exact_value);
  EXPECT_LE(static_cast<double>(hist_value),
            static_cast<double>(exact_value) * (1.0 + 1.0 / 32.0) + 1.0);
}

TEST(LatencyHistogram, BucketMappingRoundTrips) {
  // Every value must land in a bucket whose [lower, upper] contains it.
  const std::uint64_t probes[] = {0,    1,    31,    32,        33,
                                  63,   64,   100,   1000,      4096,
                                  4097, 1u << 20,    (1u << 20) + 7,
                                  UINT64_MAX / 3,    UINT64_MAX};
  for (std::uint64_t v : probes) {
    const std::size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kBucketCount);
    EXPECT_LE(LatencyHistogram::BucketLowerBound(idx), v) << v;
    EXPECT_GE(LatencyHistogram::BucketUpperBound(idx), v) << v;
  }
  // Values below the sub-bucket count are exact.
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBucketCount; ++v) {
    const std::size_t idx = LatencyHistogram::BucketIndex(v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(idx), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(idx), v);
  }
  // Bucket boundaries tile the range with no gaps.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(i) + 1,
              LatencyHistogram::BucketLowerBound(i + 1));
  }
}

TEST(LatencyHistogram, PercentilesMatchSortedReference) {
  // Log-uniform values spanning ns..minutes, the histogram's real domain.
  XorShift64 rng(42);
  LatencyHistogram h;
  std::vector<std::uint64_t> values;
  values.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const int magnitude = static_cast<int>(rng.NextBelow(36));
    const std::uint64_t v = (1ull << magnitude) + rng.NextBelow(1ull << magnitude);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.Count(), values.size());
  EXPECT_EQ(h.Min(), values.front());
  EXPECT_EQ(h.Max(), values.back());
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    ExpectWithinQuantization(h.Percentile(p), ExactPercentile(values, p));
  }
}

TEST(LatencyHistogram, MergeEqualsUnion) {
  XorShift64 rng(7);
  LatencyHistogram a, b, reference;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.NextBelow(1u << 20);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    reference.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), reference.Count());
  EXPECT_EQ(a.Min(), reference.Min());
  EXPECT_EQ(a.Max(), reference.Max());
  EXPECT_DOUBLE_EQ(a.Mean(), reference.Mean());
  for (double p : {1.0, 50.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), reference.Percentile(p));
  }
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  LatencyHistogram h;
  LatencyHistogram reference;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      XorShift64 rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(rng.NextBelow(1u << 24));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    XorShift64 rng(1000 + t);
    for (int i = 0; i < kPerThread; ++i) {
      reference.Record(rng.NextBelow(1u << 24));
    }
  }
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(h.Percentile(p), reference.Percentile(p));
  }
}

TEST(LatencyHistogram, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  h.Record(1234);
  EXPECT_EQ(h.Count(), 1u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

}  // namespace
}  // namespace malthus
