// Unit tests for the fairness metrics: LWSS (including the paper's worked
// example), MTTR, Gini coefficient, RSTDDEV, and the admission log.
#include <gtest/gtest.h>

#include <vector>

#include "src/metrics/admission_log.h"
#include "src/metrics/fairness.h"

namespace malthus {
namespace {

// Paper §1: admission history A B C A B C D A E (threads 0..4); the LWSS
// for the period 0-5 inclusive is {A,B,C} = 3.
TEST(Lwss, PaperWorkedExample) {
  const std::vector<std::uint32_t> history = {0, 1, 2, 0, 1, 2, 3, 0, 4};
  EXPECT_EQ(WindowLwss(history, 0, 6), 3u);
  EXPECT_EQ(WindowLwss(history, 0, 9), 5u);
}

TEST(Lwss, EmptyHistory) {
  EXPECT_EQ(WindowLwss({}, 0, 10), 0u);
  EXPECT_DOUBLE_EQ(AverageLwss({}, 1000), 0.0);
}

TEST(Lwss, SingleThreadIsOne) {
  const std::vector<std::uint32_t> history(5000, 7);
  EXPECT_DOUBLE_EQ(AverageLwss(history, 1000), 1.0);
}

TEST(Lwss, RoundRobinEqualsThreadCount) {
  std::vector<std::uint32_t> history;
  for (int i = 0; i < 4000; ++i) {
    history.push_back(static_cast<std::uint32_t>(i % 8));
  }
  EXPECT_DOUBLE_EQ(AverageLwss(history, 1000), 8.0);
}

TEST(Lwss, WindowsAreDisjointAndAbutting) {
  // First window all thread 0, second window all thread 1 => average 1.
  std::vector<std::uint32_t> history(1000, 0);
  history.insert(history.end(), 1000, 1);
  EXPECT_DOUBLE_EQ(AverageLwss(history, 1000), 1.0);
  // Window of 2000 sees both threads.
  EXPECT_DOUBLE_EQ(AverageLwss(history, 2000), 2.0);
}

TEST(Lwss, CrScheduleBeatsFifoSchedule) {
  // 16 threads, FIFO round robin vs CR cycling over 4.
  std::vector<std::uint32_t> fifo;
  std::vector<std::uint32_t> cr;
  for (int i = 0; i < 8000; ++i) {
    fifo.push_back(static_cast<std::uint32_t>(i % 16));
    cr.push_back(static_cast<std::uint32_t>(i % 4));
  }
  EXPECT_GT(AverageLwss(fifo, 1000), AverageLwss(cr, 1000));
}

TEST(Mttr, RoundRobin) {
  std::vector<std::uint32_t> history;
  for (int i = 0; i < 900; ++i) {
    history.push_back(static_cast<std::uint32_t>(i % 3));
  }
  // Each thread reacquires exactly 3 admissions later.
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire(history), 3.0);
}

TEST(Mttr, NoReacquisitionIsZero) {
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire({0, 1, 2, 3}), 0.0);
}

TEST(Mttr, SingleThreadIsOne) {
  const std::vector<std::uint32_t> history(100, 5);
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire(history), 1.0);
}

TEST(Mttr, SkewedHistory) {
  // Thread 0 dominates; thread 1 appears rarely.
  std::vector<std::uint32_t> history;
  for (int block = 0; block < 10; ++block) {
    for (int i = 0; i < 99; ++i) {
      history.push_back(0);
    }
    history.push_back(1);
  }
  // Median TTR is dominated by thread 0's distance-1 reacquisitions.
  EXPECT_DOUBLE_EQ(MedianTimeToReacquire(history), 1.0);
}

TEST(Gini, PerfectEqualityIsZero) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({5, 5, 5, 5}), 0.0);
}

TEST(Gini, MaximalInequalityApproachesOne) {
  // One participant holds everything: G = (n-1)/n.
  const double g = GiniCoefficient({0, 0, 0, 100});
  EXPECT_NEAR(g, 3.0 / 4.0, 1e-9);
}

TEST(Gini, KnownTwoValueCase) {
  // {1, 3}: mean 2, G = |1-3|*1 / (2*n^2*mean) summed pairs = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-9);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({42}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0, 0}), 0.0);
}

TEST(Gini, ScaleInvariant) {
  const double g1 = GiniCoefficient({1, 2, 3, 4});
  const double g2 = GiniCoefficient({10, 20, 30, 40});
  EXPECT_NEAR(g1, g2, 1e-12);
}

TEST(Rstddev, UniformIsZero) { EXPECT_DOUBLE_EQ(RelativeStdDev({3, 3, 3}), 0.0); }

TEST(Rstddev, KnownValue) {
  // {2, 4}: mean 3, population stddev 1, rstddev 1/3.
  EXPECT_NEAR(RelativeStdDev({2, 4}), 1.0 / 3.0, 1e-12);
}

TEST(Rstddev, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(RelativeStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(RelativeStdDev({0, 0}), 0.0);
}

TEST(AdmissionLog, RecordsHistoryAndCounts) {
  AdmissionLog log(16);
  log.Record(0);
  log.Record(1);
  log.Record(0);
  const auto history = log.History();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0], 0u);
  EXPECT_EQ(history[1], 1u);
  EXPECT_EQ(history[2], 0u);
  const auto counts = log.CountsPerThread();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(log.TotalAdmissions(), 3u);
}

TEST(AdmissionLog, CountersKeepGoingWhenHistoryFull) {
  AdmissionLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(static_cast<std::uint32_t>(i % 2));
  }
  EXPECT_EQ(log.History().size(), 4u);
  EXPECT_EQ(log.TotalAdmissions(), 10u);
}

TEST(AdmissionLog, HandlesLargeThreadIds) {
  AdmissionLog log(8);
  log.Record(3000);  // Forces counts_ growth.
  log.Record(3000);
  EXPECT_EQ(log.TotalAdmissions(), 2u);
  EXPECT_EQ(log.CountsPerThread().size(), 1u);
}

TEST(AdmissionLog, ReportComputesAllMetrics) {
  AdmissionLog log(1 << 12);
  for (int i = 0; i < 3000; ++i) {
    log.Record(static_cast<std::uint32_t>(i % 4));
  }
  const FairnessReport r = log.Report(1000);
  EXPECT_DOUBLE_EQ(r.average_lwss, 4.0);
  EXPECT_DOUBLE_EQ(r.mttr, 4.0);
  EXPECT_NEAR(r.gini, 0.0, 1e-9);
  EXPECT_NEAR(r.rstddev, 0.0, 1e-9);
  EXPECT_EQ(r.participants, 4u);
  EXPECT_FALSE(r.ToString().empty());
}

TEST(AdmissionLog, ResetClearsEverything) {
  AdmissionLog log(8);
  log.Record(1);
  log.Reset();
  EXPECT_EQ(log.TotalAdmissions(), 0u);
  EXPECT_TRUE(log.History().empty());
  EXPECT_TRUE(log.CountsPerThread().empty());
}

}  // namespace
}  // namespace malthus
