// Differential tests: drive the workload substrates with long randomized
// operation streams and compare every observable against a simple reference
// model built from the standard library.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/kchash/kchash.h"
#include "src/minidb/minidb.h"
#include "src/minidb/skiplist.h"
#include "src/locks/tas.h"
#include "src/rng/xorshift.h"

namespace malthus {
namespace {

TEST(SkipListDifferential, MatchesStdMap) {
  SkipList list;
  std::map<std::uint64_t, std::string> reference;
  XorShift64 rng(2024);
  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t key = rng.NextBelow(2000);
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {
        const std::string value = "v" + std::to_string(step);
        list.Put(key, value);
        reference[key] = value;
        break;
      }
      case 2: {
        const bool removed = list.Delete(key);
        EXPECT_EQ(removed, reference.erase(key) > 0) << "step " << step;
        break;
      }
      default: {
        const auto got = list.Get(key);
        const auto it = reference.find(key);
        ASSERT_EQ(got.has_value(), it != reference.end()) << "step " << step;
        if (got.has_value()) {
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
    if (step % 10000 == 0) {
      EXPECT_EQ(list.Size(), reference.size());
      EXPECT_TRUE(list.CheckInvariants());
    }
  }
  EXPECT_EQ(list.Size(), reference.size());
  // Lower-bound scan agreement over the full key space.
  for (std::uint64_t probe = 0; probe < 2000; probe += 37) {
    const auto got = list.LowerBoundKey(probe);
    const auto it = reference.lower_bound(probe);
    ASSERT_EQ(got.has_value(), it != reference.end()) << "probe " << probe;
    if (got.has_value()) {
      EXPECT_EQ(*got, it->first);
    }
  }
}

// Reference LRU cache mirroring KcHashCore's semantics.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  void Set(std::uint64_t key, std::string value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    while (index_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  std::optional<std::string> Get(std::uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  bool Remove(std::uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  std::size_t Size() const { return index_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::pair<std::uint64_t, std::string>> order_;
  std::unordered_map<std::uint64_t, std::list<std::pair<std::uint64_t, std::string>>::iterator>
      index_;
};

TEST(KcHashDifferential, MatchesReferenceLru) {
  KcHashCore db(64, 200);
  ReferenceLru reference(200);
  XorShift64 rng(4096);
  for (int step = 0; step < 60000; ++step) {
    const std::uint64_t key = rng.NextBelow(600);
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2: {
        const std::string value = std::to_string(step);
        db.Set(key, value);
        reference.Set(key, value);
        break;
      }
      case 3: {
        EXPECT_EQ(db.Remove(key), reference.Remove(key)) << "step " << step;
        break;
      }
      default: {
        const auto got = db.Get(key);
        const auto want = reference.Get(key);
        ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step << " key " << key;
        if (got.has_value()) {
          EXPECT_EQ(*got, *want);
        }
        break;
      }
    }
    if (step % 15000 == 0) {
      EXPECT_EQ(db.Size(), reference.Size());
      EXPECT_TRUE(db.CheckInvariants());
    }
  }
  EXPECT_EQ(db.Size(), reference.Size());
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(MiniDbDifferential, MatchesReferenceMapSingleThreaded) {
  MiniDb<TtasLock> db(64);
  std::map<std::uint64_t, std::string> reference;
  XorShift64 rng(777);
  for (int step = 0; step < 40000; ++step) {
    const std::uint64_t key = rng.NextBelow(1500);
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {
        const std::string value = "x" + std::to_string(step);
        db.Put(key, value);
        reference[key] = value;
        break;
      }
      case 2: {
        EXPECT_EQ(db.Delete(key), reference.erase(key) > 0) << "step " << step;
        break;
      }
      default: {
        const auto got = db.Get(key);
        const auto it = reference.find(key);
        ASSERT_EQ(got.has_value(), it != reference.end()) << "step " << step;
        if (got.has_value()) {
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(db.Size(), reference.size());
}

TEST(TtasAndersonRecheck, CorrectUnderContention) {
  TtasLock lock;
  lock.set_anderson_recheck(true);
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, 8u * 10000u);
}

}  // namespace
}  // namespace malthus
