#include "src/core/mcscr.h"

namespace malthus {

// Instantiation anchors.
template class McscrLock<SpinPolicy>;
template class McscrLock<YieldingSpinPolicy>;
template class McscrLock<SpinThenParkPolicy>;
template class McscrLock<ParkPolicy>;

}  // namespace malthus
