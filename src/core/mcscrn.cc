#include "src/core/mcscrn.h"

namespace malthus {

template class McscrnLock<SpinPolicy>;
template class McscrnLock<YieldingSpinPolicy>;
template class McscrnLock<SpinThenParkPolicy>;

}  // namespace malthus
