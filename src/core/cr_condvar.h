// Condition variable with a controllable wait-queue discipline (paper
// §6.10–6.11): each Wait() appends to the *tail* of the waiter list with
// probability P and prepends to the *head* otherwise; Signal() always wakes
// the head.
//
//   P = 1      — strict FIFO (the paper's baseline condvar),
//   P = 0      — strict LIFO (folly LifoSem-style, maximally unfair),
//   P = 1/1000 — mostly-LIFO: concurrency restriction through the condition
//                variable, retaining most of LIFO's throughput while
//                providing long-term fairness.
//
// Mostly-LIFO wakeup keeps re-activating the most recently waiting threads,
// so a minimal set of workers circulates (warm caches, fewer park/unpark
// transitions) while the rest stay passive — exactly the CR effect, applied
// where the waiting actually happens in condvar-based constructs (perl
// locks, buffer pools, thread pools).
//
// Mesa semantics: waiters must re-check their predicate; Signal() wakes at
// least one waiter if any are present; signals do not persist.
#ifndef MALTHUS_SRC_CORE_CR_CONDVAR_H_
#define MALTHUS_SRC_CORE_CR_CONDVAR_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/chaos/failpoint.h"
#include "src/platform/align.h"
#include "src/platform/cpu.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"

namespace malthus {

struct CrCondVarOptions {
  // Probability that a Wait() appends at the tail (FIFO-wise). 1.0 = FIFO.
  double append_probability = 1.0;
};

class CrCondVar {
 public:
  CrCondVar() = default;
  explicit CrCondVar(const CrCondVarOptions& opts) : opts_(opts) {}
  CrCondVar(const CrCondVar&) = delete;
  CrCondVar& operator=(const CrCondVar&) = delete;

  // Atomically releases `lock`, waits for a signal, and reacquires `lock`.
  // Spurious wakeups are possible (Mesa); use the predicate overload or an
  // external while-loop.
  template <typename Lock>
  void Wait(Lock& lock) {
    ThreadCtx& self = Self();
    Waiter w;
    w.wake = SelfWakeRef(self);
    Enqueue(&w);
    lock.unlock();
    while (w.state.load(std::memory_order_acquire) == kQueued) {
      self.parker.Park();
    }
    lock.lock();
  }

  template <typename Lock, typename Pred>
  void Wait(Lock& lock, Pred pred) {
    while (!pred()) {
      Wait(lock);
    }
  }

  // Timed wait: returns true if signaled, false if the deadline passed
  // first (Mesa semantics either way — re-check the predicate). The stack
  // Waiter's guard-protected `queued` flag arbitrates the timeout-vs-signal
  // race: Signal()/Broadcast() clear it under the guard when they commit to
  // a waiter, so a timed-out waiter that finds it cleared spins for the
  // imminent state store and reports the signal rather than losing it.
  template <typename Lock>
  bool WaitUntil(Lock& lock, std::chrono::steady_clock::time_point deadline) {
    ThreadCtx& self = Self();
    Waiter w;
    w.wake = SelfWakeRef(self);
    Enqueue(&w);
    lock.unlock();
    bool signaled = true;
    while (w.state.load(std::memory_order_acquire) == kQueued) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        // Chaos: widen the timeout-vs-signal window.
        MALTHUS_FAILPOINT("condvar.cancel");
        Guard();
        if (w.queued) {
          Unlink(&w);
          Unguard();
          signaled = false;
          break;
        }
        Unguard();
        // A signaler already popped us: the kSignaled store is imminent
        // (it happens outside the guard). Absorb it — abandoning now would
        // swallow the signal, stranding another waiter forever.
        while (w.state.load(std::memory_order_acquire) == kQueued) {
          CpuRelax();
        }
        break;
      }
      self.parker.ParkFor(deadline - now);
    }
    lock.lock();
    return signaled;
  }

  template <typename Lock>
  bool WaitFor(Lock& lock, std::chrono::nanoseconds timeout) {
    return WaitUntil(lock, std::chrono::steady_clock::now() + timeout);
  }

  // Predicate overload: returns the predicate's value at exit (true iff it
  // held before the deadline).
  template <typename Lock, typename Pred>
  bool WaitUntil(Lock& lock, std::chrono::steady_clock::time_point deadline, Pred pred) {
    while (!pred()) {
      if (!WaitUntil(lock, deadline)) {
        return pred();
      }
    }
    return true;
  }

  template <typename Lock, typename Pred>
  bool WaitFor(Lock& lock, std::chrono::nanoseconds timeout, Pred pred) {
    return WaitUntil(lock, std::chrono::steady_clock::now() + timeout, pred);
  }

  // Wakes the head waiter, if any.
  void Signal();

  // Wakes all current waiters.
  void Broadcast();

  // Number of threads currently enqueued (racy snapshot; for stats/tests).
  std::size_t WaiterCount() const { return count_.load(std::memory_order_relaxed); }
  // Timed waits that gave up at their deadline.
  std::uint64_t Timeouts() const { return timeouts_.load(std::memory_order_relaxed); }

  void set_options(const CrCondVarOptions& opts) { opts_ = opts; }
  const CrCondVarOptions& options() const { return opts_; }

 private:
  static constexpr std::uint32_t kQueued = 0;
  static constexpr std::uint32_t kSignaled = 1;

  struct Waiter {
    std::atomic<std::uint32_t> state{kQueued};
    Waiter* next = nullptr;
    Waiter* prev = nullptr;
    // Generation-validated wake channel (see CrSemaphore::Waiter): the
    // signaler's Unpark fires after the kSignaled store, by which time the
    // waiter may have returned and its thread exited.
    ParkerRef wake;
    // Guard-protected: true while linked. Cleared by the committing
    // Signal()/Broadcast(), so a timed-out waiter can tell whether a signal
    // is already in flight to it.
    bool queued = false;
  };

  // Tiny internal spinlock guarding the waiter list. Waiters hold the user
  // lock when enqueueing but signalers need not, hence the separate guard.
  void Guard() {
    while (guard_.exchange(1, std::memory_order_acquire) != 0) {
      CpuRelax();
    }
  }
  void Unguard() { guard_.store(0, std::memory_order_release); }

  void Enqueue(Waiter* w);

  // Caller holds the guard; w must be linked. Used by the timeout path.
  void Unlink(Waiter* w) {
    if (w->prev != nullptr) {
      w->prev->next = w->next;
    } else {
      head_ = w->next;
    }
    if (w->next != nullptr) {
      w->next->prev = w->prev;
    } else {
      tail_ = w->prev;
    }
    w->queued = false;
    count_.fetch_sub(1, std::memory_order_relaxed);
    timeouts_.fetch_add(1, std::memory_order_relaxed);
  }

  alignas(kCacheLineSize) std::atomic<std::uint32_t> guard_{0};
  Waiter* head_ = nullptr;  // Signal pops here.
  Waiter* tail_ = nullptr;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  CrCondVarOptions opts_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_CR_CONDVAR_H_
