// LIFO-CR (paper §A.2): a pure LIFO lock — an explicit stack of waiting
// threads — augmented with periodic eldest-first grants for long-term
// fairness.
//
// The lock word encodes three states:
//   0        — free
//   1        — held, no waiters
//   Node*    — held, with a stack of waiters (top = most recently arrived)
//
// Contended arrivals push a node and wait on their own flag. At unlock the
// owner pops the head — the most recently arrived thread, which is the most
// likely to still be spinning (cheap to wake) and the warmest in cache. The
// ACS is the owner + the circulating threads + the top of the stack; deeper
// nodes form the passive set. A Bernoulli trial occasionally unlinks the
// stack *bottom* (the eldest waiter) and grants it instead, bounding
// starvation.
//
// Only the lock holder pops, so the stack is multi-producer/single-consumer
// and pops are immune to ABA. The push CAS can only succeed if the observed
// top is genuinely on the stack, so pushes are safe too.
#ifndef MALTHUS_SRC_CORE_LIFOCR_H_
#define MALTHUS_SRC_CORE_LIFOCR_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/chaos/failpoint.h"
#include "src/locks/lock_base.h"
#include "src/metrics/admission_log.h"
#include "src/rng/xorshift.h"
#include "src/waiting/policy.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

struct LifoCrOptions {
  std::uint64_t fairness_one_in = 1000;
  std::uint32_t spin_budget = kAutoSpinBudget;
};

template <typename WaitPolicy>
class LifoCrLock {
 public:
  LifoCrLock() : spin_budget_(kAutoSpinBudget) {}
  explicit LifoCrLock(const LifoCrOptions& opts)
      : opts_(opts), spin_budget_(opts.spin_budget) {}
  LifoCrLock(const LifoCrLock&) = delete;
  LifoCrLock& operator=(const LifoCrLock&) = delete;

  void lock() {
    ThreadCtx& self = Self();
    std::uintptr_t cur = word_.load(std::memory_order_relaxed);
    QNode* me = nullptr;
    while (true) {
      if (cur == kFree) {
        if (word_.compare_exchange_weak(cur, kHeldNoWaiters, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          break;  // Fast path.
        }
        continue;  // cur reloaded by the failed CAS.
      }
      // Held: push ourselves onto the waiter stack.
      if (me == nullptr) {
        me = AcquireQNode();
        me->PrepareForWait(self);
      }
      me->next.store(cur == kHeldNoWaiters ? nullptr : reinterpret_cast<QNode*>(cur),
                     std::memory_order_relaxed);
      if (word_.compare_exchange_weak(cur, reinterpret_cast<std::uintptr_t>(me),
                                      std::memory_order_release, std::memory_order_relaxed)) {
        WaitPolicy::Await(me->status, kWaiting, self.parker, spin_budget_);
        break;  // Granted; our node has been unlinked by the granter.
      }
    }
    if (me != nullptr) {
      ReleaseQNode(me);
    }
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
  }

  bool try_lock() {
    std::uintptr_t expected = kFree;
    return word_.compare_exchange_strong(expected, kHeldNoWaiters, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  // Timed acquisition. A timed-out waiter cannot unlink itself from the
  // stack (only the owner pops), so it tombstones its node in place with
  // the kWaiting -> kCancelled CAS; owner-side pops and the fairness walk
  // skip and reclaim husks. A failed cancel CAS means a granter already
  // popped us and committed — the lock is ours despite the deadline.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline) {
    ThreadCtx& self = Self();
    std::uintptr_t cur = word_.load(std::memory_order_relaxed);
    QNode* me = nullptr;
    while (true) {
      if (cur == kFree) {
        if (word_.compare_exchange_weak(cur, kHeldNoWaiters, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          if (me != nullptr) {
            ReleaseQNode(me);
          }
          break;
        }
        continue;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        // Not on the stack (every failed push CAS leaves the node private),
        // so no tombstone is needed yet.
        if (me != nullptr) {
          ReleaseQNode(me);
        }
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (me == nullptr) {
        me = AcquireQNode();
        me->PrepareForWait(self);
      }
      me->next.store(cur == kHeldNoWaiters ? nullptr : reinterpret_cast<QNode*>(cur),
                     std::memory_order_relaxed);
      if (word_.compare_exchange_weak(cur, reinterpret_cast<std::uintptr_t>(me),
                                      std::memory_order_release, std::memory_order_relaxed)) {
        if (!WaitPolicy::AwaitUntil(me->status, kWaiting, self.parker, deadline, spin_budget_)) {
          MALTHUS_FAILPOINT("lifocr.cancel");
          std::uint32_t expected = kWaiting;
          if (me->status.compare_exchange_strong(expected, kCancelled, std::memory_order_release,
                                                 std::memory_order_acquire)) {
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            ZombieQNode(me);
            return false;
          }
        }
        if (me->status.load(std::memory_order_acquire) != kGranted) {
          AwaitGrantCommit(me->status);
        }
        ReleaseQNode(me);
        break;  // Granted; our node was unlinked by the granter.
      }
    }
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
    return true;
  }

  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  // Anticipatory handover (wake-ahead, §5.2): the next grantee is the stack
  // top — the most recently arrived waiter, which LIFO pops. Only the owner
  // pops, so the observed top stays on the stack until our unlock(); a
  // fresher arrival pushing above it before then leaves the observed node a
  // benign stale permit (it becomes the granted top's successor prediction
  // miss). A rare fairness grant to the stack bottom mispredicts likewise.
  void PrepareHandover() {
    if constexpr (WaitPolicy::kParks) {
      const std::uintptr_t cur = word_.load(std::memory_order_acquire);
      if (cur == kFree || cur == kHeldNoWaiters) {
        return;
      }
      reinterpret_cast<QNode*>(cur)->wake_ref().WakeAhead();
    }
  }

  void unlock() {
    // Memory-order map of the grant path:
    //   * The initial acquire load pairs with arrivals' release push CAS, so
    //     top->next (stored before the push) is safe to read below.
    //   * kHeldNoWaiters -> kFree needs release: the next fast-path acquirer
    //     takes the critical section through the lock word itself.
    //   * The pop CAS does NOT need release: the granted waiter receives the
    //     critical section via Grant()'s release store to its status flag,
    //     and later readers of the lock word still synchronize with each
    //     node's original pusher because every intervening push/pop is a RMW
    //     and RMWs extend the pusher's release sequence regardless of their
    //     own ordering. Acquire (both orderings) suffices: the reloaded
    //     `cur` is dereferenced on the next iteration.
    std::uintptr_t cur = word_.load(std::memory_order_acquire);
    while (true) {
      if (cur == kHeldNoWaiters) {
        if (word_.compare_exchange_weak(cur, kFree, std::memory_order_release,
                                        std::memory_order_acquire)) {
          return;
        }
        continue;  // A waiter pushed concurrently.
      }
      QNode* top = reinterpret_cast<QNode*>(cur);

      if (top->next.load(std::memory_order_relaxed) != nullptr && opts_.fairness_one_in != 0 &&
          ThreadLocalRng().BernoulliOneIn(opts_.fairness_one_in)) {
        // Anti-starvation: unlink the stack bottom (the eldest *live*
        // waiter) and grant it. Links below the observed top are frozen
        // (pushes only alter the top; we are the only popper), so the walk
        // is safe — and since only we pop, cancelled husks encountered on
        // the way are unlinked and reclaimed in passing, which keeps deep
        // tombstones from accumulating under cancellation storms.
        QNode* prev = top;
        QNode* bottom = top->next.load(std::memory_order_relaxed);
        while (bottom != nullptr) {
          QNode* nxt = bottom->next.load(std::memory_order_relaxed);
          if (bottom->status.load(std::memory_order_acquire) == kCancelled) {
            // Terminal on the waiter side; unlink and hand the husk back.
            prev->next.store(nxt, std::memory_order_relaxed);
            cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
            bottom->status.store(kReclaimed, std::memory_order_release);
            bottom = nxt;
            continue;
          }
          if (nxt == nullptr) {
            break;
          }
          prev = bottom;
          bottom = nxt;
        }
        if (bottom != nullptr) {
          MALTHUS_FAILPOINT("lifocr.fairness");
          prev->next.store(nullptr, std::memory_order_relaxed);
          // The unlink precedes the grant attempt, so a cancel racing us
          // just costs the unlink: on CAS failure the husk is already off
          // the stack and is reclaimed here.
          if (TryGrant(bottom)) {
            fairness_grants_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
          bottom->status.store(kReclaimed, std::memory_order_release);
        }
        // Stack drained to tombstones below the top (or the bottom
        // cancelled mid-grant); fall through to the normal pop.
      }

      // Normal LIFO pop of the most recently arrived waiter. Acquire-only:
      // see the memory-order map above (release would be accidental
      // over-strength on the handover fast path). `below` is re-read here:
      // the fairness walk above may have unlinked (and reclaimed) the node
      // a pre-walk read would have captured.
      QNode* below = top->next.load(std::memory_order_relaxed);
      MALTHUS_FAILPOINT("lifocr.pop");
      if (word_.compare_exchange_weak(
              cur, below == nullptr ? kHeldNoWaiters : reinterpret_cast<std::uintptr_t>(below),
              std::memory_order_acquire, std::memory_order_acquire)) {
        if (TryGrant(top)) {
          return;
        }
        // The popped top was a cancelled husk: reclaim it and keep popping.
        // We still hold the lock, so the loop re-reads the word and tries
        // the next waiter (or frees the lock).
        cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
        top->status.store(kReclaimed, std::memory_order_release);
        cur = word_.load(std::memory_order_acquire);
        continue;
      }
      // New arrivals changed the top; retry with the fresh value.
    }
  }

  // Safe to call while other threads are locking (tests attach recorders
  // mid-run to skip warmup); hence the atomic pointer.
  void set_recorder(AdmissionLog* recorder) {
    recorder_.store(recorder, std::memory_order_relaxed);
  }
  void set_options(const LifoCrOptions& opts) {
    opts_ = opts;
    spin_budget_.Reset(opts.spin_budget);
  }
  AdaptiveSpinBudget& spin_budget() { return spin_budget_; }

  std::uint64_t fairness_grants() const {
    return fairness_grants_.load(std::memory_order_relaxed);
  }
  // Acquisitions that timed out (pre-push or via cancellation).
  std::uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  // Cancelled husks unlinked and reclaimed by owner-side pops and walks.
  std::uint64_t cancelled_reclaims() const {
    return cancelled_reclaims_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uintptr_t kFree = 0;
  static constexpr std::uintptr_t kHeldNoWaiters = 1;

  // Commits the grant iff the (already unlinked) node has not cancelled.
  // On success the waiter may recycle `node` immediately, so the wake goes
  // through the pre-read, generation-validated ParkerRef, never through the
  // node. Release pairs with the waiter's acquire load in Await. On failure
  // the caller owns the husk and must reclaim it.
  bool TryGrant(QNode* node) {
    const ParkerRef wake = node->wake_ref();
    std::uint32_t expected = kWaiting;
    if (node->status.compare_exchange_strong(expected, kGranted, std::memory_order_release,
                                             std::memory_order_relaxed)) {
      WaitPolicy::Wake(wake);
      return true;
    }
    return false;
  }

  alignas(kCacheLineSize) std::atomic<std::uintptr_t> word_{kFree};
  std::atomic<std::uint64_t> fairness_grants_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> cancelled_reclaims_{0};
  std::atomic<AdmissionLog*> recorder_{nullptr};
  LifoCrOptions opts_;
  AdaptiveSpinBudget spin_budget_;
};

using LifoCrSpinLock = LifoCrLock<YieldingSpinPolicy>;  // LIFO-S (yield-aware spin)
using LifoCrStpLock = LifoCrLock<SpinThenParkPolicy>;

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_LIFOCR_H_
