// CrThrottle — concurrency restriction imposed *outside* the lock's waiting
// mechanism (paper §A.1: "You can also impose concurrency restriction at a
// higher level outside the waiting mechanism... wrap [an] abstract outer
// lock with [a] CR 'throttling' construct. Throttling provides
// K-exclusion.").
//
// ThrottledLock<Lock> gates arrivals through a mostly-LIFO K-exclusion
// semaphore before they may contend for the inner lock: at most
// `max_circulating` threads circulate over the lock at any moment; the rest
// are passivated in the semaphore's wait queue (mostly-LIFO keeps the same
// warm subset circulating; the semaphore's fairness appends bound
// starvation). This turns ANY lock — even a fairness-oblivious TAS or a
// strict-FIFO MCS — into a CR lock, at the cost of one extra
// semaphore operation per circulation and a fixed K instead of MCSCR's
// emergent ACS size.
//
// A thread passes the gate once per lock()/unlock() pair; the gate permit
// is held across the critical section, so K bounds the *circulating set*
// (owner + waiters), not merely the waiters.
#ifndef MALTHUS_SRC_CORE_THROTTLE_H_
#define MALTHUS_SRC_CORE_THROTTLE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/core/cr_semaphore.h"
#include "src/metrics/admission_log.h"

namespace malthus {

struct ThrottleOptions {
  // Maximum threads allowed to circulate over the inner lock concurrently.
  // The paper's saturation heuristic — ceil((CS+NCS)/CS) — is a good
  // static choice; MCSCR's emergent sizing remains the adaptive option.
  std::uint32_t max_circulating = 4;
  // Queue discipline for the gate: mostly-LIFO by default.
  double append_probability = 1.0 / 1000;
};

template <typename Lock>
class ThrottledLock {
 public:
  ThrottledLock()
      : gate_(ThrottleOptions{}.max_circulating,
              CrSemaphoreOptions{.append_probability = ThrottleOptions{}.append_probability}) {}
  explicit ThrottledLock(const ThrottleOptions& opts)
      : gate_(opts.max_circulating,
              CrSemaphoreOptions{.append_probability = opts.append_probability}) {}
  ThrottledLock(const ThrottledLock&) = delete;
  ThrottledLock& operator=(const ThrottledLock&) = delete;

  void lock() {
    if (!gate_.TryWait()) {
      throttled_.fetch_add(1, std::memory_order_relaxed);
      gate_.Wait();
    }
    inner_.lock();
  }

  void unlock() {
    inner_.unlock();
    gate_.Post();
  }

  // Timed acquisition: the deadline bounds BOTH the gate wait and the inner
  // lock wait (the gate's timed wait handles the committed-permit race; see
  // CrSemaphore::TryWaitUntil). If the inner lock times out the gate permit
  // is returned with Post(). An inner lock without native timed support is
  // bounded only at the gate — once admitted, the acquire blocks; every
  // lock in this repo except CLH/ticket has a native timed path.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline) {
    if (!gate_.TryWait()) {
      throttled_.fetch_add(1, std::memory_order_relaxed);
      if (!gate_.TryWaitUntil(deadline)) {
        return false;
      }
    }
    if constexpr (requires(Lock& l, std::chrono::steady_clock::time_point d) {
                    { l.TryLockUntil(d) } -> std::convertible_to<bool>;
                  }) {
      if (inner_.TryLockUntil(deadline)) {
        return true;
      }
      gate_.Post();
      return false;
    } else {
      inner_.lock();
      return true;
    }
  }
  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  bool try_lock() {
    if (!gate_.TryWait()) {
      return false;
    }
    if constexpr (requires(Lock& l) { { l.try_lock() } -> std::convertible_to<bool>; }) {
      if (inner_.try_lock()) {
        return true;
      }
      gate_.Post();
      return false;
    } else {
      inner_.lock();
      return true;
    }
  }

  void set_recorder(AdmissionLog* recorder) {
    if constexpr (requires(Lock& l, AdmissionLog* r) { l.set_recorder(r); }) {
      inner_.set_recorder(recorder);
    }
  }

  // Times an arrival found the gate full and was passivated.
  std::uint64_t throttled() const { return throttled_.load(std::memory_order_relaxed); }
  std::size_t gate_waiters() const { return gate_.WaiterCount(); }

  Lock& inner() { return inner_; }

 private:
  CrSemaphore gate_;
  Lock inner_;
  std::atomic<std::uint64_t> throttled_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_THROTTLE_H_
