#include "src/core/lifocr.h"

namespace malthus {

template class LifoCrLock<SpinPolicy>;
template class LifoCrLock<YieldingSpinPolicy>;
template class LifoCrLock<SpinThenParkPolicy>;

}  // namespace malthus
