// Counting semaphore with a controllable wait-queue discipline (paper
// §6.11): the buffer-pool experiment's semaphore variant, and the general
// construct subsuming folly's LifoSem.
//
// Wait() consumes a permit or enqueues (append-at-tail with probability P,
// else prepend-at-head); Post() hands a permit *directly* to the head
// waiter if one exists (no thundering herd), else increments the count.
//
//   P = 1 — FIFO semaphore; P = 0 — LifoSem; P = 1/1000 — mostly-LIFO CR
//   semaphore: LIFO's throughput with long-term fairness, making it safe
//   for general use rather than folly's "all waiters equivalent" niche.
#ifndef MALTHUS_SRC_CORE_CR_SEMAPHORE_H_
#define MALTHUS_SRC_CORE_CR_SEMAPHORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/platform/align.h"
#include "src/platform/cpu.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

struct CrSemaphoreOptions {
  double append_probability = 1.0;  // 1.0 = FIFO, 0.0 = LIFO
  // Spin-then-park budget for waiters (kAutoSpinBudget = adaptive).
  std::uint32_t spin_budget = kAutoSpinBudget;
};

class CrSemaphore {
 public:
  explicit CrSemaphore(std::int64_t initial = 0)
      : count_(initial), spin_budget_(kAutoSpinBudget) {}
  CrSemaphore(std::int64_t initial, const CrSemaphoreOptions& opts)
      : count_(initial), opts_(opts), spin_budget_(opts.spin_budget) {}
  CrSemaphore(const CrSemaphore&) = delete;
  CrSemaphore& operator=(const CrSemaphore&) = delete;

  void Wait();
  bool TryWait();
  void Post();

  // Timed wait. The stack Waiter carries a guard-protected `queued` flag:
  // Post() clears it under the guard when it pops a waiter, so a timed-out
  // waiter re-taking the guard can distinguish "still enqueued" (unlink,
  // return false) from "popped, permit store imminent" (wait for the grant
  // word — the permit is committed to us and abandoning it would lose it).
  bool TryWaitUntil(std::chrono::steady_clock::time_point deadline);
  bool TryWaitFor(std::chrono::nanoseconds timeout) {
    return TryWaitUntil(std::chrono::steady_clock::now() + timeout);
  }
  // ISSUE nomenclature aliases (throttle/gate call sites).
  bool TryAcquireUntil(std::chrono::steady_clock::time_point deadline) {
    return TryWaitUntil(deadline);
  }
  bool TryAcquireFor(std::chrono::nanoseconds timeout) { return TryWaitFor(timeout); }

  // Anticipatory handover (wake-ahead, §5.2): call shortly before a Post()
  // to start the head waiter's kernel wakeup early, so the eventual direct
  // permit handoff finds it runnable (or back to spinning) and needs no
  // futex syscall. If another poster grants it first, or there is no
  // waiter, the hint is a benign stale permit.
  void PreparePost();

  std::int64_t Count() const;
  std::size_t WaiterCount() const { return waiters_.load(std::memory_order_relaxed); }
  // Timed waits that gave up at their deadline.
  std::uint64_t Timeouts() const { return timeouts_.load(std::memory_order_relaxed); }

  void set_options(const CrSemaphoreOptions& opts) {
    opts_ = opts;
    spin_budget_.Reset(opts.spin_budget);
  }
  AdaptiveSpinBudget& spin_budget() { return spin_budget_; }

 private:
  static constexpr std::uint32_t kQueued = 0;
  static constexpr std::uint32_t kGrantedPermit = 1;

  struct Waiter {
    std::atomic<std::uint32_t> state{kQueued};
    Waiter* next = nullptr;
    Waiter* prev = nullptr;
    // Generation-validated wake channel: the Waiter frame itself is
    // stack-pinned until the grant resolves, but the poster's Unpark fires
    // *after* the grant store — by which time the waiter may have returned
    // and its thread exited. The ParkerRef makes that late wake a no-op
    // instead of a dangling Parker poke.
    ParkerRef wake;
    // Guard-protected: true while linked in the wait list. Cleared by the
    // popping Post(), so a timed-out waiter can tell whether a permit has
    // already been committed to it.
    bool queued = false;
  };

  // Caller holds the guard; w must be linked.
  void Unlink(Waiter* w) {
    if (w->prev != nullptr) {
      w->prev->next = w->next;
    } else {
      head_ = w->next;
    }
    if (w->next != nullptr) {
      w->next->prev = w->prev;
    } else {
      tail_ = w->prev;
    }
    w->queued = false;
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  void Guard() const {
    while (guard_.exchange(1, std::memory_order_acquire) != 0) {
      CpuRelax();
    }
  }
  void Unguard() const { guard_.store(0, std::memory_order_release); }

  alignas(kCacheLineSize) mutable std::atomic<std::uint32_t> guard_{0};
  std::int64_t count_;
  Waiter* head_ = nullptr;
  Waiter* tail_ = nullptr;
  std::atomic<std::size_t> waiters_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  CrSemaphoreOptions opts_;
  AdaptiveSpinBudget spin_budget_;
};

// folly-equivalent strict-LIFO semaphore.
class LifoSem : public CrSemaphore {
 public:
  explicit LifoSem(std::int64_t initial = 0)
      : CrSemaphore(initial, CrSemaphoreOptions{.append_probability = 0.0}) {}
};

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_CR_SEMAPHORE_H_
