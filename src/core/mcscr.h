// MCSCR — the paper's primary contribution (§4): a classic MCS lock
// augmented with concurrency restriction via an explicit passive list.
//
// All CR logic lives in the unlock path; lock() is unchanged MCS. The main
// MCS chain holds the (implicit) active circulating set; the passive set is
// an explicit doubly-linked list of culled nodes, protected by the lock
// itself (only the owner touches it).
//
// At unlock time:
//   * Long-term fairness — with probability 1/fairness_one_in, the *tail*
//     of the PS (the least recently arrived passive thread) is grafted into
//     the chain immediately after the owner and granted the lock.
//   * Deficit — if the chain is empty except for the owner and the PS is
//     non-empty, the *head* of the PS (most recently passivated, warmest,
//     most likely still spinning) is re-provisioned and granted, keeping
//     the policy work conserving: the critical section is never left idle
//     while waiters exist.
//   * Surplus — if there are intermediate nodes strictly between the owner
//     and the tail, the immediate successor is excised and prepended to the
//     PS (up to cull_limit per unlock; the paper excises one). Culling
//     drives the system toward the desirable steady state of exactly one
//     waiter on the chain, giving cyclic admission over a minimal ACS and
//     mostly-LIFO admission overall.
//
// Absent contention MCSCR behaves exactly like MCS. The size of the ACS is
// emergent, not a tunable; the only knobs are the fairness probability and
// the spin budget (§7 "parameter parsimony").
#ifndef MALTHUS_SRC_CORE_MCSCR_H_
#define MALTHUS_SRC_CORE_MCSCR_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/chaos/failpoint.h"
#include "src/locks/lock_base.h"
#include "src/metrics/admission_log.h"
#include "src/rng/xorshift.h"
#include "src/waiting/policy.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

struct McscrOptions {
  // Bernoulli fairness: admit the eldest passive thread on average once per
  // this many unlocks. 0 disables explicit fairness (pure CR).
  std::uint64_t fairness_one_in = 1000;
  // Max culls per unlock. 0 disables CR entirely (degenerates to MCS);
  // UINT32_MAX drains all surplus in one unlock.
  std::uint32_t cull_limit = 1;
  // kAutoSpinBudget enables the per-lock adaptive budget (seeded from the
  // calibrated context-switch round trip); any other value pins the budget.
  std::uint32_t spin_budget = kAutoSpinBudget;
  // Anticipatory warmup (paper §5.1, optional): when handing off, also
  // unpark the waiter *behind* the successor so that by the time it is
  // granted it is spinning rather than blocked in the kernel. Increases the
  // odds that direct handoff lands on a runnable thread, at the cost of one
  // (possibly kernel-entering) unpark inside the critical section.
  // Complementary to PrepareHandover(), which warms the *current* heir from
  // the owner's critical-section tail.
  bool anticipatory_warmup = false;
};

template <typename WaitPolicy>
class McscrLock {
 public:
  McscrLock() : spin_budget_(kAutoSpinBudget) {}
  explicit McscrLock(const McscrOptions& opts)
      : opts_(opts), spin_budget_(opts.spin_budget) {}
  McscrLock(const McscrLock&) = delete;
  McscrLock& operator=(const McscrLock&) = delete;

  void lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      WaitPolicy::Await(me->status, kWaiting, self.parker, spin_budget_);
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
  }

  bool try_lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* expected = nullptr;
    if (tail_.compare_exchange_strong(expected, me, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      owner_ = me;
      if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
        recorder->Record(self.id);
      }
      return true;
    }
    ReleaseQNode(me);
    return false;
  }

  // Timed acquisition. The waiter may be on the main chain *or* culled to
  // the passive list when the deadline fires; the cancel CAS (kWaiting ->
  // kCancelled) works identically in both places — the node becomes a
  // tombstone wherever it sits, and owner-side walks (chain grant, cull,
  // PS pops, the per-unlock purge) skip and reclaim it. A failed cancel
  // means a granter committed (kGranted) or pinned us for grafting
  // (kClaimed, commit imminent): the lock is ours.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline) {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      if (!WaitPolicy::AwaitUntil(me->status, kWaiting, self.parker, deadline, spin_budget_)) {
        MALTHUS_FAILPOINT("mcscr.cancel");
        std::uint32_t expected = kWaiting;
        if (me->status.compare_exchange_strong(expected, kCancelled, std::memory_order_release,
                                               std::memory_order_acquire)) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          ZombieQNode(me);
          return false;
        }
      }
      if (me->status.load(std::memory_order_acquire) != kGranted) {
        AwaitGrantCommit(me->status);
      }
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
    return true;
  }

  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  // Anticipatory handover (wake-ahead, §5.2): called by the owner near the
  // end of its critical section, before unlock(). Predicts the node the
  // coming unlock() will grant — mirroring the cull walk without mutating —
  // and posts its wake permit so a parked heir overlaps its kernel wakeup
  // with the tail of the critical section. Mispredictions (a raced arrival,
  // a fairness grant winning the Bernoulli trial) leave a stale permit,
  // which only degrades that waiter to spinning.
  void PrepareHandover() {
    if constexpr (WaitPolicy::kParks) {
      QNode* me = owner_;
      QNode* heir = me->next.load(std::memory_order_acquire);
      if (heir == nullptr) {
        // Likely deficit path: unlock() would re-provision from the PS
        // head. ps_head_ is owner-protected, and we are the owner.
        if (ps_head_ != nullptr) {
          ps_head_->wake_ref().WakeAhead();
        }
        return;
      }
      // Mirror the surplus cull: intermediate nodes (those that themselves
      // have a successor, up to cull_limit) are excised, so the grant lands
      // past them. Chain nodes are pinned by their waiting threads.
      // KEEP IN SYNC with the cull loop in unlock(): if the cull policy
      // changes there, this prediction must change with it, or every
      // wake-ahead silently becomes a stale permit plus a wasted syscall.
      std::uint32_t culled = 0;
      while (culled < opts_.cull_limit) {
        QNode* after = heir->next.load(std::memory_order_acquire);
        if (after == nullptr) {
          break;
        }
        heir = after;
        ++culled;
      }
      heir->wake_ref().WakeAhead();
    }
  }

  void unlock() {
    QNode* me = owner_;

    // Sweep a bounded slice of the PS tail for cancelled waiters so
    // tombstones on a cold passive list are reclaimed even if no fairness
    // or deficit pop ever reaches them. Eldest end first: the longest-
    // waiting passives are the most likely to have blown a deadline.
    PurgeCancelledPassives();

    // Long-term fairness: occasionally cede ownership to the eldest
    // *live* passivated thread.
    if (ps_tail_ != nullptr && opts_.fairness_one_in != 0 &&
        ThreadLocalRng().BernoulliOneIn(opts_.fairness_one_in)) {
      MALTHUS_FAILPOINT("mcscr.fairness");
      if (QNode* eldest = ClaimPsTail()) {
        GraftAsSuccessor(me, eldest);
        fairness_grants_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Every passive was a tombstone; the purge above reclaimed what the
      // claim walk popped. Fall through to the normal succession.
    }

    // Chain walk, skipping cancelled husks. `node` is the current chain
    // head: our own node first, then each husk stepped over; a husk is
    // reclaimed only after our last access to it.
    QNode* node = me;
    while (true) {
      QNode* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        if (QNode* warm = ClaimPsHead()) {
          // Deficit: re-provision from the PS head to stay work conserving.
          MALTHUS_FAILPOINT("mcscr.refill");
          warm->next.store(nullptr, std::memory_order_relaxed);
          QNode* expected = node;
          if (!tail_.compare_exchange_strong(expected, warm, std::memory_order_release,
                                             std::memory_order_relaxed)) {
            // An arrival raced the swap. The pre-claim design re-passivated
            // `warm` here, but a claimed node is pinned awaiting its grant
            // (its waiter no longer parks or cancels), so it must be granted
            // now: graft it as our immediate successor ahead of the arrival.
            QNode* chain = SpinForSuccessor(node);
            warm->next.store(chain, std::memory_order_relaxed);
          }
          reprovisions_.fetch_add(1, std::memory_order_relaxed);
          GrantClaimed(warm);
          Retire(node, me);
          return;
        }
        QNode* expected = node;
        if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                          std::memory_order_relaxed)) {
          Retire(node, me);
          return;  // Lock free; work conservation holds because PS is empty.
        }
        next = SpinForSuccessor(node);
      }

      // Surplus: excise intermediate waiters (those that themselves have a
      // successor) into the PS; reclaim cancelled intermediates instead of
      // passivating corpses. The chain tail always stays.
      std::uint32_t culled = 0;
      while (culled < opts_.cull_limit) {
        QNode* after = next->next.load(std::memory_order_acquire);
        if (after == nullptr) {
          break;
        }
        if (next->status.load(std::memory_order_acquire) == kCancelled) {
          // kCancelled is terminal on the waiter side, so the plain load
          // suffices; the release store hands the husk back to its owner.
          cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
          next->status.store(kReclaimed, std::memory_order_release);
        } else {
          MALTHUS_FAILPOINT("mcscr.cull");
          PsPushHead(next);
          culls_.fetch_add(1, std::memory_order_relaxed);
          ++culled;
        }
        next = after;
      }
      if (opts_.anticipatory_warmup && WaitPolicy::kParks) {
        // The chain pins `heir` (its thread is waiting), so the validated
        // poke lands on the right tenancy; a stale permit is benign if it
        // gets culled instead.
        QNode* heir = next->next.load(std::memory_order_acquire);
        if (heir != nullptr) {
          // Plain Unpark, not WakeAhead: warmups_ is this feature's own
          // instrument, and the wake-ahead counters should only tick for
          // callers that opted into PrepareHandover().
          heir->wake_ref().Unpark();
          warmups_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Chaos: widen the grant-vs-cancel window before committing.
      MALTHUS_FAILPOINT("mcscr.grant");
      // Pre-read the generation-validated wake channel; speculative owner_
      // store is dead unless the CAS commits (only the granted thread reads
      // owner_).
      const ParkerRef wake = next->wake_ref();
      owner_ = next;
      std::uint32_t expected = kWaiting;
      if (next->status.compare_exchange_strong(expected, kGranted, std::memory_order_release,
                                               std::memory_order_relaxed)) {
        WaitPolicy::Wake(wake);
        Retire(node, me);
        return;
      }
      // The chain tail cancelled underneath us: step over the husk.
      cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
      Retire(node, me);
      node = next;
    }
  }

  // Safe to call while other threads are locking (tests attach recorders
  // mid-run to skip warmup); hence the atomic pointer.
  void set_recorder(AdmissionLog* recorder) {
    recorder_.store(recorder, std::memory_order_relaxed);
  }
  void set_options(const McscrOptions& opts) {
    opts_ = opts;
    spin_budget_.Reset(opts.spin_budget);
  }
  const McscrOptions& options() const { return opts_; }
  AdaptiveSpinBudget& spin_budget() { return spin_budget_; }

  // Instrumentation. ps_size is exact only while the lock is quiescent.
  std::uint64_t culls() const { return culls_.load(std::memory_order_relaxed); }
  std::uint64_t reprovisions() const { return reprovisions_.load(std::memory_order_relaxed); }
  std::uint64_t fairness_grants() const {
    return fairness_grants_.load(std::memory_order_relaxed);
  }
  std::uint64_t warmups() const { return warmups_.load(std::memory_order_relaxed); }
  std::size_t passive_set_size() const { return ps_size_.load(std::memory_order_relaxed); }
  // Acquisitions that timed out and self-removed.
  std::uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  // Cancelled nodes reclaimed by owner-side walks (chain skip, cull sweep,
  // PS pops, purge).
  std::uint64_t cancelled_reclaims() const {
    return cancelled_reclaims_.load(std::memory_order_relaxed);
  }

 private:
  // Commits the grant to a node pinned by a prior kWaiting -> kClaimed CAS
  // (graft/refill paths, which must link the node before granting; the pin
  // keeps the waiter from cancelling mid-splice). The plain release store
  // is safe precisely because the node is claimed.
  void GrantClaimed(QNode* next) {
    // Pre-read: the waiter may recycle its node the moment it observes the
    // grant flag.
    const ParkerRef wake = next->wake_ref();
    owner_ = next;
    // Release pairs with the waiter's acquire load of its status: it
    // transfers the critical section, the owner_ handoff above, and all
    // owner-protected passive-list mutations this unlock performed. The
    // subsequent Wake() needs no ordering of its own — a permit is only a
    // hint and the waiter re-checks the flag.
    next->status.store(kGranted, std::memory_order_release);
    WaitPolicy::Wake(wake);
  }

  // Disposes the finished chain head: our own node back to the pool, a
  // stepped-over husk to its owner via the kReclaimed release store.
  static void Retire(QNode* node, QNode* me) {
    if (node == me) {
      ReleaseQNode(node);
    } else {
      node->status.store(kReclaimed, std::memory_order_release);
    }
  }

  // Grafts a *claimed* `node` into the chain as the owner's immediate
  // successor and passes it the lock, handling the empty-chain race with
  // arrivals.
  void GraftAsSuccessor(QNode* me, QNode* node) {
    QNode* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      node->next.store(nullptr, std::memory_order_relaxed);
      QNode* expected = me;
      if (tail_.compare_exchange_strong(expected, node, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        GrantClaimed(node);
        ReleaseQNode(me);
        return;
      }
      next = SpinForSuccessor(me);
    }
    node->next.store(next, std::memory_order_relaxed);
    GrantClaimed(node);
    ReleaseQNode(me);
  }

  // Passive list helpers. Owner-protected: called only while holding the
  // lock, so plain fields suffice; happens-before across owners rides the
  // grant flag's release/acquire edge (or the tail CAS for the free path).
  void PsPushHead(QNode* n) {
    n->list_prev = nullptr;
    n->list_next = ps_head_;
    if (ps_head_ != nullptr) {
      ps_head_->list_prev = n;
    } else {
      ps_tail_ = n;
    }
    ps_head_ = n;
    ps_size_.fetch_add(1, std::memory_order_relaxed);
  }

  QNode* PsPopHead() {
    QNode* n = ps_head_;
    ps_head_ = n->list_next;
    if (ps_head_ != nullptr) {
      ps_head_->list_prev = nullptr;
    } else {
      ps_tail_ = nullptr;
    }
    ps_size_.fetch_sub(1, std::memory_order_relaxed);
    return n;
  }

  QNode* PsPopTail() {
    QNode* n = ps_tail_;
    ps_tail_ = n->list_prev;
    if (ps_tail_ != nullptr) {
      ps_tail_->list_next = nullptr;
    } else {
      ps_head_ = nullptr;
    }
    ps_size_.fetch_sub(1, std::memory_order_relaxed);
    return n;
  }

  void PsUnlink(QNode* n) {
    if (n->list_prev != nullptr) {
      n->list_prev->list_next = n->list_next;
    } else {
      ps_head_ = n->list_next;
    }
    if (n->list_next != nullptr) {
      n->list_next->list_prev = n->list_prev;
    } else {
      ps_tail_ = n->list_prev;
    }
    ps_size_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Pops PS entries until one survives the kWaiting -> kClaimed pin (the
  // caller must then grant it); cancelled entries are reclaimed in passing.
  // Returns nullptr when the PS holds only tombstones (now drained).
  QNode* ClaimPs(bool from_tail) {
    while ((from_tail ? ps_tail_ : ps_head_) != nullptr) {
      QNode* n = from_tail ? PsPopTail() : PsPopHead();
      // Generation tripwire: a node whose stamping thread has detached can
      // only be a tombstone (a live waiter pins its ThreadCtx until its
      // wait resolves — the cancel CAS happens-before the detach), so skip
      // the kClaimed pin entirely rather than risk pinning a husk whose
      // owner can never be woken.
      if (!n->OwnerCurrent()) {
        cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
        n->status.store(kReclaimed, std::memory_order_release);
        continue;
      }
      std::uint32_t expected = kWaiting;
      // Failure acquire pairs with the waiter's release cancel; nothing the
      // claim itself publishes is read before GrantClaimed's release store.
      if (n->status.compare_exchange_strong(expected, kClaimed, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        return n;
      }
      cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
      n->status.store(kReclaimed, std::memory_order_release);
    }
    return nullptr;
  }
  QNode* ClaimPsHead() { return ClaimPs(/*from_tail=*/false); }
  QNode* ClaimPsTail() { return ClaimPs(/*from_tail=*/true); }

  // Bounded eldest-first sweep reclaiming cancelled passives in place, so
  // tombstones cannot accumulate on a PS that fairness/deficit pops rarely
  // reach. Owner-protected, like every PS mutation.
  void PurgeCancelledPassives() {
    std::uint32_t scanned = 0;
    QNode* n = ps_tail_;
    while (n != nullptr && scanned < kPurgeScanLimit) {
      QNode* prev = n->list_prev;
      if (n->status.load(std::memory_order_acquire) == kCancelled) {
        MALTHUS_FAILPOINT("mcscr.purge");
        PsUnlink(n);
        cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
        n->status.store(kReclaimed, std::memory_order_release);
      }
      n = prev;
      ++scanned;
    }
  }

  // PS entries examined per unlock by PurgeCancelledPassives. Small: the
  // purge is an amortized garbage sweep, not a latency-critical path.
  static constexpr std::uint32_t kPurgeScanLimit = 4;

  std::atomic<QNode*> tail_{nullptr};
  QNode* owner_ = nullptr;
  QNode* ps_head_ = nullptr;
  QNode* ps_tail_ = nullptr;
  std::atomic<std::size_t> ps_size_{0};
  std::atomic<std::uint64_t> culls_{0};
  std::atomic<std::uint64_t> reprovisions_{0};
  std::atomic<std::uint64_t> fairness_grants_{0};
  std::atomic<std::uint64_t> warmups_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> cancelled_reclaims_{0};
  std::atomic<AdmissionLog*> recorder_{nullptr};
  McscrOptions opts_;
  AdaptiveSpinBudget spin_budget_;
};

using McscrSpinLock = McscrLock<YieldingSpinPolicy>;  // MCSCR-S (yield-aware spin)
using McscrStpLock = McscrLock<SpinThenParkPolicy>;   // MCSCR-STP

// The library's recommended default lock: MCSCR with spin-then-park waiting.
using MalthusianMutex = McscrStpLock;

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_MCSCR_H_
