#include "src/core/cr_semaphore.h"

#include "src/chaos/failpoint.h"
#include "src/waiting/policy.h"

namespace malthus {

void CrSemaphore::Wait() {
  ThreadCtx& self = Self();
  Waiter w;
  w.wake = SelfWakeRef(self);

  Guard();
  if (count_ > 0) {
    --count_;
    Unguard();
    return;
  }
  const bool append = ThreadLocalRng().BernoulliP(opts_.append_probability);
  w.queued = true;
  if (head_ == nullptr) {
    head_ = tail_ = &w;
  } else if (append) {
    w.prev = tail_;
    tail_->next = &w;
    tail_ = &w;
  } else {
    w.next = head_;
    head_->prev = &w;
    head_ = &w;
  }
  waiters_.fetch_add(1, std::memory_order_relaxed);
  Unguard();

  // Spin-then-park on our own grant word: a poster's PreparePost() hint or
  // direct handoff is then usually observed in userspace. The adaptive
  // budget tracks this semaphore's real handoff latency.
  SpinThenParkPolicy::Await(w.state, kQueued, self.parker, spin_budget_);
  // The permit was handed to us directly by a poster; nothing to consume.
}

bool CrSemaphore::TryWaitUntil(std::chrono::steady_clock::time_point deadline) {
  ThreadCtx& self = Self();
  Waiter w;
  w.wake = SelfWakeRef(self);

  Guard();
  if (count_ > 0) {
    --count_;
    Unguard();
    return true;
  }
  if (std::chrono::steady_clock::now() >= deadline) {
    Unguard();  // Deadline already passed: degenerate to TryWait().
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool append = ThreadLocalRng().BernoulliP(opts_.append_probability);
  w.queued = true;
  if (head_ == nullptr) {
    head_ = tail_ = &w;
  } else if (append) {
    w.prev = tail_;
    tail_->next = &w;
    tail_ = &w;
  } else {
    w.next = head_;
    head_->prev = &w;
    head_ = &w;
  }
  waiters_.fetch_add(1, std::memory_order_relaxed);
  Unguard();

  if (SpinThenParkPolicy::AwaitUntil(w.state, kQueued, self.parker, deadline, spin_budget_)) {
    return true;  // Granted a permit directly.
  }

  // Deadline passed. Re-take the guard to arbitrate against posters.
  // Chaos: widen the timeout-vs-pop window.
  MALTHUS_FAILPOINT("sem.cancel");
  Guard();
  if (w.queued) {
    Unlink(&w);
    Unguard();
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Unguard();
  // A poster already popped us: the permit is committed and its grant store
  // is imminent (Post writes w.state outside the guard). Wait for it — the
  // permit would otherwise be lost — then report success despite the
  // deadline. The poster's Unpark may leave a stale permit on our parker,
  // which at worst costs one later spin-and-repark round.
  while (w.state.load(std::memory_order_acquire) == kQueued) {
    CpuRelax();
  }
  return true;
}

bool CrSemaphore::TryWait() {
  Guard();
  if (count_ > 0) {
    --count_;
    Unguard();
    return true;
  }
  Unguard();
  return false;
}

void CrSemaphore::Post() {
  Guard();
  Waiter* w = head_;
  if (w != nullptr) {
    head_ = w->next;
    if (head_ != nullptr) {
      head_->prev = nullptr;
    } else {
      tail_ = nullptr;
    }
    w->queued = false;  // Commits the permit: a timed waiter may no longer cancel.
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    ++count_;
  }
  Unguard();
  if (w != nullptr) {
    // Chaos: delay between the pop (permit committed) and the grant store —
    // the window a timed-out waiter must bridge by spinning.
    MALTHUS_FAILPOINT("sem.post");
    // w's frame may die once state is stored, and the waiter's thread may
    // even exit before the Unpark below fires; the copied ParkerRef keeps
    // the wake generation-validated.
    const ParkerRef wake = w->wake;
    // Release pairs with the waiter's acquire load of w->state: the permit
    // handoff (and any state the poster published before Post) becomes
    // visible before the waiter returns from Wait().
    w->state.store(kGrantedPermit, std::memory_order_release);
    wake.Unpark();
  }
}

void CrSemaphore::PreparePost() {
  // The hint is posted while holding the guard: a queued waiter can only be
  // granted (and its thread only exit) through Post(), which also needs the
  // guard, so the head waiter is pinned under us. The cost is at most one
  // futex syscall inside the guard — acceptable for a hint that exists to
  // move that same syscall off the Post() path.
  Guard();
  if (head_ != nullptr) {
    head_->wake.WakeAhead();
  }
  Unguard();
}

std::int64_t CrSemaphore::Count() const {
  Guard();
  const std::int64_t c = count_;
  Unguard();
  return c;
}

}  // namespace malthus
