#include "src/core/cr_semaphore.h"

namespace malthus {

void CrSemaphore::Wait() {
  ThreadCtx& self = Self();
  Waiter w;
  w.parker = &self.parker;

  Guard();
  if (count_ > 0) {
    --count_;
    Unguard();
    return;
  }
  const bool append = ThreadLocalRng().BernoulliP(opts_.append_probability);
  if (head_ == nullptr) {
    head_ = tail_ = &w;
  } else if (append) {
    w.prev = tail_;
    tail_->next = &w;
    tail_ = &w;
  } else {
    w.next = head_;
    head_->prev = &w;
    head_ = &w;
  }
  waiters_.fetch_add(1, std::memory_order_relaxed);
  Unguard();

  while (w.state.load(std::memory_order_acquire) == kQueued) {
    self.parker.Park();
  }
  // The permit was handed to us directly by a poster; nothing to consume.
}

bool CrSemaphore::TryWait() {
  Guard();
  if (count_ > 0) {
    --count_;
    Unguard();
    return true;
  }
  Unguard();
  return false;
}

void CrSemaphore::Post() {
  Guard();
  Waiter* w = head_;
  if (w != nullptr) {
    head_ = w->next;
    if (head_ != nullptr) {
      head_->prev = nullptr;
    } else {
      tail_ = nullptr;
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    ++count_;
  }
  Unguard();
  if (w != nullptr) {
    Parker* parker = w->parker;  // w's frame may die once state is stored.
    w->state.store(kGrantedPermit, std::memory_order_release);
    parker->Unpark();
  }
}

std::int64_t CrSemaphore::Count() const {
  Guard();
  const std::int64_t c = count_;
  Unguard();
  return c;
}

}  // namespace malthus
