#include "src/core/loiter.h"

#include <algorithm>

#include "src/chaos/failpoint.h"
#include "src/platform/cpu.h"
#include "src/waiting/policy.h"

namespace malthus {

bool LoiterLock::FastPathSpin() {
  if (opts_.max_fast_spinners != 0 &&
      fast_spinners_.load(std::memory_order_relaxed) >= opts_.max_fast_spinners) {
    return false;  // Spinner population already saturated; self-restrict.
  }
  fast_spinners_.fetch_add(1, std::memory_order_relaxed);
  ExponentialBackoff backoff(16, 2048);
  XorShift64& rng = ThreadLocalRng();
  std::uint32_t cas_failures = 0;
  bool acquired = false;
  for (std::uint32_t i = 0; i < opts_.fast_spin_attempts; ++i) {
    if (outer_.load(std::memory_order_relaxed) == kOuterFree) {
      if (outer_.exchange(kOuterHeld, std::memory_order_acquire) == kOuterFree) {
        acquired = true;
        break;
      }
      // Lost the race at the moment of transfer: high flux over the lock.
      if (opts_.self_cull_cas_failures != 0 && ++cas_failures >= opts_.self_cull_cas_failures) {
        break;  // Self-cull: the ACS is saturated without us.
      }
    }
    backoff.Pause(rng);
  }
  fast_spinners_.fetch_sub(1, std::memory_order_relaxed);
  return acquired;
}

void LoiterLock::lock() {
  ThreadCtx& self = Self();
  if (FastPathSpin()) {
    owner_via_slow_ = false;
    fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    if (recorder_ != nullptr) {
      recorder_->Record(self.id);
    }
    return;
  }

  // Slow path: queue on the inner MCS lock; its holder is the standby.
  inner_.lock();
  // Reset the grant word before publishing: a resigned predecessor leaves it
  // at kGrantCancelled. Publish the generation before the ctx pointer (the
  // release store) so any reader that observes us also observes our gen.
  standby_grant_.store(kGrantWaiting, std::memory_order_relaxed);
  standby_gen_.store(self.slot_gen.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  standby_.store(&self, std::memory_order_release);

  const auto start = std::chrono::steady_clock::now();
  bool impatient = false;
  while (true) {
    if (TryOuter()) {
      break;
    }
    if (standby_grant_.load(std::memory_order_acquire) == kGrantGranted) {
      break;  // Direct handoff: the outer lock was never released.
    }
    if (!impatient && std::chrono::steady_clock::now() - start >= opts_.patience) {
      impatient = true;
      handoff_requested_.store(1, std::memory_order_release);
    }
    // Brief polite spin, then a timed park. The timed park bounds the cost
    // of any wake we lost to the deferred-unpark optimization.
    for (std::uint32_t i = 0; i < 256; ++i) {
      if (outer_.load(std::memory_order_relaxed) == kOuterFree ||
          standby_grant_.load(std::memory_order_relaxed) != kGrantWaiting) {
        break;
      }
      CpuRelax();
    }
    if (outer_.load(std::memory_order_relaxed) != kOuterFree &&
        standby_grant_.load(std::memory_order_relaxed) == kGrantWaiting) {
      if (self.parker.ParkFor(opts_.standby_park_slice)) {
        // A permit was consumed: the owner's wake-ahead hint (or the grant's
        // own unpark racing us). Re-spin (shared pacing with the other
        // parking waiters — see PostWakeRespin) so the coming release or
        // grant word is observed in userspace and the granter's unpark
        // collapses into a syscall-free permit post instead of a futex wake.
        PostWakeRespin(kMinPostWakeSpin, [&] {
          return outer_.load(std::memory_order_relaxed) == kOuterFree ||
                 standby_grant_.load(std::memory_order_relaxed) != 0;
        });
      }
    }
  }

  // We own the outer lock. Retire the standby role; we keep holding the
  // inner lock until our unlock so no new standby can race us.
  standby_.store(nullptr, std::memory_order_relaxed);
  standby_grant_.store(kGrantWaiting, std::memory_order_relaxed);
  handoff_requested_.store(0, std::memory_order_release);
  owner_via_slow_ = true;
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  if (recorder_ != nullptr) {
    recorder_->Record(self.id);
  }
}

bool LoiterLock::TryLockUntil(std::chrono::steady_clock::time_point deadline) {
  ThreadCtx& self = Self();
  if (FastPathSpin()) {
    owner_via_slow_ = false;
    fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    if (recorder_ != nullptr) {
      recorder_->Record(self.id);
    }
    return true;
  }

  // Slow path: bound the inner queue wait first (full MCS cancellation
  // protocol). An inner timeout means we never became standby.
  if (!inner_.TryLockUntil(deadline)) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  standby_grant_.store(kGrantWaiting, std::memory_order_relaxed);
  standby_gen_.store(self.slot_gen.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  standby_.store(&self, std::memory_order_release);

  const auto start = std::chrono::steady_clock::now();
  bool impatient = false;
  while (true) {
    if (TryOuter()) {
      break;
    }
    if (standby_grant_.load(std::memory_order_acquire) == kGrantGranted) {
      break;  // Direct handoff: the outer lock was never released.
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // Chaos: widen the resign-vs-handoff window.
      MALTHUS_FAILPOINT("loiter.cancel");
      std::uint32_t expected = kGrantWaiting;
      if (!standby_grant_.compare_exchange_strong(expected, kGrantCancelled,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        // kGrantGranted: a direct handoff beat our resignation — we own the
        // outer lock despite the deadline. Take the win.
        break;
      }
      // Resigned. Unpublish ourselves, then pass the standby role on; both
      // stores must precede inner_.unlock() so the next standby's publish
      // is never overwritten. An unlocker that already built our wake ref
      // may still post a stale permit (our generation is still current
      // while we live) — the next standby's timed park absorbs the
      // at-most-one-round penalty.
      standby_.store(nullptr, std::memory_order_release);
      handoff_requested_.store(0, std::memory_order_release);
      inner_.unlock();
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!impatient && now - start >= opts_.patience) {
      impatient = true;
      handoff_requested_.store(1, std::memory_order_release);
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      if (outer_.load(std::memory_order_relaxed) == kOuterFree ||
          standby_grant_.load(std::memory_order_relaxed) != kGrantWaiting) {
        break;
      }
      CpuRelax();
    }
    if (outer_.load(std::memory_order_relaxed) != kOuterFree &&
        standby_grant_.load(std::memory_order_relaxed) == kGrantWaiting) {
      const auto remaining = deadline - std::chrono::steady_clock::now();
      if (remaining <= std::chrono::nanoseconds::zero()) {
        continue;  // Loop back to the deadline check.
      }
      const auto slice = std::min<std::chrono::nanoseconds>(
          opts_.standby_park_slice,
          std::chrono::duration_cast<std::chrono::nanoseconds>(remaining));
      if (self.parker.ParkFor(slice)) {
        PostWakeRespin(kMinPostWakeSpin, [&] {
          return outer_.load(std::memory_order_relaxed) == kOuterFree ||
                 standby_grant_.load(std::memory_order_relaxed) != kGrantWaiting;
        });
      }
    }
  }

  // We own the outer lock (taken, granted, or won against our own
  // resignation). Retire the standby role exactly as lock() does.
  standby_.store(nullptr, std::memory_order_relaxed);
  standby_grant_.store(kGrantWaiting, std::memory_order_relaxed);
  handoff_requested_.store(0, std::memory_order_release);
  owner_via_slow_ = true;
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  if (recorder_ != nullptr) {
    recorder_->Record(self.id);
  }
  return true;
}

bool LoiterLock::try_lock() {
  if (TryOuter()) {
    owner_via_slow_ = false;
    fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    if (recorder_ != nullptr) {
      recorder_->Record(Self().id);
    }
    return true;
  }
  return false;
}

void LoiterLock::PrepareHandover() {
  // Owner-only, like unlock(). The prediction mirrors unlock() read-only:
  // the sole parked thread this lock ever wakes directly is the standby, so
  // a fast-path owner hints it; a slow-path owner (which retired the
  // standby role and still holds the inner lock, so no new standby can
  // exist yet) instead pre-wakes the inner MCS successor its inner_.unlock()
  // is about to promote to standby.
  ThreadCtx* standby = standby_.load(std::memory_order_acquire);
  if (standby != nullptr) {
    // Generation-validated: if the standby resigned and its thread exited
    // (recycling the ThreadCtx slot) between our load and the hint, the
    // ParkerRef check turns the WakeAhead into a no-op instead of a poke
    // at a recycled parker.
    ParkerRef(standby, standby_gen_.load(std::memory_order_relaxed)).WakeAhead();
    return;
  }
  if (owner_via_slow_) {
    inner_.PrepareHandover();
  }
}

void LoiterLock::unlock() {
  const bool via_slow = owner_via_slow_;

  ThreadCtx* standby = standby_.load(std::memory_order_acquire);
  bool handed_off = false;
  if (standby != nullptr && handoff_requested_.load(std::memory_order_acquire) != 0) {
    // Anti-starvation direct handoff: the outer lock stays held; ownership
    // transfers to the standby via the grant word. The CAS arbitrates
    // against a timed standby resigning at its deadline: if it already
    // CASed kGrantWaiting -> kGrantCancelled we fall back to the normal
    // release path. (If the standby resigned and a successor republished
    // between our pointer read and the CAS, the grant lands on the new
    // standby while the unpark may target the old one — a stale ref whose
    // generation check suppresses the wake once that thread exits; the new
    // standby recovers through its timed park within one slice.)
    MALTHUS_FAILPOINT("loiter.handoff");
    const ParkerRef wake(standby, standby_gen_.load(std::memory_order_relaxed));
    std::uint32_t expected = kGrantWaiting;
    if (standby_grant_.compare_exchange_strong(expected, kGrantGranted,
                                               std::memory_order_release,
                                               std::memory_order_acquire)) {
      direct_handoffs_.fetch_add(1, std::memory_order_relaxed);
      wake.Unpark();
      handed_off = true;
    }
  }
  if (!handed_off) {
    outer_.store(kOuterFree, std::memory_order_release);
    standby = standby_.load(std::memory_order_acquire);
    if (standby != nullptr) {
      const ParkerRef wake(standby, standby_gen_.load(std::memory_order_relaxed));
      bool skip_unpark = false;
      if (opts_.deferred_unpark) {
        // Defer briefly: a barging fast-path thread may take the lock, in
        // which case succession is delegated to it and the standby can stay
        // parked (it recovers via its timed park in the worst case).
        for (int i = 0; i < 64; ++i) {
          CpuRelax();
        }
        if (outer_.load(std::memory_order_acquire) != kOuterFree) {
          avoided_unparks_.fetch_add(1, std::memory_order_relaxed);
          skip_unpark = true;
        }
      }
      if (!skip_unpark) {
        wake.Unpark();
      }
    }
  }

  if (via_slow) {
    // Pass the standby role to the next slow-path waiter.
    inner_.unlock();
  }
}

}  // namespace malthus
