// LOITER — "Locking: Outer-Inner with ThRottling" (paper §A.1).
//
// A composite lock: an outer test-and-set lock taken by a bounded
// randomized-backoff *global* spin phase (the fast path, competitive
// succession / barging), backed by an inner MCS lock (the slow path, direct
// handoff). The thread holding the inner lock is the unique *standby*
// thread; it alone contends with fast-path arrivals for the outer lock,
// using spin-then-park waiting.
//
// The ACS is the set of threads circulating over the outer lock (owner +
// NCS-circulating + fast-path spinners); the PS is the set queued on the
// inner MCS lock. The standby thread sits on the cusp.
//
// Anti-starvation: a standby that has waited longer than `patience` sets
// handoff_requested_; the next unlock then *directly hands off* the outer
// lock (leaving it held and granting the standby), hybridizing competitive
// and direct succession.
//
// Optimizations from the paper, all on by default and individually
// switchable for the ablation benches:
//   * bounded count of concurrent fast-path spinners (excess arrivals
//     self-cull straight to the slow path);
//   * self-culling when the atomic fails too often (high flux over the
//     lock means the ACS is already saturated);
//   * deferred unpark: after releasing the outer lock, re-check whether
//     some barging thread has already taken it — if so the wake of the
//     standby can be avoided entirely (succession is delegated).
// The standby's park is timed, so a deferred-away wake can never strand it.
//
// Wake-ahead (PrepareHandover, docs/handover.md): owners can post the
// predicted heir's wake permit from the critical-section tail, so the
// standby's kernel wakeup overlaps the remaining hold and the grant itself
// is a syscall-free permit post. After any consumed permit the standby
// re-spins (politely, with bounded yields) before re-parking, which is what
// turns a hint into a userspace-observed grant.
#ifndef MALTHUS_SRC_CORE_LOITER_H_
#define MALTHUS_SRC_CORE_LOITER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/locks/mcs.h"
#include "src/metrics/admission_log.h"
#include "src/platform/align.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"
#include "src/waiting/backoff.h"

namespace malthus {

struct LoiterOptions {
  std::uint32_t fast_spin_attempts = 64;   // backoff-paced tries on the outer lock
  std::uint32_t max_fast_spinners = 8;     // 0 = uncapped
  std::uint32_t self_cull_cas_failures = 16;  // 0 = disabled
  bool deferred_unpark = true;
  std::chrono::nanoseconds patience = std::chrono::milliseconds(2);
  std::chrono::nanoseconds standby_park_slice = std::chrono::microseconds(500);
};

class LoiterLock {
 public:
  LoiterLock() = default;
  explicit LoiterLock(const LoiterOptions& opts) : opts_(opts) {}
  LoiterLock(const LoiterLock&) = delete;
  LoiterLock& operator=(const LoiterLock&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  // Timed acquisition. The fast path is unchanged; the slow path first
  // bounds the inner MCS wait (inner_.TryLockUntil — the full cancellation
  // protocol there), then runs the standby loop against the deadline. A
  // timed-out standby resigns via a CAS on the grant word (kGrantWaiting ->
  // kGrantCancelled): an unlocker's direct handoff CASes kGrantWaiting ->
  // kGrantGranted, so exactly one side wins — a standby that loses the
  // resignation race owns the outer lock and returns true despite the
  // deadline. After resigning, the ex-standby passes the standby role on
  // with inner_.unlock() so slow-path waiters are never stranded.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline);
  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  // Anticipatory handover (wake-ahead, §5.2): called by the owner near the
  // end of its critical section, before unlock(). Predicts the heir the
  // coming unlock() will wake, read-only, and posts its wake permit so a
  // parked heir overlaps its kernel wakeup with the critical-section tail:
  //   * fast-path owner — the heir is the standby (the only thread this
  //     lock ever parks); its ParkFor() consumes the permit and re-spins,
  //     so both the direct-handoff grant and the release-then-unpark path
  //     collapse into syscall-free permit posts;
  //   * slow-path owner (the retired standby, still holding the inner MCS
  //     lock) — the heir is the inner lock's successor, which unlock()
  //     promotes to standby via inner_.unlock(); delegate to the MCS
  //     wake-ahead so the successor is runnable by the time it is granted.
  // Mispredictions (a barging arrival takes the outer lock first, the
  // deferred-unpark window delegates succession) leave a stale permit,
  // which only degrades the standby to one spin-and-repark round.
  void PrepareHandover();

  void set_recorder(AdmissionLog* recorder) { recorder_ = recorder; }
  void set_options(const LoiterOptions& opts) { opts_ = opts; }

  std::uint64_t fast_acquires() const { return fast_acquires_.load(std::memory_order_relaxed); }
  std::uint64_t slow_acquires() const { return slow_acquires_.load(std::memory_order_relaxed); }
  std::uint64_t direct_handoffs() const {
    return direct_handoffs_.load(std::memory_order_relaxed);
  }
  std::uint64_t avoided_unparks() const {
    return avoided_unparks_.load(std::memory_order_relaxed);
  }
  // Timed acquisitions that gave up at their deadline.
  std::uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::uint32_t kOuterFree = 0;
  static constexpr std::uint32_t kOuterHeld = 1;

  // standby_grant_ protocol. kGrantWaiting while the standby contends; a
  // direct handoff CASes to kGrantGranted, a resigning (timed-out) standby
  // CASes to kGrantCancelled — one CAS wins, arbitrating grant vs. timeout.
  // The next standby resets the word to kGrantWaiting before publishing
  // itself (it cannot race the previous one: the inner lock serializes).
  static constexpr std::uint32_t kGrantWaiting = 0;
  static constexpr std::uint32_t kGrantGranted = 1;
  static constexpr std::uint32_t kGrantCancelled = 2;

  bool TryOuter() {
    return outer_.load(std::memory_order_relaxed) == kOuterFree &&
           outer_.exchange(kOuterHeld, std::memory_order_acquire) == kOuterFree;
  }

  // Fast path: bounded global spinning with randomized backoff. Returns
  // true on acquisition.
  bool FastPathSpin();

  alignas(kCacheLineSize) std::atomic<std::uint32_t> outer_{kOuterFree};
  McsStpLock inner_;
  // The standby's wake channel & the direct-handoff grant word. Only one
  // standby exists at a time (it holds the inner lock). The channel is a
  // generation-stamped {ThreadCtx*, gen} pair published as two atomics
  // (gen first, relaxed; ctx second, release — readers acquire-load ctx
  // and then read gen). A reader pairing a new ctx with a torn gen can at
  // worst build a ParkerRef whose validation fails, i.e. a suppressed
  // wake; the standby's timed park self-heals within one slice.
  std::atomic<ThreadCtx*> standby_{nullptr};
  std::atomic<std::uint64_t> standby_gen_{0};
  std::atomic<std::uint32_t> standby_grant_{0};
  std::atomic<std::uint32_t> handoff_requested_{0};
  std::atomic<std::uint32_t> fast_spinners_{0};
  // True iff the current owner arrived via the slow path (i.e. is the
  // standby and still holds the inner lock). Owner-protected.
  bool owner_via_slow_ = false;

  std::atomic<std::uint64_t> fast_acquires_{0};
  std::atomic<std::uint64_t> slow_acquires_{0};
  std::atomic<std::uint64_t> direct_handoffs_{0};
  std::atomic<std::uint64_t> avoided_unparks_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  AdmissionLog* recorder_ = nullptr;
  LoiterOptions opts_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_LOITER_H_
