#include "src/core/cr_condvar.h"

namespace malthus {

void CrCondVar::Enqueue(Waiter* w) {
  const bool append = ThreadLocalRng().BernoulliP(opts_.append_probability);
  Guard();
  w->queued = true;
  if (head_ == nullptr) {
    head_ = tail_ = w;
  } else if (append) {
    w->prev = tail_;
    tail_->next = w;
    tail_ = w;
  } else {
    w->next = head_;
    head_->prev = w;
    head_ = w;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  Unguard();
}

void CrCondVar::Signal() {
  Guard();
  Waiter* w = head_;
  if (w != nullptr) {
    head_ = w->next;
    if (head_ != nullptr) {
      head_->prev = nullptr;
    } else {
      tail_ = nullptr;
    }
    w->queued = false;  // Commits the signal: a timed waiter may no longer cancel.
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  Unguard();
  if (w != nullptr) {
    // Chaos: delay between the pop (signal committed) and the state store —
    // the window a timed-out waiter must bridge by spinning.
    MALTHUS_FAILPOINT("condvar.signal");
    const ParkerRef wake = w->wake;  // Read before the release of w's frame.
    w->state.store(kSignaled, std::memory_order_release);
    wake.Unpark();
  }
}

void CrCondVar::Broadcast() {
  Guard();
  Waiter* w = head_;
  head_ = tail_ = nullptr;
  // Commit every detached waiter while still under the guard: a timed
  // waiter whose deadline races the broadcast must observe !queued and spin
  // for its kSignaled store instead of "cancelling" a wait that is no
  // longer linked anywhere.
  for (Waiter* p = w; p != nullptr; p = p->next) {
    p->queued = false;
  }
  count_.store(0, std::memory_order_relaxed);
  Unguard();
  while (w != nullptr) {
    // Read next and the wake channel before the state store: the store
    // releases the waiter's frame.
    Waiter* next = w->next;
    const ParkerRef wake = w->wake;
    w->state.store(kSignaled, std::memory_order_release);
    wake.Unpark();
    w = next;
  }
}

}  // namespace malthus
