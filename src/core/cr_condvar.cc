#include "src/core/cr_condvar.h"

namespace malthus {

void CrCondVar::Enqueue(Waiter* w) {
  const bool append = ThreadLocalRng().BernoulliP(opts_.append_probability);
  Guard();
  if (head_ == nullptr) {
    head_ = tail_ = w;
  } else if (append) {
    w->prev = tail_;
    tail_->next = w;
    tail_ = w;
  } else {
    w->next = head_;
    head_->prev = w;
    head_ = w;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  Unguard();
}

void CrCondVar::Signal() {
  Guard();
  Waiter* w = head_;
  if (w != nullptr) {
    head_ = w->next;
    if (head_ != nullptr) {
      head_->prev = nullptr;
    } else {
      tail_ = nullptr;
    }
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  Unguard();
  if (w != nullptr) {
    Parker* parker = w->parker;  // Read before the release of w's frame.
    w->state.store(kSignaled, std::memory_order_release);
    parker->Unpark();
  }
}

void CrCondVar::Broadcast() {
  Guard();
  Waiter* w = head_;
  head_ = tail_ = nullptr;
  count_.store(0, std::memory_order_relaxed);
  Unguard();
  while (w != nullptr) {
    Waiter* next = w->next;
    Parker* parker = w->parker;
    w->state.store(kSignaled, std::memory_order_release);
    parker->Unpark();
    w = next;
  }
}

}  // namespace malthus
