#include "src/core/topology.h"

#include "src/platform/sysinfo.h"

namespace malthus {

Topology& Topology::Instance() {
  static Topology instance;
  return instance;
}

void Topology::ConfigureSimulated(std::uint32_t node_count) {
  node_count_.store(node_count == 0 ? 1 : node_count, std::memory_order_relaxed);
  mode_.store(Mode::kSimulatedRoundRobin, std::memory_order_relaxed);
}

void Topology::ConfigureReal(std::uint32_t node_count, std::uint32_t cpus_per_node) {
  node_count_.store(node_count == 0 ? 1 : node_count, std::memory_order_relaxed);
  cpus_per_node_.store(cpus_per_node == 0 ? 1 : cpus_per_node, std::memory_order_relaxed);
  mode_.store(Mode::kRealCpu, std::memory_order_relaxed);
}

std::uint32_t Topology::NodeOf(const ThreadCtx& self) const {
  const std::uint32_t nodes = node_count_.load(std::memory_order_relaxed);
  if (self.forced_node != UINT32_MAX) {
    return self.forced_node % nodes;
  }
  if (mode_.load(std::memory_order_relaxed) == Mode::kRealCpu) {
    const int cpu = CurrentCpu();
    if (cpu >= 0) {
      return (static_cast<std::uint32_t>(cpu) / cpus_per_node_.load(std::memory_order_relaxed)) %
             nodes;
    }
  }
  return self.id % nodes;
}

}  // namespace malthus
