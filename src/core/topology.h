// NUMA topology provider for MCSCRN.
//
// The paper's MCSCRN experiments ran on a 2-socket SPARC T5-2; this
// environment is a single-node container, so the default provider
// *simulates* a multi-socket topology by assigning threads to nodes
// round-robin by dense thread id (deterministic, which the tests rely on).
// A thread can pin itself to a node via ThreadCtx::forced_node, and a
// "real" mode derives the node from sched_getcpu() for actual NUMA hosts.
// See DESIGN.md §2 (substitutions).
#ifndef MALTHUS_SRC_CORE_TOPOLOGY_H_
#define MALTHUS_SRC_CORE_TOPOLOGY_H_

#include <atomic>
#include <cstdint>

#include "src/platform/thread_registry.h"

namespace malthus {

class Topology {
 public:
  enum class Mode : std::uint8_t {
    kSimulatedRoundRobin,  // node = tid % node_count (default)
    kRealCpu,              // node = sched_getcpu() / cpus_per_node
  };

  static Topology& Instance();

  void ConfigureSimulated(std::uint32_t node_count);
  void ConfigureReal(std::uint32_t node_count, std::uint32_t cpus_per_node);

  std::uint32_t node_count() const { return node_count_.load(std::memory_order_relaxed); }

  // Node of the calling thread (honours ThreadCtx::forced_node).
  std::uint32_t NodeOf(const ThreadCtx& self) const;

 private:
  Topology() = default;

  std::atomic<Mode> mode_{Mode::kSimulatedRoundRobin};
  std::atomic<std::uint32_t> node_count_{2};
  std::atomic<std::uint32_t> cpus_per_node_{1};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_TOPOLOGY_H_
