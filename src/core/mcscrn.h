// MCSCRN — NUMA-aware concurrency restriction (paper §9.1 "Future Work").
//
// Starts from MCSCR and adds two fields: the currently preferred *home*
// node and a list of remote threads. At unlock time the owner culls from
// the chain both (a) threads running on a node other than home — into the
// remote list — and (b) same-node surplus threads — into the local passive
// list, exactly as MCSCR. A deficit re-provisions first from the local PS,
// then from the remote list (adopting that thread's node as the new home).
// Periodically (Bernoulli) the unlock operator selects a new home node from
// the remote-list tail and drains that node's threads back into the chain,
// conferring long-term fairness across nodes.
//
// Keeping the ACS node-homogeneous reduces lock migrations (grants that
// cross node boundaries) — the lock_migrations() counter quantifies it.
// Unlike cohort locks, the lock is small, fixed-size, and non-hierarchical.
#ifndef MALTHUS_SRC_CORE_MCSCRN_H_
#define MALTHUS_SRC_CORE_MCSCRN_H_

#include <atomic>
#include <cstdint>

#include "src/core/topology.h"
#include "src/locks/lock_base.h"
#include "src/metrics/admission_log.h"
#include "src/rng/xorshift.h"
#include "src/waiting/policy.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

struct McscrnOptions {
  std::uint64_t fairness_one_in = 1000;  // home-rotation Bernoulli
  std::uint32_t cull_scan_limit = 4;     // chain nodes inspected per unlock
  std::uint32_t spin_budget = kAutoSpinBudget;
};

template <typename WaitPolicy>
class McscrnLock {
 public:
  McscrnLock() : spin_budget_(kAutoSpinBudget) {}
  explicit McscrnLock(const McscrnOptions& opts)
      : opts_(opts), spin_budget_(opts.spin_budget) {}
  McscrnLock(const McscrnLock&) = delete;
  McscrnLock& operator=(const McscrnLock&) = delete;

  void lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    me->numa_node = Topology::Instance().NodeOf(self);
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      WaitPolicy::Await(me->status, kWaiting, self.parker, spin_budget_);
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
  }

  // Anticipatory handover (wake-ahead, §5.2): predicts the grantee of the
  // coming unlock() by mirroring the bounded cull scan (remote and surplus
  // nodes are excised, so the grant lands past them) and posts its wake
  // permit from the tail of the critical section. A misprediction — raced
  // arrival or a home-rotation trial firing — leaves a benign stale permit.
  void PrepareHandover() {
    if constexpr (WaitPolicy::kParks) {
      QNode* me = owner_;
      QNode* heir = me->next.load(std::memory_order_acquire);
      if (heir == nullptr) {
        // Deficit path preview: unlock() refills from the local PS first,
        // then the remote list. Both are owner-protected.
        QNode* refill = ps_head_ != nullptr ? ps_head_ : remote_head_;
        if (refill != nullptr) {
          refill->parker->WakeAhead();
        }
        return;
      }
      // KEEP IN SYNC with the cull scan in unlock(): a policy change there
      // that is not mirrored here silently turns every wake-ahead into a
      // stale permit plus a wasted syscall.
      std::uint32_t scanned = 0;
      bool local_culled = false;
      while (scanned < opts_.cull_scan_limit) {
        QNode* after = heir->next.load(std::memory_order_acquire);
        if (after == nullptr) {
          break;
        }
        if (heir->numa_node != home_node_) {
          // Would be culled to the remote list.
        } else if (!local_culled) {
          local_culled = true;  // Would be the one local surplus cull.
        } else {
          break;
        }
        heir = after;
        ++scanned;
      }
      heir->parker->WakeAhead();
    }
  }

  void unlock() {
    QNode* me = owner_;

    // Periodic home rotation: adopt the eldest remote thread's node, drain
    // its co-resident threads into the chain, and grant it the lock.
    if (remote_tail_ != nullptr && opts_.fairness_one_in != 0 &&
        ThreadLocalRng().BernoulliOneIn(opts_.fairness_one_in)) {
      RotateHomeAndGrant(me);
      return;
    }

    QNode* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      QNode* refill = nullptr;
      bool refill_is_remote = false;
      if (ps_head_ != nullptr) {
        refill = PsPop(&ps_head_, &ps_tail_, ps_head_);
      } else if (remote_head_ != nullptr) {
        refill = PsPop(&remote_head_, &remote_tail_, remote_head_);
        refill_is_remote = true;
      }
      if (refill != nullptr) {
        refill->next.store(nullptr, std::memory_order_relaxed);
        QNode* expected = me;
        if (tail_.compare_exchange_strong(expected, refill, std::memory_order_release,
                                          std::memory_order_relaxed)) {
          if (refill_is_remote) {
            home_node_ = refill->numa_node;  // Deficit adopts the refill's node.
          }
          reprovisions_.fetch_add(1, std::memory_order_relaxed);
          Grant(refill);
          ReleaseQNode(me);
          return;
        }
        // An arrival raced the swap; the thread stays passive on its
        // original list and the home node is unchanged.
        if (refill_is_remote) {
          PsPushHead(&remote_head_, &remote_tail_, refill);
        } else {
          PsPushHead(&ps_head_, &ps_tail_, refill);
        }
        next = SpinForSuccessor(me);
      } else {
        QNode* expected = me;
        if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                          std::memory_order_relaxed)) {
          ReleaseQNode(me);
          return;
        }
        next = SpinForSuccessor(me);
      }
    }

    // Scan a bounded prefix of the chain: remote threads go to the remote
    // list; same-node surplus goes to the local PS (one local cull max, as
    // in MCSCR). The chain tail is never culled.
    std::uint32_t scanned = 0;
    bool local_culled = false;
    while (scanned < opts_.cull_scan_limit) {
      QNode* after = next->next.load(std::memory_order_acquire);
      if (after == nullptr) {
        break;
      }
      if (next->numa_node != home_node_) {
        PsPushHead(&remote_head_, &remote_tail_, next);
        remote_culls_.fetch_add(1, std::memory_order_relaxed);
      } else if (!local_culled) {
        PsPushHead(&ps_head_, &ps_tail_, next);
        culls_.fetch_add(1, std::memory_order_relaxed);
        local_culled = true;
      } else {
        break;
      }
      next = after;
      ++scanned;
    }
    Grant(next);
    ReleaseQNode(me);
  }

  // Safe to call while other threads are locking (tests attach recorders
  // mid-run to skip warmup); hence the atomic pointer.
  void set_recorder(AdmissionLog* recorder) {
    recorder_.store(recorder, std::memory_order_relaxed);
  }
  void set_options(const McscrnOptions& opts) {
    opts_ = opts;
    spin_budget_.Reset(opts.spin_budget);
  }
  AdaptiveSpinBudget& spin_budget() { return spin_budget_; }

  std::uint64_t culls() const { return culls_.load(std::memory_order_relaxed); }
  std::uint64_t remote_culls() const { return remote_culls_.load(std::memory_order_relaxed); }
  std::uint64_t reprovisions() const { return reprovisions_.load(std::memory_order_relaxed); }
  std::uint64_t home_rotations() const {
    return home_rotations_.load(std::memory_order_relaxed);
  }
  std::uint64_t lock_migrations() const {
    return lock_migrations_.load(std::memory_order_relaxed);
  }
  std::uint64_t grants() const { return grants_.load(std::memory_order_relaxed); }

 private:
  void Grant(QNode* next) {
    grants_.fetch_add(1, std::memory_order_relaxed);
    if (next->numa_node != owner_->numa_node) {
      lock_migrations_.fetch_add(1, std::memory_order_relaxed);
    }
    // Pre-read: the waiter may recycle or free its node the moment it
    // observes the grant flag.
    Parker* parker = next->parker;
    owner_ = next;
    // Release pairs with the waiter's acquire in Await(); see McscrLock::
    // Grant for the full pairing rationale.
    next->status.store(kGranted, std::memory_order_release);
    WaitPolicy::Wake(*parker);
  }

  // Picks the eldest remote thread, makes its node home, drains all other
  // remote threads of that node into the chain after it, and grants it.
  void RotateHomeAndGrant(QNode* me) {
    QNode* leader = PsPop(&remote_head_, &remote_tail_, remote_tail_);
    home_node_ = leader->numa_node;
    home_rotations_.fetch_add(1, std::memory_order_relaxed);

    // Collect co-resident remote threads into a local chain segment.
    QNode* seg_head = leader;
    QNode* seg_tail = leader;
    QNode* scan = remote_tail_;
    while (scan != nullptr) {
      QNode* prev_scan = scan->list_prev;
      if (scan->numa_node == home_node_) {
        PsUnlink(&remote_head_, &remote_tail_, scan);
        seg_tail->next.store(scan, std::memory_order_relaxed);
        seg_tail = scan;
      }
      scan = prev_scan;
    }

    QNode* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      seg_tail->next.store(nullptr, std::memory_order_relaxed);
      QNode* expected = me;
      if (tail_.compare_exchange_strong(expected, seg_tail, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        Grant(seg_head);
        ReleaseQNode(me);
        return;
      }
      next = SpinForSuccessor(me);
    }
    seg_tail->next.store(next, std::memory_order_relaxed);
    Grant(seg_head);
    ReleaseQNode(me);
  }

  // Doubly-linked list helpers shared by the local PS and the remote list.
  // Owner-protected, like MCSCR's.
  static void PsPushHead(QNode** head, QNode** tail, QNode* n) {
    n->list_prev = nullptr;
    n->list_next = *head;
    if (*head != nullptr) {
      (*head)->list_prev = n;
    } else {
      *tail = n;
    }
    *head = n;
  }

  static void PsUnlink(QNode** head, QNode** tail, QNode* n) {
    if (n->list_prev != nullptr) {
      n->list_prev->list_next = n->list_next;
    } else {
      *head = n->list_next;
    }
    if (n->list_next != nullptr) {
      n->list_next->list_prev = n->list_prev;
    } else {
      *tail = n->list_prev;
    }
    n->list_prev = nullptr;
    n->list_next = nullptr;
  }

  static QNode* PsPop(QNode** head, QNode** tail, QNode* n) {
    PsUnlink(head, tail, n);
    return n;
  }

  std::atomic<QNode*> tail_{nullptr};
  QNode* owner_ = nullptr;
  QNode* ps_head_ = nullptr;
  QNode* ps_tail_ = nullptr;
  QNode* remote_head_ = nullptr;
  QNode* remote_tail_ = nullptr;
  std::uint32_t home_node_ = 0;
  std::atomic<std::uint64_t> culls_{0};
  std::atomic<std::uint64_t> remote_culls_{0};
  std::atomic<std::uint64_t> reprovisions_{0};
  std::atomic<std::uint64_t> home_rotations_{0};
  std::atomic<std::uint64_t> lock_migrations_{0};
  std::atomic<std::uint64_t> grants_{0};
  std::atomic<AdmissionLog*> recorder_{nullptr};
  McscrnOptions opts_;
  AdaptiveSpinBudget spin_budget_;
};

using McscrnSpinLock = McscrnLock<YieldingSpinPolicy>;  // MCSCRN-S (yield-aware spin)
using McscrnStpLock = McscrnLock<SpinThenParkPolicy>;

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_MCSCRN_H_
