// MCSCRN — NUMA-aware concurrency restriction (paper §9.1 "Future Work").
//
// Starts from MCSCR and adds two fields: the currently preferred *home*
// node and a list of remote threads. At unlock time the owner culls from
// the chain both (a) threads running on a node other than home — into the
// remote list — and (b) same-node surplus threads — into the local passive
// list, exactly as MCSCR. A deficit re-provisions first from the local PS,
// then from the remote list (adopting that thread's node as the new home).
// Periodically (Bernoulli) the unlock operator selects a new home node from
// the remote-list tail and drains that node's threads back into the chain,
// conferring long-term fairness across nodes.
//
// Keeping the ACS node-homogeneous reduces lock migrations (grants that
// cross node boundaries) — the lock_migrations() counter quantifies it.
// Unlike cohort locks, the lock is small, fixed-size, and non-hierarchical.
#ifndef MALTHUS_SRC_CORE_MCSCRN_H_
#define MALTHUS_SRC_CORE_MCSCRN_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/chaos/failpoint.h"
#include "src/core/topology.h"
#include "src/locks/lock_base.h"
#include "src/metrics/admission_log.h"
#include "src/rng/xorshift.h"
#include "src/waiting/policy.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

struct McscrnOptions {
  std::uint64_t fairness_one_in = 1000;  // home-rotation Bernoulli
  std::uint32_t cull_scan_limit = 4;     // chain nodes inspected per unlock
  std::uint32_t spin_budget = kAutoSpinBudget;
};

template <typename WaitPolicy>
class McscrnLock {
 public:
  McscrnLock() : spin_budget_(kAutoSpinBudget) {}
  explicit McscrnLock(const McscrnOptions& opts)
      : opts_(opts), spin_budget_(opts.spin_budget) {}
  McscrnLock(const McscrnLock&) = delete;
  McscrnLock& operator=(const McscrnLock&) = delete;

  void lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    me->numa_node = Topology::Instance().NodeOf(self);
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      WaitPolicy::Await(me->status, kWaiting, self.parker, spin_budget_);
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
  }

  bool try_lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    me->numa_node = Topology::Instance().NodeOf(self);
    QNode* expected = nullptr;
    if (tail_.compare_exchange_strong(expected, me, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      owner_ = me;
      if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
        recorder->Record(self.id);
      }
      return true;
    }
    ReleaseQNode(me);
    return false;
  }

  // Timed acquisition. Identical protocol to MCSCR's: the waiter may sit on
  // the chain, the local PS, or the remote list when the deadline fires;
  // the kWaiting -> kCancelled tombstone CAS covers all three, and every
  // owner-side walk skips and reclaims husks.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline) {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    me->numa_node = Topology::Instance().NodeOf(self);
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      if (!WaitPolicy::AwaitUntil(me->status, kWaiting, self.parker, deadline, spin_budget_)) {
        MALTHUS_FAILPOINT("mcscrn.cancel");
        std::uint32_t expected = kWaiting;
        if (me->status.compare_exchange_strong(expected, kCancelled, std::memory_order_release,
                                               std::memory_order_acquire)) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          ZombieQNode(me);
          return false;
        }
      }
      if (me->status.load(std::memory_order_acquire) != kGranted) {
        AwaitGrantCommit(me->status);
      }
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
    return true;
  }

  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  // Anticipatory handover (wake-ahead, §5.2): predicts the grantee of the
  // coming unlock() by mirroring the bounded cull scan (remote and surplus
  // nodes are excised, so the grant lands past them) and posts its wake
  // permit from the tail of the critical section. A misprediction — raced
  // arrival or a home-rotation trial firing — leaves a benign stale permit.
  void PrepareHandover() {
    if constexpr (WaitPolicy::kParks) {
      QNode* me = owner_;
      QNode* heir = me->next.load(std::memory_order_acquire);
      if (heir == nullptr) {
        // Deficit path preview: unlock() refills from the local PS first,
        // then the remote list. Both are owner-protected.
        QNode* refill = ps_head_ != nullptr ? ps_head_ : remote_head_;
        if (refill != nullptr) {
          refill->wake_ref().WakeAhead();
        }
        return;
      }
      // KEEP IN SYNC with the cull scan in unlock(): a policy change there
      // that is not mirrored here silently turns every wake-ahead into a
      // stale permit plus a wasted syscall.
      std::uint32_t scanned = 0;
      bool local_culled = false;
      while (scanned < opts_.cull_scan_limit) {
        QNode* after = heir->next.load(std::memory_order_acquire);
        if (after == nullptr) {
          break;
        }
        if (heir->numa_node != home_node_) {
          // Would be culled to the remote list.
        } else if (!local_culled) {
          local_culled = true;  // Would be the one local surplus cull.
        } else {
          break;
        }
        heir = after;
        ++scanned;
      }
      heir->wake_ref().WakeAhead();
    }
  }

  void unlock() {
    QNode* me = owner_;

    // Bounded tombstone sweep over both owner-protected lists, eldest end
    // first, so cancelled passives are reclaimed even on cold lists.
    PurgeCancelled(&ps_head_, &ps_tail_);
    PurgeCancelled(&remote_head_, &remote_tail_);

    // Periodic home rotation: adopt the eldest *live* remote thread's node,
    // drain its co-resident threads into the chain, and grant it the lock.
    if (remote_tail_ != nullptr && opts_.fairness_one_in != 0 &&
        ThreadLocalRng().BernoulliOneIn(opts_.fairness_one_in)) {
      if (RotateHomeAndGrant(me)) {
        return;
      }
      // The remote list held only tombstones (all reclaimed); fall through.
    }

    // Chain walk, skipping cancelled husks (see McscrLock::unlock — same
    // invariant: a husk is reclaimed only after our last access to it).
    QNode* node = me;
    while (true) {
      QNode* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        bool refill_is_remote = false;
        QNode* refill = ClaimPassive(&ps_head_, &ps_tail_, /*from_tail=*/false);
        if (refill == nullptr) {
          refill = ClaimPassive(&remote_head_, &remote_tail_, /*from_tail=*/false);
          refill_is_remote = refill != nullptr;
        }
        if (refill != nullptr) {
          MALTHUS_FAILPOINT("mcscrn.refill");
          refill->next.store(nullptr, std::memory_order_relaxed);
          QNode* expected = node;
          if (tail_.compare_exchange_strong(expected, refill, std::memory_order_release,
                                            std::memory_order_relaxed)) {
            if (refill_is_remote) {
              home_node_ = refill->numa_node;  // Deficit adopts the refill's node.
            }
          } else {
            // An arrival raced the swap. The refill is claimed (its waiter
            // no longer parks or cancels), so it must be granted now: graft
            // it ahead of the arrival. Home stays unchanged — the arrival,
            // not the refill, keeps the lock saturated.
            QNode* chain = SpinForSuccessor(node);
            refill->next.store(chain, std::memory_order_relaxed);
          }
          reprovisions_.fetch_add(1, std::memory_order_relaxed);
          GrantClaimed(refill, me);
          Retire(node, me);
          return;
        }
        QNode* expected = node;
        if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                          std::memory_order_relaxed)) {
          Retire(node, me);
          return;
        }
        next = SpinForSuccessor(node);
      }

      // Scan a bounded prefix of the chain: remote threads go to the remote
      // list; same-node surplus goes to the local PS (one local cull max,
      // as in MCSCR); cancelled husks are reclaimed in place rather than
      // passivating corpses. The chain tail is never culled.
      std::uint32_t scanned = 0;
      bool local_culled = false;
      while (scanned < opts_.cull_scan_limit) {
        QNode* after = next->next.load(std::memory_order_acquire);
        if (after == nullptr) {
          break;
        }
        if (next->status.load(std::memory_order_acquire) == kCancelled) {
          cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
          next->status.store(kReclaimed, std::memory_order_release);
        } else if (next->numa_node != home_node_) {
          MALTHUS_FAILPOINT("mcscrn.cull");
          PsPushHead(&remote_head_, &remote_tail_, next);
          remote_culls_.fetch_add(1, std::memory_order_relaxed);
        } else if (!local_culled) {
          PsPushHead(&ps_head_, &ps_tail_, next);
          culls_.fetch_add(1, std::memory_order_relaxed);
          local_culled = true;
        } else {
          break;
        }
        next = after;
        ++scanned;
      }
      MALTHUS_FAILPOINT("mcscrn.grant");
      if (TryGrant(next, me)) {
        Retire(node, me);
        return;
      }
      // The chain tail cancelled underneath us: step over the husk.
      cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
      Retire(node, me);
      node = next;
    }
  }

  // Safe to call while other threads are locking (tests attach recorders
  // mid-run to skip warmup); hence the atomic pointer.
  void set_recorder(AdmissionLog* recorder) {
    recorder_.store(recorder, std::memory_order_relaxed);
  }
  void set_options(const McscrnOptions& opts) {
    opts_ = opts;
    spin_budget_.Reset(opts.spin_budget);
  }
  AdaptiveSpinBudget& spin_budget() { return spin_budget_; }

  std::uint64_t culls() const { return culls_.load(std::memory_order_relaxed); }
  std::uint64_t remote_culls() const { return remote_culls_.load(std::memory_order_relaxed); }
  std::uint64_t reprovisions() const { return reprovisions_.load(std::memory_order_relaxed); }
  std::uint64_t home_rotations() const {
    return home_rotations_.load(std::memory_order_relaxed);
  }
  std::uint64_t lock_migrations() const {
    return lock_migrations_.load(std::memory_order_relaxed);
  }
  std::uint64_t grants() const { return grants_.load(std::memory_order_relaxed); }
  // Acquisitions that timed out and self-removed.
  std::uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  // Cancelled nodes reclaimed by owner-side walks.
  std::uint64_t cancelled_reclaims() const {
    return cancelled_reclaims_.load(std::memory_order_relaxed);
  }

 private:
  // Commits the grant to a node pinned by a prior kWaiting -> kClaimed CAS.
  // `me` is the releasing owner's node (owner_ may not be written yet when
  // called mid-walk, so the migration check cannot go through it).
  void GrantClaimed(QNode* next, QNode* me) {
    grants_.fetch_add(1, std::memory_order_relaxed);
    if (next->numa_node != me->numa_node) {
      lock_migrations_.fetch_add(1, std::memory_order_relaxed);
    }
    // Pre-read: the waiter may recycle its node the moment it observes the
    // grant flag.
    const ParkerRef wake = next->wake_ref();
    owner_ = next;
    // Release pairs with the waiter's acquire in Await(); see McscrLock::
    // GrantClaimed for the full pairing rationale.
    next->status.store(kGranted, std::memory_order_release);
    WaitPolicy::Wake(wake);
  }

  // Grant attempt for an unclaimed chain node; false if it cancelled (the
  // caller then owns the husk).
  bool TryGrant(QNode* next, QNode* me) {
    // Pre-read: the waiter may recycle its node the moment the grant CAS
    // lands (and then rewrite numa_node on its next acquisition). Both the
    // wake channel and numa_node are read while the chain still pins the
    // node; post-CAS the ParkerRef's generation check guards the wake.
    const ParkerRef wake = next->wake_ref();
    const std::uint32_t next_numa_node = next->numa_node;
    owner_ = next;
    std::uint32_t expected = kWaiting;
    if (!next->status.compare_exchange_strong(expected, kGranted, std::memory_order_release,
                                              std::memory_order_relaxed)) {
      return false;
    }
    grants_.fetch_add(1, std::memory_order_relaxed);
    if (next_numa_node != me->numa_node) {
      lock_migrations_.fetch_add(1, std::memory_order_relaxed);
    }
    WaitPolicy::Wake(wake);
    return true;
  }

  static void Retire(QNode* node, QNode* me) {
    if (node == me) {
      ReleaseQNode(node);
    } else {
      node->status.store(kReclaimed, std::memory_order_release);
    }
  }

  // Pops list entries (head or tail end) until one survives the kWaiting ->
  // kClaimed pin; cancelled entries are reclaimed in passing. nullptr when
  // the list holds only tombstones.
  QNode* ClaimPassive(QNode** head, QNode** tail, bool from_tail) {
    while (*head != nullptr) {
      QNode* n = PsPop(head, tail, from_tail ? *tail : *head);
      // Generation tripwire (see McscrLock::ClaimPs): a node whose stamping
      // thread has detached can only be a tombstone; never pin it.
      if (!n->OwnerCurrent()) {
        cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
        n->status.store(kReclaimed, std::memory_order_release);
        continue;
      }
      std::uint32_t expected = kWaiting;
      if (n->status.compare_exchange_strong(expected, kClaimed, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        return n;
      }
      cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
      n->status.store(kReclaimed, std::memory_order_release);
    }
    return nullptr;
  }

  // Bounded eldest-first tombstone sweep (see McscrLock's).
  void PurgeCancelled(QNode** head, QNode** tail) {
    std::uint32_t scanned = 0;
    QNode* n = *tail;
    while (n != nullptr && scanned < kPurgeScanLimit) {
      QNode* prev = n->list_prev;
      if (n->status.load(std::memory_order_acquire) == kCancelled) {
        MALTHUS_FAILPOINT("mcscrn.purge");
        PsUnlink(head, tail, n);
        cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
        n->status.store(kReclaimed, std::memory_order_release);
      }
      n = prev;
      ++scanned;
    }
  }

  static constexpr std::uint32_t kPurgeScanLimit = 4;

  // Picks the eldest live remote thread, claims it, makes its node home,
  // drains its live co-resident threads into the chain after it, and
  // grants it. Returns false (no rotation) if the remote list drained to
  // tombstones while claiming.
  bool RotateHomeAndGrant(QNode* me) {
    QNode* leader = ClaimPassive(&remote_head_, &remote_tail_, /*from_tail=*/true);
    if (leader == nullptr) {
      return false;
    }
    MALTHUS_FAILPOINT("mcscrn.rotate");
    home_node_ = leader->numa_node;
    home_rotations_.fetch_add(1, std::memory_order_relaxed);

    // Collect co-resident remote threads into a local chain segment.
    // Cancelled ones are reclaimed instead of spliced — a husk linked into
    // the chain would only be skipped at grant time anyway, and filtering
    // here is cheaper than a chain walk later. Live ones need no claim:
    // once spliced they are ordinary chain nodes, and a cancel after the
    // splice just tombstones them in place.
    QNode* seg_head = leader;
    QNode* seg_tail = leader;
    QNode* scan = remote_tail_;
    while (scan != nullptr) {
      QNode* prev_scan = scan->list_prev;
      if (scan->numa_node == home_node_) {
        PsUnlink(&remote_head_, &remote_tail_, scan);
        if (scan->status.load(std::memory_order_acquire) == kCancelled) {
          cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
          scan->status.store(kReclaimed, std::memory_order_release);
        } else {
          seg_tail->next.store(scan, std::memory_order_relaxed);
          seg_tail = scan;
        }
      }
      scan = prev_scan;
    }

    QNode* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      seg_tail->next.store(nullptr, std::memory_order_relaxed);
      QNode* expected = me;
      if (tail_.compare_exchange_strong(expected, seg_tail, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        GrantClaimed(seg_head, me);
        ReleaseQNode(me);
        return true;
      }
      next = SpinForSuccessor(me);
    }
    seg_tail->next.store(next, std::memory_order_relaxed);
    GrantClaimed(seg_head, me);
    ReleaseQNode(me);
    return true;
  }

  // Doubly-linked list helpers shared by the local PS and the remote list.
  // Owner-protected, like MCSCR's.
  static void PsPushHead(QNode** head, QNode** tail, QNode* n) {
    n->list_prev = nullptr;
    n->list_next = *head;
    if (*head != nullptr) {
      (*head)->list_prev = n;
    } else {
      *tail = n;
    }
    *head = n;
  }

  static void PsUnlink(QNode** head, QNode** tail, QNode* n) {
    if (n->list_prev != nullptr) {
      n->list_prev->list_next = n->list_next;
    } else {
      *head = n->list_next;
    }
    if (n->list_next != nullptr) {
      n->list_next->list_prev = n->list_prev;
    } else {
      *tail = n->list_prev;
    }
    n->list_prev = nullptr;
    n->list_next = nullptr;
  }

  static QNode* PsPop(QNode** head, QNode** tail, QNode* n) {
    PsUnlink(head, tail, n);
    return n;
  }

  std::atomic<QNode*> tail_{nullptr};
  QNode* owner_ = nullptr;
  QNode* ps_head_ = nullptr;
  QNode* ps_tail_ = nullptr;
  QNode* remote_head_ = nullptr;
  QNode* remote_tail_ = nullptr;
  std::uint32_t home_node_ = 0;
  std::atomic<std::uint64_t> culls_{0};
  std::atomic<std::uint64_t> remote_culls_{0};
  std::atomic<std::uint64_t> reprovisions_{0};
  std::atomic<std::uint64_t> home_rotations_{0};
  std::atomic<std::uint64_t> lock_migrations_{0};
  std::atomic<std::uint64_t> grants_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> cancelled_reclaims_{0};
  std::atomic<AdmissionLog*> recorder_{nullptr};
  McscrnOptions opts_;
  AdaptiveSpinBudget spin_budget_;
};

using McscrnSpinLock = McscrnLock<YieldingSpinPolicy>;  // MCSCRN-S (yield-aware spin)
using McscrnStpLock = McscrnLock<SpinThenParkPolicy>;

}  // namespace malthus

#endif  // MALTHUS_SRC_CORE_MCSCRN_H_
