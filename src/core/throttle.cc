#include "src/core/throttle.h"

#include "src/locks/mcs.h"
#include "src/locks/tas.h"

namespace malthus {

// Instantiation anchors.
template class ThrottledLock<McsSpinLock>;
template class ThrottledLock<TtasLock>;

}  // namespace malthus
