// Cache-line alignment utilities.
//
// Lock metadata and per-thread counters are padded to a cache line (or a
// pair of lines, to defeat adjacent-line prefetchers) so that unrelated
// writers do not induce coherence traffic on each other's data.
#ifndef MALTHUS_SRC_PLATFORM_ALIGN_H_
#define MALTHUS_SRC_PLATFORM_ALIGN_H_

#include <cstddef>
#include <new>

namespace malthus {

// Size of a destructive-interference-free region. We deliberately use 128
// (two 64-byte lines) because adjacent-line hardware prefetchers pair lines.
inline constexpr std::size_t kCacheLineSize = 128;

// Wraps T in a cache-line-sized, cache-line-aligned box. Useful for arrays
// of per-thread counters where neighbours must not false-share.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_ALIGN_H_
