// Host introspection: logical CPU count and last-level-cache capacity.
//
// The paper sizes workload footprints relative to the 8 MB SPARC T5 LLC; we
// size them relative to the host LLC so the thrashing onset lands at a
// comparable thread count. When sysfs is unavailable (containers), we fall
// back to the paper's 8 MB.
#ifndef MALTHUS_SRC_PLATFORM_SYSINFO_H_
#define MALTHUS_SRC_PLATFORM_SYSINFO_H_

#include <cstddef>

namespace malthus {

// Number of logical CPUs available to this process.
int LogicalCpuCount();

// Number of CPUs this process can *effectively* run on concurrently: the
// affinity-mask count further limited by a cgroup CPU-bandwidth quota
// (cgroup v2 `cpu.max`, v1 `cpu.cfs_quota_us`/`cpu.cfs_period_us`).
// Containers routinely advertise the host's full CPU count while capping
// the runnable share at a fraction of one core; pure spinning sized to the
// advertised count then burns the whole quota on preemption ticks. Always
// >= 1; computed once and cached.
int EffectiveCpuCount();

// Test hook: forces EffectiveCpuCount() to return `n` (n >= 1). Pass 0 to
// restore the measured value. Tests that exercise oversubscription
// escalation use this to simulate a 1-CPU host deterministically.
void SetEffectiveCpuCountForTesting(int n);

// Best-effort size of the last-level cache in bytes (shared L3 if present,
// else largest cache found). Falls back to 8 MB.
std::size_t LastLevelCacheBytes();

// The logical CPU the calling thread is currently running on, or -1.
int CurrentCpu();

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_SYSINFO_H_
