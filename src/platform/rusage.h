// Resource-usage snapshots for the Figure-4-style in-depth measurements:
// voluntary/involuntary context switches, user+system CPU time, and the
// derived CPU-utilization multiple and energy proxy.
//
// The paper measured watts-above-idle with Solaris's ldmpower; we substitute
// a simple linear energy model driven by active CPU-seconds (see DESIGN.md
// §2), since CR's energy effect in the paper is mediated by how many CPUs
// are kept busy.
#ifndef MALTHUS_SRC_PLATFORM_RUSAGE_H_
#define MALTHUS_SRC_PLATFORM_RUSAGE_H_

#include <cstdint>

namespace malthus {

struct UsageSnapshot {
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
  double cpu_seconds = 0.0;  // user + system, all threads of the process
};

struct UsageDelta {
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
  double cpu_seconds = 0.0;
  double wall_seconds = 0.0;

  // CPU utilization expressed as a multiple of one CPU, e.g. 5.2x.
  double CpuUtilization() const { return wall_seconds > 0 ? cpu_seconds / wall_seconds : 0.0; }

  // Model watts above idle: each fully busy CPU is charged
  // kWattsPerActiveCpu. A proxy, not a measurement (DESIGN.md §2).
  double ModelWattsAboveIdle() const;
};

inline constexpr double kWattsPerActiveCpu = 3.5;

// Snapshot of RUSAGE_SELF.
UsageSnapshot CaptureUsage();

// Delta between two snapshots plus the elapsed wall time.
UsageDelta DiffUsage(const UsageSnapshot& begin, const UsageSnapshot& end, double wall_seconds);

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_RUSAGE_H_
