#include "src/platform/calibrate.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "src/platform/cpu.h"
#include "src/platform/park.h"

namespace malthus {
namespace {

using Clock = std::chrono::steady_clock;

double MeasureSpinIterationNs() {
  constexpr int kIters = 200000;
  const auto begin = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    CpuRelax();
  }
  const auto end = Clock::now();
  const double total_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count());
  return std::max(0.5, total_ns / kIters);
}

double MeasureParkRoundTripNs() {
  constexpr int kRounds = 2000;
  Parker ping;
  Parker pong;
  std::thread partner([&] {
    for (int i = 0; i < kRounds; ++i) {
      ping.Park();
      pong.Unpark();
    }
  });
  const auto begin = Clock::now();
  for (int i = 0; i < kRounds; ++i) {
    ping.Unpark();
    pong.Park();
  }
  const auto end = Clock::now();
  partner.join();
  const double total_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count());
  return total_ns / kRounds;
}

std::uint32_t Calibrate() {
  if (const char* env = std::getenv("MALTHUS_SPIN_BUDGET"); env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      return static_cast<std::uint32_t>(v);
    }
  }
  const double spin_ns = SpinIterationNs();
  const double round_trip_ns = ParkRoundTripNs();
  // The ping-pong measures the best case (both threads hot, CPUs busy); an
  // in-situ wake of a passivated thread pays cold caches and idle-CPU
  // dispatch on top, so the budget covers a multiple of the best-case round
  // trip. The floor keeps the near-term MCSCR waiter spinning across a
  // cull->deficit oscillation even when the ping-pong measures
  // unrealistically fast.
  constexpr double kSafetyFactor = 32.0;
  const double budget = kSafetyFactor * round_trip_ns / spin_ns;
  return static_cast<std::uint32_t>(std::clamp(budget, 20000.0, 1000000.0));
}

}  // namespace

std::uint32_t CalibratedSpinBudget() {
  static const std::uint32_t budget = Calibrate();
  return budget;
}

double SpinIterationNs() {
  static const double ns = MeasureSpinIterationNs();
  return ns;
}

double ParkRoundTripNs() {
  static const double ns = MeasureParkRoundTripNs();
  return ns;
}

}  // namespace malthus
