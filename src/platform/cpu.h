// CPU-level primitives: polite spin-pause and cycle counters.
//
// The paper uses SPARC's `RD CCR,G0` long-latency no-op for polite spinning;
// the x86 equivalent is PAUSE, which transiently cedes pipeline resources to
// the sibling hyperthread and reduces the mispredict penalty on loop exit.
#ifndef MALTHUS_SRC_PLATFORM_CPU_H_
#define MALTHUS_SRC_PLATFORM_CPU_H_

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace malthus {

// One polite spin step. Maps to PAUSE on x86, ISB/yield on ARM, a plain
// compiler barrier elsewhere.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Approximate cycle counter. Used only for spin-budget accounting where
// small inaccuracies are fine (the paper's spin budget is itself an
// empirical estimate of a context-switch round trip).
inline std::uint64_t ReadCycles() {
#if defined(__x86_64__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_CPU_H_
