#include "src/platform/park.h"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>

#include "src/chaos/failpoint.h"

namespace malthus {
namespace {

long FutexWait(std::atomic<std::int32_t>* addr, std::int32_t expected,
               const struct timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<std::int32_t*>(addr), FUTEX_WAIT_PRIVATE, expected,
                 timeout, nullptr, 0);
}

long FutexWake(std::atomic<std::int32_t>* addr, int count) {
  return syscall(SYS_futex, reinterpret_cast<std::int32_t*>(addr), FUTEX_WAKE_PRIVATE, count,
                 nullptr, nullptr, 0);
}

std::atomic<std::uint64_t> g_total_kernel_parks{0};
std::atomic<std::uint64_t> g_total_kernel_wakes{0};
std::atomic<std::uint64_t> g_total_elided_wakes{0};
std::atomic<std::uint64_t> g_total_wake_aheads{0};

}  // namespace

std::uint64_t TotalKernelParks() {
  return g_total_kernel_parks.load(std::memory_order_relaxed);
}

std::uint64_t TotalKernelWakes() {
  return g_total_kernel_wakes.load(std::memory_order_relaxed);
}

std::uint64_t TotalElidedKernelWakes() {
  return g_total_elided_wakes.load(std::memory_order_relaxed);
}

std::uint64_t TotalWakeAheads() {
  return g_total_wake_aheads.load(std::memory_order_relaxed);
}

// Protocol invariants (single owner, many wakers):
//   * Only the owner writes kNeutral (permit consumption, timeout retract)
//     and kParked (block announcement).
//   * Wakers only ever exchange in kPermit.
// Hence from the owner's point of view the state at Park() entry is kNeutral
// or kPermit, never kParked, and a kNeutral observed by the owner cannot
// spontaneously become kParked.

// Entry step: returns true if a pending permit was consumed (fast path,
// counted); returns false once kParked has been advertised so wakers know a
// futex syscall is required from this point on.
bool Parker::ConsumePermitOrAdvertisePark() {
  std::int32_t s = state_.load(std::memory_order_relaxed);
  while (true) {
    if (s == kPermit) {
      // Fast path: consume the pending permit without entering the kernel.
      // Acquire pairs with the waker's release exchange in Post().
      if (state_.compare_exchange_weak(s, kNeutral, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        fast_path_parks_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      continue;
    }
    // s == kNeutral.
    if (state_.compare_exchange_weak(s, kParked, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
      kernel_waits_.fetch_add(1, std::memory_order_relaxed);
      g_total_kernel_parks.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
}

// Post-FutexWait step: consumes a posted permit, or reports a spurious
// return (EINTR, stale wake) with the kParked advertisement still standing.
bool Parker::TryConsumePermit() {
  std::int32_t expected = kPermit;
  return state_.compare_exchange_strong(expected, kNeutral, std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

void Parker::Park() {
  if (ConsumePermitOrAdvertisePark()) {
    return;
  }
  while (true) {
    // Chaos: "park.spurious" models a futex wait returning without a permit
    // (EINTR, stale wake from a previous cycle) by eliding the syscall; the
    // kParked advertisement stands and the permit re-check below runs
    // exactly as it would after a real spurious return.
    if (!MALTHUS_FAILPOINT_TRIGGERED("park.spurious")) {
      FutexWait(&state_, kParked, nullptr);
    }
    if (TryConsumePermit()) {
      return;
    }
  }
}

bool Parker::ParkFor(std::chrono::nanoseconds timeout) {
  if (ConsumePermitOrAdvertisePark()) {
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // Retract the kParked advertisement. If a waker raced the timeout it
      // has already exchanged in kPermit (and possibly issued a by-now
      // harmless wake); consume that permit so it is never lost.
      std::int32_t expected = kParked;
      if (state_.compare_exchange_strong(expected, kNeutral, std::memory_order_relaxed,
                                         std::memory_order_acquire)) {
        return false;
      }
      // expected == kPermit: the permit won the race; take it. Further
      // posts over kPermit collapse, so the plain store consumes exactly
      // one logical permit; the failed CAS's acquire load pairs with the
      // waker's release exchange. (No fast_path_parks_ increment: this
      // call already counted as a kernel wait, and the counters partition
      // calls, not outcomes.)
      state_.store(kNeutral, std::memory_order_relaxed);
      return true;
    }
    const auto remaining = deadline - now;
    struct timespec ts;
    ts.tv_sec = std::chrono::duration_cast<std::chrono::seconds>(remaining).count();
    ts.tv_nsec = (remaining - std::chrono::seconds(ts.tv_sec)).count();
    // Chaos: same spurious-return injection as Park(). With the site armed
    // at probability 1 this turns ParkFor into a tight retract/consume race
    // against concurrent Unpark() — the PR 1 regression driver.
    if (!MALTHUS_FAILPOINT_TRIGGERED("park.spurious")) {
      FutexWait(&state_, kParked, &ts);
    }
    if (TryConsumePermit()) {
      return true;
    }
  }
}

bool Parker::Post() {
  // Posting over an existing permit is a no-op (restricted-range semaphore);
  // release pairs with the owner's acquire on consumption.
  const std::int32_t prev = state_.exchange(kPermit, std::memory_order_release);
  if (prev == kParked) {
    // Wake first, count after: the syscall is on the handover critical path
    // and the stats are not.
    FutexWake(&state_, 1);
    kernel_wakes_.fetch_add(1, std::memory_order_relaxed);
    g_total_kernel_wakes.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (prev == kNeutral) {
    // The owner is runnable — spinning on its grant flag, in its prologue,
    // or not waiting at all. A two-state parker pays a futex syscall here;
    // advertising kParked lets us skip it. This is the zero-syscall
    // handover the wake-ahead subsystem maximizes.
    elided_wakes_.fetch_add(1, std::memory_order_relaxed);
    g_total_elided_wakes.fetch_add(1, std::memory_order_relaxed);
  }
  // prev == kPermit: permit collapse; an earlier post already did the work.
  return false;
}

bool Parker::DrainPermit() {
  // Owner-side: state is kNeutral or kPermit here (never kParked — the
  // owner is running this code, not blocked). One strong CAS suffices.
  return TryConsumePermit();
}

void Parker::Unpark() {
  // Chaos: widen the window between the granter's decision to wake and the
  // permit post (the interval where the waiter may park, time out, or
  // cancel underneath the wake).
  MALTHUS_FAILPOINT("park.unpark.delay");
  Post();
}

bool Parker::WakeAhead() {
  wake_aheads_.fetch_add(1, std::memory_order_relaxed);
  g_total_wake_aheads.fetch_add(1, std::memory_order_relaxed);
  // Chaos: "park.wakeahead.elide" models a lost anticipatory hint — the
  // call is counted but no permit is posted, so the eventual grant must
  // carry the wake on its own (the parking litmus test: correctness may
  // never depend on the hint). "park.wakeahead.delay" defers the hint into
  // the release window instead.
  if (MALTHUS_FAILPOINT_TRIGGERED("park.wakeahead.elide")) {
    return false;
  }
  MALTHUS_FAILPOINT("park.wakeahead.delay");
  return Post();
}

}  // namespace malthus
