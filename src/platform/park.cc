#include "src/platform/park.h"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>

namespace malthus {
namespace {

long FutexWait(std::atomic<std::int32_t>* addr, std::int32_t expected,
               const struct timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<std::int32_t*>(addr), FUTEX_WAIT_PRIVATE, expected,
                 timeout, nullptr, 0);
}

long FutexWake(std::atomic<std::int32_t>* addr, int count) {
  return syscall(SYS_futex, reinterpret_cast<std::int32_t*>(addr), FUTEX_WAKE_PRIVATE, count,
                 nullptr, nullptr, 0);
}

std::atomic<std::uint64_t> g_total_kernel_parks{0};

}  // namespace

std::uint64_t TotalKernelParks() {
  return g_total_kernel_parks.load(std::memory_order_relaxed);
}

void Parker::Park() {
  // Fast path: consume a pending permit without entering the kernel.
  if (state_.exchange(kNeutral, std::memory_order_acquire) == kPermit) {
    fast_path_parks_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  kernel_waits_.fetch_add(1, std::memory_order_relaxed);
  g_total_kernel_parks.fetch_add(1, std::memory_order_relaxed);
  while (true) {
    FutexWait(&state_, kNeutral, nullptr);
    if (state_.exchange(kNeutral, std::memory_order_acquire) == kPermit) {
      return;
    }
    // Spurious futex return (EINTR, stale wake): loop and wait again.
  }
}

bool Parker::ParkFor(std::chrono::nanoseconds timeout) {
  if (state_.exchange(kNeutral, std::memory_order_acquire) == kPermit) {
    fast_path_parks_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  kernel_waits_.fetch_add(1, std::memory_order_relaxed);
  g_total_kernel_parks.fetch_add(1, std::memory_order_relaxed);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // One final permit check so a permit posted just before the deadline is
      // not stranded until the next Park().
      return state_.exchange(kNeutral, std::memory_order_acquire) == kPermit;
    }
    const auto remaining = deadline - now;
    struct timespec ts;
    ts.tv_sec = std::chrono::duration_cast<std::chrono::seconds>(remaining).count();
    ts.tv_nsec = (remaining - std::chrono::seconds(ts.tv_sec)).count();
    FutexWait(&state_, kNeutral, &ts);
    if (state_.exchange(kNeutral, std::memory_order_acquire) == kPermit) {
      return true;
    }
  }
}

void Parker::Unpark() {
  // Posting over an existing permit is a no-op (restricted-range semaphore).
  if (state_.exchange(kPermit, std::memory_order_release) == kNeutral) {
    FutexWake(&state_, 1);
  }
}

}  // namespace malthus
