// Spin-budget calibration.
//
// The paper sets the spin-then-park budget to "approximately 20000 cycles,
// an empirically derived estimate of the average round-trip context switch
// time" (§5.1); Karlin/Lim show spinning for one context-switch round trip
// before parking is 2-competitive. The right value is host-dependent (a
// sandboxed kernel's futex round trip can be 10x a bare-metal one), so it
// is measured once per process: the cost of one polite spin iteration and
// the latency of a park/unpark ping-pong between two threads, giving
//
//   budget = round_trip_ns / spin_iteration_ns
//
// clamped to a sane range. MALTHUS_SPIN_BUDGET overrides the measurement.
#ifndef MALTHUS_SRC_PLATFORM_CALIBRATE_H_
#define MALTHUS_SRC_PLATFORM_CALIBRATE_H_

#include <cstdint>

namespace malthus {

// Spin iterations covering one park/unpark round trip. Measured on first
// call (a few ms), cached thereafter. Thread-safe.
std::uint32_t CalibratedSpinBudget();

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_CALIBRATE_H_
