// Spin-budget calibration.
//
// The paper sets the spin-then-park budget to "approximately 20000 cycles,
// an empirically derived estimate of the average round-trip context switch
// time" (§5.1); Karlin/Lim show spinning for one context-switch round trip
// before parking is 2-competitive. The right value is host-dependent (a
// sandboxed kernel's futex round trip can be 10x a bare-metal one), so it
// is measured once per process: the cost of one polite spin iteration and
// the latency of a park/unpark ping-pong between two threads, giving
//
//   budget = round_trip_ns / spin_iteration_ns
//
// clamped to a sane range. MALTHUS_SPIN_BUDGET overrides the measurement.
//
// The one-shot measurement is only the *seed*: per-lock budgets adapt at
// runtime via waiting/spin_budget.h, which tracks an EMA of each lock's
// actually observed parked-handover latency and re-derives the budget from
// it using SpinIterationNs().
#ifndef MALTHUS_SRC_PLATFORM_CALIBRATE_H_
#define MALTHUS_SRC_PLATFORM_CALIBRATE_H_

#include <cstdint>

namespace malthus {

// Spin iterations covering one park/unpark round trip. Measured on first
// call (a few ms), cached thereafter. Thread-safe.
std::uint32_t CalibratedSpinBudget();

// Measured cost of one polite spin-loop iteration (CpuRelax + load), in
// nanoseconds. Measured on first call, cached thereafter. Thread-safe.
double SpinIterationNs();

// Measured best-case park/unpark ping-pong round trip, in nanoseconds.
// Measured on first call, cached thereafter. Thread-safe.
double ParkRoundTripNs();

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_CALIBRATE_H_
