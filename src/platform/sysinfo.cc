#include "src/platform/sysinfo.h"

#include <sched.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <string>

namespace malthus {
namespace {

// Test override for EffectiveCpuCount(); 0 means "use the measured value".
std::atomic<int> g_effective_cpus_override{0};

// CPUs granted by a cgroup CPU-bandwidth quota, rounded up, or 0 when no
// quota applies (or none is detectable). Checks cgroup v2 first, then v1.
// Both files are read at the mount root: containers get a namespaced view
// where that is the right scope, and on an unconfined host the files either
// do not exist or read "max"/-1.
int CgroupQuotaCpus() {
  // v2: "cpu.max" holds "<quota-us>|max <period-us>".
  if (std::ifstream v2("/sys/fs/cgroup/cpu.max"); v2) {
    std::string quota_str;
    long long period = 0;
    v2 >> quota_str >> period;
    if (v2 && quota_str != "max" && period > 0) {
      try {
        const long long quota = std::stoll(quota_str);
        if (quota > 0) {
          return static_cast<int>((quota + period - 1) / period);
        }
      } catch (...) {
        // Malformed entry; treat as unlimited.
      }
    }
    return 0;
  }
  // v1: separate quota/period files; quota -1 means unlimited.
  std::ifstream quota_file("/sys/fs/cgroup/cpu/cpu.cfs_quota_us");
  std::ifstream period_file("/sys/fs/cgroup/cpu/cpu.cfs_period_us");
  long long quota = -1;
  long long period = 0;
  if (quota_file >> quota && period_file >> period && quota > 0 && period > 0) {
    return static_cast<int>((quota + period - 1) / period);
  }
  return 0;
}

}  // namespace

int LogicalCpuCount() {
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) {
      return n;
    }
  }
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

std::size_t LastLevelCacheBytes() {
  // Scan cpu0's cache indices; take the largest unified/data cache.
  std::size_t best = 0;
  for (int index = 0; index < 8; ++index) {
    const std::string base = "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::ifstream size_file(base + "/size");
    if (!size_file) {
      break;
    }
    std::string size_str;
    size_file >> size_str;
    if (size_str.empty()) {
      continue;
    }
    std::size_t multiplier = 1;
    const char suffix = size_str.back();
    if (suffix == 'K' || suffix == 'k') {
      multiplier = 1024;
      size_str.pop_back();
    } else if (suffix == 'M' || suffix == 'm') {
      multiplier = 1024 * 1024;
      size_str.pop_back();
    }
    try {
      const std::size_t bytes = std::stoull(size_str) * multiplier;
      best = bytes > best ? bytes : best;
    } catch (...) {
      // Malformed sysfs entry; ignore.
    }
  }
  return best > 0 ? best : (8u << 20);  // Paper's T5 LLC as fallback.
}

int EffectiveCpuCount() {
  const int forced = g_effective_cpus_override.load(std::memory_order_relaxed);
  if (forced > 0) {
    return forced;
  }
  static const int measured = [] {
    // Deliberately NOT LogicalCpuCount(): that reads the *calling thread's*
    // affinity mask, and the first call here can come from a bench worker
    // the harness already pinned to one CPU (fixed_time.h) — which would
    // poison this once-only cache to 1 for the whole process. The main
    // thread's mask (tid == getpid()) reflects operator-level confinement
    // (taskset, container cpusets) without per-worker pinning.
    int n = 0;
    cpu_set_t set;
    if (sched_getaffinity(getpid(), sizeof(set), &set) == 0) {
      n = CPU_COUNT(&set);
    }
    if (n <= 0) {
      const long online = sysconf(_SC_NPROCESSORS_ONLN);
      n = online > 0 ? static_cast<int>(online) : 1;
    }
    const int quota = CgroupQuotaCpus();
    if (quota > 0 && quota < n) {
      n = quota;
    }
    return n > 0 ? n : 1;
  }();
  return measured;
}

void SetEffectiveCpuCountForTesting(int n) {
  g_effective_cpus_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int CurrentCpu() { return sched_getcpu(); }

}  // namespace malthus
