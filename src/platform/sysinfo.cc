#include "src/platform/sysinfo.h"

#include <sched.h>
#include <unistd.h>

#include <fstream>
#include <string>

namespace malthus {

int LogicalCpuCount() {
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) {
      return n;
    }
  }
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

std::size_t LastLevelCacheBytes() {
  // Scan cpu0's cache indices; take the largest unified/data cache.
  std::size_t best = 0;
  for (int index = 0; index < 8; ++index) {
    const std::string base = "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::ifstream size_file(base + "/size");
    if (!size_file) {
      break;
    }
    std::string size_str;
    size_file >> size_str;
    if (size_str.empty()) {
      continue;
    }
    std::size_t multiplier = 1;
    const char suffix = size_str.back();
    if (suffix == 'K' || suffix == 'k') {
      multiplier = 1024;
      size_str.pop_back();
    } else if (suffix == 'M' || suffix == 'm') {
      multiplier = 1024 * 1024;
      size_str.pop_back();
    }
    try {
      const std::size_t bytes = std::stoull(size_str) * multiplier;
      best = bytes > best ? bytes : best;
    } catch (...) {
      // Malformed sysfs entry; ignore.
    }
  }
  return best > 0 ? best : (8u << 20);  // Paper's T5 LLC as fallback.
}

int CurrentCpu() { return sched_getcpu(); }

}  // namespace malthus
