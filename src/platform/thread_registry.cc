#include "src/platform/thread_registry.h"

namespace malthus {
namespace {

std::atomic<ThreadId> g_next_id{0};

}  // namespace

ThreadCtx& Self() {
  // The context is heap-allocated and deliberately never freed: a granter
  // may still poke the Parker in the window between publishing the grant
  // flag and issuing the wake, after the woken thread has already moved on
  // — or even exited. With thread-storage-duration contexts that poke is a
  // use-after-free; with leaked contexts it is a harmless store. One
  // cache-aligned block per registered thread, ids are never reused, so
  // the "leak" is bounded by the process's historical thread count.
  thread_local ThreadCtx* ctx = [] {
    auto* c = new ThreadCtx;
    c->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
    return c;
  }();
  return *ctx;
}

ThreadId RegisteredThreadCount() { return g_next_id.load(std::memory_order_relaxed); }

}  // namespace malthus
