#include "src/platform/thread_registry.h"

namespace malthus {
namespace {

std::atomic<ThreadId> g_next_id{0};

}  // namespace

ThreadCtx& Self() {
  // ThreadCtx owns a Parker and is neither copyable nor movable, so the id
  // is assigned by a one-shot initializer rather than a factory return.
  thread_local ThreadCtx ctx;
  thread_local bool initialized = [] {
    ctx.id = g_next_id.fetch_add(1, std::memory_order_relaxed);
    return true;
  }();
  (void)initialized;
  return ctx;
}

ThreadId RegisteredThreadCount() { return g_next_id.load(std::memory_order_relaxed); }

}  // namespace malthus
