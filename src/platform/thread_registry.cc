#include "src/platform/thread_registry.h"

#include <vector>

namespace malthus {
namespace {

// High-water mark of ids ever handed out. Ids themselves are recycled via
// the free list below, so concurrently-live threads always hold distinct
// ids while the count stays a stable upper bound on participants.
std::atomic<ThreadId> g_high_water{0};

slab_detail::TinyLock g_id_lock;

std::vector<ThreadId>& FreeIds() {
  static std::vector<ThreadId> ids;
  return ids;
}

ThreadId AllocId() {
  g_id_lock.lock();
  std::vector<ThreadId>& ids = FreeIds();
  ThreadId id;
  if (!ids.empty()) {
    id = ids.back();
    ids.pop_back();
  } else {
    id = g_high_water.fetch_add(1, std::memory_order_relaxed);
  }
  g_id_lock.unlock();
  return id;
}

void RecycleId(ThreadId id) {
  g_id_lock.lock();
  FreeIds().push_back(id);
  g_id_lock.unlock();
}

// RAII tenancy of a slab slot: checkout on the thread's first Self() call,
// return on thread exit. thread_local destructors run before static
// destructors (and before ThreadCtxSlab() itself is torn down) on every
// conforming libc, so well-behaved threads always return their slot.
struct CtxHolder {
  ThreadCtx* ctx;

  CtxHolder() {
    ctx = ThreadCtxSlab().Checkout().obj;
    ctx->id = AllocId();
    ctx->forced_node = UINT32_MAX;
    // A stale wake aimed at the previous tenant may have landed after the
    // slot was returned (the documented benign race); start neutral.
    ctx->parker.DrainPermit();
  }

  ~CtxHolder() {
    ctx->parker.DrainPermit();
    RecycleId(ctx->id);
    ctx->id = kInvalidThreadId;
    ThreadCtxSlab().Return(ctx);
  }
};

}  // namespace

ThreadCtx& Self() {
  thread_local CtxHolder holder;
  return *holder.ctx;
}

ThreadId RegisteredThreadCount() {
  return g_high_water.load(std::memory_order_relaxed);
}

std::uint64_t StaleWakesSuppressed() {
  return detail::g_stale_wakes_suppressed.load(std::memory_order_relaxed);
}

SlabAllocator<ThreadCtx>& ThreadCtxSlab() {
  static SlabAllocator<ThreadCtx> slab;
  return slab;
}

}  // namespace malthus
