// Dense thread identities and per-thread parking context.
//
// Lock algorithms and the metrics layer need (a) a small dense integer id
// per participating thread — admission histories store these — and (b) the
// thread's Parker so that an unlocking thread can wake a waiter. Both are
// provided by a process-wide registry with thread_local caching. Contexts
// live in a generation-stamped slab (alloc/slab.h): a thread checks its
// ThreadCtx out on first use and returns it at exit, and ids are recycled
// through a free list (concurrently-live threads always hold distinct ids;
// RegisteredThreadCount() stays a high-water mark).
//
// Because a granter may still poke the Parker in the window between
// publishing a grant flag and issuing the wake — after the woken thread has
// already moved on, or even exited — cross-thread wakes go through a
// ParkerRef: a {ThreadCtx*, generation} pair captured while the target was
// pinned. The slab keeps the memory type-stable (the poke can never fault)
// and the generation check turns a poke at a recycled slot into a logical
// no-op. The residual race (recycling between check and futex post) at
// worst hands the slot's new tenant a spurious permit, which the parking
// litmus test tolerates and attach-time DrainPermit() absorbs.
#ifndef MALTHUS_SRC_PLATFORM_THREAD_REGISTRY_H_
#define MALTHUS_SRC_PLATFORM_THREAD_REGISTRY_H_

#include <atomic>
#include <cstdint>

#include "src/alloc/slab.h"
#include "src/platform/align.h"
#include "src/platform/park.h"

namespace malthus {

using ThreadId = std::uint32_t;

inline constexpr ThreadId kInvalidThreadId = UINT32_MAX;

// Per-thread context handed around by lock algorithms. Obtained via Self().
// Cache-line-aligned: the parker's futex word is written by *other* threads
// (granters, wake-ahead hints); without the alignment, adjacent threads'
// contexts could false-share and every grant would invalidate a bystander.
struct alignas(kCacheLineSize) ThreadCtx {
  ThreadId id = kInvalidThreadId;
  Parker parker;
  // Simulated NUMA node for MCSCRN experiments; kInvalidNode means "use the
  // topology provider" (see core/topology.h).
  std::uint32_t forced_node = UINT32_MAX;
  // Slab tenancy stamp, owned by ThreadCtxSlab() (odd = checked out). Wake
  // paths validate it through ParkerRef; see alloc/slab.h.
  std::atomic<std::uint64_t> slot_gen{0};
};

namespace detail {
// Cross-thread wakes suppressed because the target slot was recycled.
inline std::atomic<std::uint64_t> g_stale_wakes_suppressed{0};
}  // namespace detail

// A generation-validated wake channel: {context, tenancy} captured while
// the target thread was pinned (e.g. before a grant CAS, while the waiter
// cannot exit). After the pin is dropped the holder may still call
// Unpark()/WakeAhead(): if the tenancy ended, the call is a counted no-op
// instead of a use-after-free. Copyable and trivially destructible — lock
// code snapshots these into QNodes and stack frames.
class ParkerRef {
 public:
  ParkerRef() = default;
  ParkerRef(ThreadCtx* ctx, std::uint64_t gen) : ctx_(ctx), gen_(gen) {}

  explicit operator bool() const { return ctx_ != nullptr; }

  // True while the referenced tenancy is still live.
  bool Current() const {
    return ctx_ != nullptr &&
           ctx_->slot_gen.load(std::memory_order_acquire) == gen_;
  }

  // Validated Parker::Unpark(). Returns false (and counts a suppressed
  // stale wake) if the tenancy ended. A recycle that lands between the
  // check and the futex post degrades to a spurious permit on the new
  // tenant — benign by the parking litmus test.
  bool Unpark() const {
    if (!Current()) {
      if (ctx_ != nullptr) {
        detail::g_stale_wakes_suppressed.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      return false;
    }
    ctx_->parker.Unpark();
    return true;
  }

  // Validated Parker::WakeAhead() (anticipatory handover hint).
  bool WakeAhead() const {
    if (!Current()) {
      if (ctx_ != nullptr) {
        detail::g_stale_wakes_suppressed.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      return false;
    }
    ctx_->parker.WakeAhead();
    return true;
  }

 private:
  ThreadCtx* ctx_ = nullptr;
  std::uint64_t gen_ = 0;
};

// Returns the calling thread's context, registering the thread on first use.
// The context is returned to the slab when the thread exits.
ThreadCtx& Self();

// Wake channel for the calling thread's own context (always current at the
// time of the call — a thread cannot outrun its own tenancy).
inline ParkerRef SelfWakeRef(ThreadCtx& self) {
  return ParkerRef(&self, self.slot_gen.load(std::memory_order_relaxed));
}

// High-water mark of thread ids handed out (upper bound on participants).
// Ids of exited threads are recycled, so this does not decrease.
ThreadId RegisteredThreadCount();

// Cross-thread wakes suppressed by generation validation (stale ParkerRef
// against a recycled or returned slot). Test/diagnostic surface.
std::uint64_t StaleWakesSuppressed();

// The process-wide ThreadCtx slab (test/diagnostic surface: memory-flatness
// checks read BytesReserved()/SlotsLive()).
SlabAllocator<ThreadCtx>& ThreadCtxSlab();

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_THREAD_REGISTRY_H_
