// Dense thread identities and per-thread parking context.
//
// Lock algorithms and the metrics layer need (a) a small dense integer id
// per participating thread — admission histories store these — and (b) the
// thread's Parker so that an unlocking thread can wake a waiter. Both are
// provided by a process-wide registry with thread_local caching; ids are
// assigned on first use and never reused (threads in these workloads live
// for the whole measurement interval).
#ifndef MALTHUS_SRC_PLATFORM_THREAD_REGISTRY_H_
#define MALTHUS_SRC_PLATFORM_THREAD_REGISTRY_H_

#include <atomic>
#include <cstdint>

#include "src/platform/align.h"
#include "src/platform/park.h"

namespace malthus {

using ThreadId = std::uint32_t;

inline constexpr ThreadId kInvalidThreadId = UINT32_MAX;

// Per-thread context handed around by lock algorithms. Obtained via Self().
// Cache-line-aligned: the parker's futex word is written by *other* threads
// (granters, wake-ahead hints); without the alignment, adjacent threads'
// contexts could false-share and every grant would invalidate a bystander.
struct alignas(kCacheLineSize) ThreadCtx {
  ThreadId id = kInvalidThreadId;
  Parker parker;
  // Simulated NUMA node for MCSCRN experiments; kInvalidNode means "use the
  // topology provider" (see core/topology.h).
  std::uint32_t forced_node = UINT32_MAX;
};

// Returns the calling thread's context, registering the thread on first use.
ThreadCtx& Self();

// Number of thread ids handed out so far (upper bound on participants).
ThreadId RegisteredThreadCount();

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_THREAD_REGISTRY_H_
