// Park/unpark: voluntary descheduling with permit semantics.
//
// This reproduces the Solaris lwp_park/lwp_unpark facility the paper builds
// on (§5.1 "Parking"), implemented over Linux futexes. The construct is a
// restricted-range semaphore taking the values 0 (neutral), 1 (unpark
// pending) and 2 (owner blocked — or about to block — in the kernel):
//
//   * Park() blocks the caller until a permit is available, then consumes it.
//     If an Unpark() arrived first, Park() consumes the pending permit and
//     returns immediately without entering the kernel. Before blocking, the
//     owner advertises kParked so wakers know a futex syscall is required.
//   * Unpark() posts a permit; it issues a futex wake *only* when the owner
//     advertised kParked. Unparking a thread that is spinning (or not
//     waiting at all) is a single atomic exchange — no syscall — which is
//     exactly the property that makes spin-then-park and wake-ahead
//     succession profitable. These zero-syscall grants are counted as
//     elided kernel wakes.
//   * WakeAhead() is the anticipatory-handover variant of Unpark(): a lock
//     owner calls it *before* releasing, so a parked heir's kernel wakeup
//     overlaps the tail of the critical section and the heir is already
//     runnable (or back to spinning) by the time the grant flag flips.
//     Semantically identical to Unpark(); tracked separately.
//   * ParkFor() is the timed variant used by LOITER's standby thread. A
//     permit that races the timeout is consumed (ParkFor returns true) or
//     left pending for the next Park() — it is never lost.
//
// Redundant Unpark() calls collapse into one pending permit. Callers must
// re-check their wait condition after Park() returns (the paper's litmus
// test: a no-op Park/Unpark must only degrade the algorithm to spinning,
// never break it).
//
// TotalKernelParks() counts, process-wide, the Park()/ParkFor() calls that
// actually blocked in the kernel. Each such call is one voluntary context
// switch; the Figure-4 benches report this (getrusage's ru_nvcsw is not
// populated in some sandboxed kernels, and this counter is precisely the
// lock-induced subset the paper's column measures). TotalKernelWakes() and
// TotalElidedKernelWakes() are the granter-side mirror: wakes that paid a
// futex syscall vs. wakes satisfied by a pure userspace permit post.
#ifndef MALTHUS_SRC_PLATFORM_PARK_H_
#define MALTHUS_SRC_PLATFORM_PARK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/platform/align.h"

namespace malthus {

class alignas(kCacheLineSize) Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  // Blocks until a permit is available, consuming it. May enter the kernel.
  void Park();

  // Blocks for at most `timeout`. Returns true if a permit was consumed,
  // false on timeout. A permit posted after a timeout stays pending; a
  // permit racing the timeout itself is consumed (returns true).
  bool ParkFor(std::chrono::nanoseconds timeout);

  // Posts a permit and wakes the owner iff it is blocked in the kernel.
  void Unpark();

  // Anticipatory handover (§5.2): identical permit semantics to Unpark(),
  // called by a lock owner *before* release so the heir's wakeup overlaps
  // the remaining critical section. Returns true if a kernel wake was
  // issued (the heir was parked), false if the heir was already runnable.
  bool WakeAhead();

  // True if a permit is pending (posted but not yet consumed). Racy by
  // nature; intended for stats and tests.
  bool PermitPending() const { return state_.load(std::memory_order_acquire) == kPermit; }

  // Consumes a pending permit without blocking; returns true if one was
  // taken. Owner-side only (like Park). Teardown hygiene: a worker leaving
  // a pool drains its stale wake-ahead/semaphore permits so the parker
  // returns to neutral before the thread retires.
  bool DrainPermit();

  // Counters for instrumentation, all maintained with relaxed atomics:
  //   kernel_waits     — Park()/ParkFor() calls that blocked in the kernel.
  //   fast_path_parks  — Park()/ParkFor() calls satisfied by a pending permit.
  //   kernel_wakes     — Unpark()/WakeAhead() calls that issued a futex wake.
  //   elided_wakes     — Unpark()/WakeAhead() calls that found the owner
  //                      runnable (spinning or between spin and park) and
  //                      skipped the syscall a two-state parker would pay.
  //   wake_aheads      — WakeAhead() calls.
  std::uint64_t kernel_waits() const { return kernel_waits_.load(std::memory_order_relaxed); }
  std::uint64_t fast_path_parks() const {
    return fast_path_parks_.load(std::memory_order_relaxed);
  }
  std::uint64_t kernel_wakes() const { return kernel_wakes_.load(std::memory_order_relaxed); }
  std::uint64_t elided_wakes() const { return elided_wakes_.load(std::memory_order_relaxed); }
  std::uint64_t wake_aheads() const { return wake_aheads_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::int32_t kNeutral = 0;
  static constexpr std::int32_t kPermit = 1;
  static constexpr std::int32_t kParked = 2;

  // Posts a permit, waking the owner if it advertised kParked. Returns true
  // if a futex wake was issued.
  bool Post();

  // Owner-side protocol steps shared by Park() and ParkFor(); the memory-
  // order reasoning lives on their definitions, once.
  bool ConsumePermitOrAdvertisePark();
  bool TryConsumePermit();

  // Futex word. int32_t as required by the futex ABI. Alone on its line:
  // it is written by *other* threads (wakers), while the counters below are
  // written by specific sides of the protocol; sharing a line would put
  // grant-path stores and stat updates in coherence conflict.
  std::atomic<std::int32_t> state_{kNeutral};

  alignas(kCacheLineSize) std::atomic<std::uint64_t> kernel_waits_{0};
  std::atomic<std::uint64_t> fast_path_parks_{0};
  std::atomic<std::uint64_t> kernel_wakes_{0};
  std::atomic<std::uint64_t> elided_wakes_{0};
  std::atomic<std::uint64_t> wake_aheads_{0};
};

// Process-wide count of parks that entered the kernel (voluntary context
// switches induced by waiting).
std::uint64_t TotalKernelParks();

// Process-wide count of unparks that issued a futex wake syscall.
std::uint64_t TotalKernelWakes();

// Process-wide count of unparks satisfied without a syscall because the
// target was runnable — the zero-syscall handovers this library exists to
// maximize.
std::uint64_t TotalElidedKernelWakes();

// Process-wide count of WakeAhead() hint calls.
std::uint64_t TotalWakeAheads();

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_PARK_H_
