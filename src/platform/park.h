// Park/unpark: voluntary descheduling with permit semantics.
//
// This reproduces the Solaris lwp_park/lwp_unpark facility the paper builds
// on (§5.1 "Parking"), implemented over Linux futexes. The construct is a
// restricted-range semaphore taking only the values 0 (neutral) and 1
// (unpark pending):
//
//   * Park() blocks the caller until a permit is available, then consumes it.
//     If an Unpark() arrived first, Park() consumes the pending permit and
//     returns immediately without entering the kernel.
//   * Unpark() posts a permit and wakes the owner if it is blocked. Unparking
//     a thread that is spinning (not yet blocked in the kernel) is a single
//     atomic exchange — no syscall — which is exactly the property that makes
//     spin-then-park profitable.
//   * ParkFor() is the timed variant used by LOITER's standby thread.
//
// Redundant Unpark() calls collapse into one pending permit. Callers must
// re-check their wait condition after Park() returns (the paper's litmus
// test: a no-op Park/Unpark must only degrade the algorithm to spinning,
// never break it).
//
// TotalKernelParks() counts, process-wide, the Park()/ParkFor() calls that
// actually blocked in the kernel. Each such call is one voluntary context
// switch; the Figure-4 benches report this (getrusage's ru_nvcsw is not
// populated in some sandboxed kernels, and this counter is precisely the
// lock-induced subset the paper's column measures).
#ifndef MALTHUS_SRC_PLATFORM_PARK_H_
#define MALTHUS_SRC_PLATFORM_PARK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/platform/align.h"

namespace malthus {

class Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  // Blocks until a permit is available, consuming it. May enter the kernel.
  void Park();

  // Blocks for at most `timeout`. Returns true if a permit was consumed,
  // false on timeout. A permit posted after a timeout stays pending.
  bool ParkFor(std::chrono::nanoseconds timeout);

  // Posts a permit and wakes the owner if it is blocked in the kernel.
  void Unpark();

  // True if a permit is pending (posted but not yet consumed). Racy by
  // nature; intended for stats and tests.
  bool PermitPending() const { return state_.load(std::memory_order_acquire) == kPermit; }

  // Counters for instrumentation: how many Park() calls actually blocked in
  // the kernel vs. consumed a pending permit on the fast path.
  std::uint64_t kernel_waits() const { return kernel_waits_.load(std::memory_order_relaxed); }
  std::uint64_t fast_path_parks() const {
    return fast_path_parks_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::int32_t kNeutral = 0;
  static constexpr std::int32_t kPermit = 1;

  // Futex word. int32_t as required by the futex ABI.
  std::atomic<std::int32_t> state_{kNeutral};
  std::atomic<std::uint64_t> kernel_waits_{0};
  std::atomic<std::uint64_t> fast_path_parks_{0};
};

// Process-wide count of parks that entered the kernel (voluntary context
// switches induced by waiting).
std::uint64_t TotalKernelParks();

}  // namespace malthus

#endif  // MALTHUS_SRC_PLATFORM_PARK_H_
