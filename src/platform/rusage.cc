#include "src/platform/rusage.h"

#include <sys/resource.h>
#include <sys/time.h>

namespace malthus {
namespace {

double TimevalToSeconds(const struct timeval& tv) {
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
}

}  // namespace

double UsageDelta::ModelWattsAboveIdle() const {
  return CpuUtilization() * kWattsPerActiveCpu;
}

UsageSnapshot CaptureUsage() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  UsageSnapshot snap;
  snap.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
  snap.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  snap.cpu_seconds = TimevalToSeconds(ru.ru_utime) + TimevalToSeconds(ru.ru_stime);
  return snap;
}

UsageDelta DiffUsage(const UsageSnapshot& begin, const UsageSnapshot& end, double wall_seconds) {
  UsageDelta d;
  d.voluntary_ctx_switches = end.voluntary_ctx_switches - begin.voluntary_ctx_switches;
  d.involuntary_ctx_switches = end.involuntary_ctx_switches - begin.involuntary_ctx_switches;
  d.cpu_seconds = end.cpu_seconds - begin.cpu_seconds;
  d.wall_seconds = wall_seconds;
  return d;
}

}  // namespace malthus
