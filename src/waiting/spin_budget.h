// Per-lock adaptive spin-then-park budget (§5.1).
//
// The paper fixes the budget at an empirically derived constant (~20000
// cycles, one context-switch round trip — Karlin/Lim's 2-competitive
// point). A process-wide constant is wrong twice over: the right value
// differs per host (a sandboxed kernel's futex round trip can be 10x a
// bare-metal one) and per lock (a lock whose heirs are woken ahead observes
// far cheaper parked handovers than one whose heirs always eat a cold
// kernel wake). AdaptiveSpinBudget therefore tracks, per lock, an EMA of
// the *observed* parked-handover latency — the time from entering the park
// phase of Await() to receiving the grant — and re-derives the budget as
//
//   budget_iters = kSafetyFactor * ema_ns / SpinIterationNs()
//
// kSafetyFactor mirrors the multiplier calibration applies to its ping-pong
// measurement (platform/calibrate.cc): observations are taken under warm
// caches and a busy CPU, while the marginal wake the budget is hedging
// against pays cold caches and idle-CPU dispatch on top.
//
// clamped to [kMinBudget, cap]. The cap is the calibrated budget itself:
// by the Karlin/Lim argument, spinning longer than the park/unpark round
// trip is never rational (past that point parking is cheaper), so
// adaptation can only *lower* the budget below the calibrated seed — e.g.
// when wake-ahead starts landing and parked handovers get cheap — never
// raise it. An uncapped EMA is unstable on oversubscribed hosts: observed
// handover latency includes scheduling delay, which grows with how long
// everyone spins, and the feedback loop rides the budget to the ceiling.
// The EMA seeds from the one-shot CalibratedSpinBudget() measurement, so
// behavior before the first sample matches the previous fixed scheme.
//
// Concurrency: updates come from whichever waiter just got granted, with no
// coordination. All fields are relaxed atomics — a lost sample merely slows
// convergence of a heuristic, and the type stays TSan-clean. Reads on the
// wait path are one relaxed load.
#ifndef MALTHUS_SRC_WAITING_SPIN_BUDGET_H_
#define MALTHUS_SRC_WAITING_SPIN_BUDGET_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "src/platform/calibrate.h"

namespace malthus {

// Fallback spin budget for spin-then-park, in spin-loop iterations, for
// call sites that pass a raw integer budget.
inline constexpr std::uint32_t kDefaultSpinBudget = 1000;

// Sentinel: resolve the budget by calibration (and keep adapting).
inline constexpr std::uint32_t kAutoSpinBudget = UINT32_MAX;

inline std::uint32_t ResolveSpinBudget(std::uint32_t requested) {
  return requested == kAutoSpinBudget ? CalibratedSpinBudget() : requested;
}

class AdaptiveSpinBudget {
 public:
  // Floor for adapted budgets, in spin iterations: keeps a near-term waiter
  // spinning across a cull->deficit oscillation even when observed
  // handovers are very cheap. The per-instance ceiling is the calibrated
  // budget (see file comment); kMaxBudget only backstops it.
  static constexpr std::uint32_t kMinBudget = 1000;
  static constexpr std::uint32_t kMaxBudget = 1u << 20;

  // EMA smoothing: new = old + (sample - old) / kEmaDivisor.
  static constexpr std::int64_t kEmaDivisor = 8;

  // Headroom multiplier from observed best-case latency to budget; keep in
  // sync with the rationale in platform/calibrate.cc.
  static constexpr double kSafetyFactor = 32.0;

  // Adaptive budget seeded from the process-wide calibration.
  AdaptiveSpinBudget() : AdaptiveSpinBudget(kAutoSpinBudget) {}

  // kAutoSpinBudget => adaptive; any other value pins the budget there and
  // disables adaptation (the ablation benches sweep explicit budgets).
  explicit AdaptiveSpinBudget(std::uint32_t requested) { Reset(requested); }

  AdaptiveSpinBudget(const AdaptiveSpinBudget&) = delete;
  AdaptiveSpinBudget& operator=(const AdaptiveSpinBudget&) = delete;

  // Current budget in spin iterations. One relaxed load; safe on the wait
  // fast path.
  std::uint32_t Get() const { return budget_.load(std::memory_order_relaxed); }

  bool adaptive() const { return adaptive_.load(std::memory_order_relaxed); }

  // Re-seeds from `requested`, same resolution rule as the constructor.
  void Reset(std::uint32_t requested) {
    if (requested == kAutoSpinBudget) {
      const std::uint32_t seed = std::min(CalibratedSpinBudget(), kMaxBudget);
      // Warm the spin-iteration cost cache now: MALTHUS_SPIN_BUDGET makes
      // CalibratedSpinBudget() return without measuring it, and the first
      // RecordParkedHandoverNs() otherwise pays the multi-ms measurement
      // while its caller holds a freshly granted lock.
      (void)SpinIterationNs();
      adaptive_.store(true, std::memory_order_relaxed);
      cap_.store(seed, std::memory_order_relaxed);
      budget_.store(seed, std::memory_order_relaxed);
    } else {
      adaptive_.store(false, std::memory_order_relaxed);
      cap_.store(requested, std::memory_order_relaxed);
      budget_.store(requested, std::memory_order_relaxed);
    }
    ema_ns_.store(0, std::memory_order_relaxed);
    samples_.store(0, std::memory_order_relaxed);
  }

  // The ceiling adaptation may not exceed (== the calibrated seed).
  std::uint32_t cap() const { return cap_.load(std::memory_order_relaxed); }

  // Pin the budget to an explicit value (disables adaptation).
  void Pin(std::uint32_t budget) { Reset(budget); }

  // Folds one observed parked-handover latency into the EMA and re-derives
  // the budget. No-op when pinned.
  void RecordParkedHandoverNs(std::int64_t observed_ns);

  // Instrumentation.
  std::int64_t ema_ns() const { return ema_ns_.load(std::memory_order_relaxed); }
  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint32_t> budget_{kDefaultSpinBudget};
  std::atomic<std::uint32_t> cap_{kMaxBudget};
  std::atomic<bool> adaptive_{true};
  // EMA of parked-handover latency in ns; 0 means "no samples yet".
  std::atomic<std::int64_t> ema_ns_{0};
  std::atomic<std::uint64_t> samples_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_WAITING_SPIN_BUDGET_H_
