#include "src/waiting/spin_budget.h"

#include <algorithm>

namespace malthus {
namespace {

// Samples above this are scheduler pathology (preemption storms, CPU
// hot-unplug, debugger stops), not handover cost; folding them in would
// drive the budget to the ceiling and keep it there for many samples.
constexpr std::int64_t kMaxSampleNs = 50'000'000;  // 50 ms

}  // namespace

void AdaptiveSpinBudget::RecordParkedHandoverNs(std::int64_t observed_ns) {
  if (!adaptive_.load(std::memory_order_relaxed)) {
    return;
  }
  observed_ns = std::clamp<std::int64_t>(observed_ns, 0, kMaxSampleNs);
  samples_.fetch_add(1, std::memory_order_relaxed);

  // Lossy read-modify-write: concurrent recorders may drop each other's
  // sample. Acceptable for a smoothing heuristic; see file comment.
  const std::int64_t prev = ema_ns_.load(std::memory_order_relaxed);
  const std::int64_t next = prev == 0 ? observed_ns : prev + (observed_ns - prev) / kEmaDivisor;
  ema_ns_.store(next, std::memory_order_relaxed);

  const double iters = kSafetyFactor * static_cast<double>(next) / SpinIterationNs();
  const double ceiling =
      static_cast<double>(std::min(cap_.load(std::memory_order_relaxed), kMaxBudget));
  const auto clamped = static_cast<std::uint32_t>(
      std::clamp(iters, std::min(static_cast<double>(kMinBudget), ceiling), ceiling));
  budget_.store(clamped, std::memory_order_relaxed);
}

}  // namespace malthus
