// Waiting policies (§5.1 of the paper), expressed as types plugged into the
// lock templates.
//
//   SpinPolicy         — unbounded polite local spinning (MCS-S, MCSCR-S).
//   SpinThenParkPolicy — bounded spin approximating one context-switch round
//                        trip, then park (MCS-STP, MCSCR-STP). Karlin/Lim:
//                        spinning for the switch cost then parking is
//                        2-competitive.
//   ParkPolicy         — park promptly (degenerate STP with zero budget).
//
// Each policy provides:
//   Await(flag, expected, parker, budget)
//     — block until *flag != expected. `budget` is either a raw iteration
//       count or an AdaptiveSpinBudget the policy both consults and feeds
//       with observed parked-handover latencies.
//   Wake(parker)
//     — called by the granter after the flag write; a no-op for pure
//       spinning.
//
// The flag is the waiter's own node status (local spinning): at most one
// thread spins on a given line, minimizing the invalidation diameter.
//
// Wake-ahead interaction: a lock owner may WakeAhead() the heir before
// releasing. The heir's Park() then returns while the grant flag is still
// unset; SpinThenParkPolicy treats that as "grant imminent" and re-spins —
// politely, yielding every slice so a single-CPU or oversubscribed host
// lets the owner finish its critical section — before re-parking. The
// subsequent grant is then observed in userspace and the granter's Unpark()
// collapses into a no-syscall permit post (an elided kernel wake).
#ifndef MALTHUS_SRC_WAITING_POLICY_H_
#define MALTHUS_SRC_WAITING_POLICY_H_

#include <sched.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/platform/cpu.h"
#include "src/platform/park.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

// After a Park() returns without the grant being visible (wake-ahead hint or
// stale permit), the waiter re-spins at least this many iterations before
// concluding the permit was stale and re-parking. Covers the tail of the
// owner's critical section after a wake-ahead.
inline constexpr std::uint32_t kMinPostWakeSpin = 4096;

// Within the post-wake re-spin, yield the CPU every this many iterations so
// the owner (which may share the core on oversubscribed hosts) can reach its
// release store.
inline constexpr std::uint32_t kPostWakeYieldSlice = 256;

// At most this many yields per wake. One or two are enough for a co-resident
// owner to finish its critical-section tail and grant; unbounded yielding
// turns contended waits into a round-robin storm that flattens the queue
// locks' emergent structure (e.g. MCSCRN's node-homogeneous chain).
inline constexpr std::uint32_t kMaxPostWakeYields = 2;

struct SpinPolicy {
  static constexpr bool kParks = false;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& /*parker*/,
                    std::uint32_t /*spin_budget*/ = kDefaultSpinBudget) {
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      CpuRelax();
    }
  }

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    AdaptiveSpinBudget& /*budget*/) {
    Await(flag, expected_while_waiting, parker);
  }

  static void Wake(Parker& /*parker*/) {}
};

struct SpinThenParkPolicy {
  static constexpr bool kParks = true;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    std::uint32_t spin_budget = kDefaultSpinBudget) {
    AwaitImpl(flag, expected_while_waiting, parker, spin_budget, nullptr);
  }

  // Adaptive variant: consults budget.Get() for the spin phase and feeds
  // the observed parked-handover latency back into the EMA.
  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    AdaptiveSpinBudget& budget) {
    AwaitImpl(flag, expected_while_waiting, parker, budget.Get(), &budget);
  }

  static void Wake(Parker& parker) { parker.Unpark(); }

 private:
  template <typename T>
  static void AwaitImpl(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                        std::uint32_t spin_budget, AdaptiveSpinBudget* budget) {
    // Phase 1: optimistic local spinning, betting that a grant arrives within
    // roughly a context-switch round trip.
    for (std::uint32_t i = 0; i < spin_budget; ++i) {
      if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
        return;
      }
      CpuRelax();
    }
    // Phase 2: park. Park() may consume a stale permit from a previous grant
    // cycle or a wake-ahead hint from the current owner, so the condition is
    // always re-checked — and after any wake the waiter re-spins before
    // re-parking, so a wake-ahead converts the coming grant into a
    // zero-syscall handover.
    const bool timing = budget != nullptr;
    const auto park_begin =
        timing ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
    const std::uint32_t respin = std::max(spin_budget, kMinPostWakeSpin);
    bool parked = false;
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      parked = true;
      parker.Park();
      std::uint32_t yields = 0;
      for (std::uint32_t i = 0; i < respin; ++i) {
        if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
          break;
        }
        CpuRelax();
        if ((i + 1) % kPostWakeYieldSlice == 0 && yields < kMaxPostWakeYields) {
          ++yields;
          sched_yield();
        }
      }
    }
    // Only rounds that really parked feed the EMA: a grant that lands just
    // after the spin phase would otherwise record a ~0 ns "handover" and
    // drag the budget toward the floor in exactly the regime where grants
    // arrive at the budget boundary.
    if (timing && parked) {
      const auto elapsed = std::chrono::steady_clock::now() - park_begin;
      budget->RecordParkedHandoverNs(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    }
  }
};

struct ParkPolicy {
  static constexpr bool kParks = true;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    std::uint32_t /*spin_budget*/ = 0) {
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      parker.Park();
    }
  }

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    AdaptiveSpinBudget& /*budget*/) {
    Await(flag, expected_while_waiting, parker);
  }

  static void Wake(Parker& parker) { parker.Unpark(); }
};

}  // namespace malthus

#endif  // MALTHUS_SRC_WAITING_POLICY_H_
