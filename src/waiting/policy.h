// Waiting policies (§5.1 of the paper), expressed as types plugged into the
// lock templates.
//
//   SpinPolicy         — unbounded polite local spinning (MCS-S, MCSCR-S).
//   SpinThenParkPolicy — bounded spin approximating one context-switch round
//                        trip, then park (MCS-STP, MCSCR-STP). Karlin/Lim:
//                        spinning for the switch cost then parking is
//                        2-competitive.
//   ParkPolicy         — park promptly (degenerate STP with zero budget).
//
// Each policy provides:
//   Await(flag, expected, parker)  — block until *flag != expected.
//   Wake(parker)                   — called by the granter after the flag
//                                    write; a no-op for pure spinning.
//
// The flag is the waiter's own node status (local spinning): at most one
// thread spins on a given line, minimizing the invalidation diameter.
#ifndef MALTHUS_SRC_WAITING_POLICY_H_
#define MALTHUS_SRC_WAITING_POLICY_H_

#include <atomic>
#include <cstdint>

#include "src/platform/calibrate.h"
#include "src/platform/cpu.h"
#include "src/platform/park.h"

namespace malthus {

// Fallback spin budget for spin-then-park, in spin-loop iterations. Locks
// default to kAutoSpinBudget, which resolves to the measured park/unpark
// round trip (CalibratedSpinBudget) — the paper's "empirically derived
// estimate of the average round-trip context switch time".
inline constexpr std::uint32_t kDefaultSpinBudget = 1000;

// Sentinel: resolve the budget by calibration at lock construction.
inline constexpr std::uint32_t kAutoSpinBudget = UINT32_MAX;

inline std::uint32_t ResolveSpinBudget(std::uint32_t requested) {
  return requested == kAutoSpinBudget ? CalibratedSpinBudget() : requested;
}

struct SpinPolicy {
  static constexpr bool kParks = false;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& /*parker*/,
                    std::uint32_t /*spin_budget*/ = kDefaultSpinBudget) {
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      CpuRelax();
    }
  }

  static void Wake(Parker& /*parker*/) {}
};

struct SpinThenParkPolicy {
  static constexpr bool kParks = true;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    std::uint32_t spin_budget = kDefaultSpinBudget) {
    // Phase 1: optimistic local spinning, betting that a grant arrives within
    // roughly a context-switch round trip.
    for (std::uint32_t i = 0; i < spin_budget; ++i) {
      if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
        return;
      }
      CpuRelax();
    }
    // Phase 2: park. Park() may consume a stale permit from a previous grant
    // cycle, so the condition is always re-checked.
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      parker.Park();
    }
  }

  static void Wake(Parker& parker) { parker.Unpark(); }
};

struct ParkPolicy {
  static constexpr bool kParks = true;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    std::uint32_t /*spin_budget*/ = 0) {
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      parker.Park();
    }
  }

  static void Wake(Parker& parker) { parker.Unpark(); }
};

}  // namespace malthus

#endif  // MALTHUS_SRC_WAITING_POLICY_H_
