// Waiting policies (§5.1 of the paper), expressed as types plugged into the
// lock templates.
//
//   SpinPolicy         — unbounded polite local spinning (the paper's pure
//                        -S waiting, kept as the reference building block).
//   YieldingSpinPolicy — SpinPolicy that detects *effective* oversubscription
//                        (more concurrent spinners than cgroup-aware
//                        effective CPUs) and degrades to bounded
//                        spin-then-sched_yield bursts so pure-spin locks
//                        make forward progress instead of burning whole
//                        preemption ticks. This is what the -S lock aliases
//                        (MCS-S, MCSCR-S, LIFO-S, MCSCRN-S) use: with
//                        spinners <= effective CPUs it is byte-for-byte pure
//                        spinning, so the paper's regime is unchanged.
//   SpinThenParkPolicy — bounded spin approximating one context-switch round
//                        trip, then park (MCS-STP, MCSCR-STP). Karlin/Lim:
//                        spinning for the switch cost then parking is
//                        2-competitive.
//   ParkPolicy         — park promptly (degenerate STP with zero budget).
//
// Each policy provides:
//   Await(flag, expected, parker, budget)
//     — block until *flag != expected. `budget` is either a raw iteration
//       count or an AdaptiveSpinBudget the policy both consults and feeds
//       with observed parked-handover latencies.
//   Wake(parker) / Wake(ParkerRef)
//     — called by the granter after the flag write; a no-op for pure
//       spinning. Granters that may outlive the waiter's thread pass a
//       generation-validated ParkerRef (see platform/thread_registry.h)
//       so a wake aimed at an exited waiter's recycled slot is suppressed.
//
// The flag is the waiter's own node status (local spinning): at most one
// thread spins on a given line, minimizing the invalidation diameter.
//
// Wake-ahead interaction: a lock owner may WakeAhead() the heir before
// releasing. The heir's Park() then returns while the grant flag is still
// unset; SpinThenParkPolicy treats that as "grant imminent" and re-spins —
// politely, yielding every slice so a single-CPU or oversubscribed host
// lets the owner finish its critical section — before re-parking. The
// subsequent grant is then observed in userspace and the granter's Unpark()
// collapses into a no-syscall permit post (an elided kernel wake).
#ifndef MALTHUS_SRC_WAITING_POLICY_H_
#define MALTHUS_SRC_WAITING_POLICY_H_

#include <sched.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/platform/cpu.h"
#include "src/platform/park.h"
#include "src/platform/sysinfo.h"
#include "src/platform/thread_registry.h"
#include "src/waiting/backoff.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

// After a Park() returns without the grant being visible (wake-ahead hint or
// stale permit), the waiter re-spins at least this many iterations before
// concluding the permit was stale and re-parking. Covers the tail of the
// owner's critical section after a wake-ahead.
inline constexpr std::uint32_t kMinPostWakeSpin = 4096;

// Within the post-wake re-spin, yield the CPU every this many iterations so
// the owner (which may share the core on oversubscribed hosts) can reach its
// release store.
inline constexpr std::uint32_t kPostWakeYieldSlice = 256;

// At most this many yields per wake. One or two are enough for a co-resident
// owner to finish its critical-section tail and grant; unbounded yielding
// turns contended waits into a round-robin storm that flattens the queue
// locks' emergent structure (e.g. MCSCRN's node-homogeneous chain).
inline constexpr std::uint32_t kMaxPostWakeYields = 2;

// The shared post-wake re-spin: after a Park()/ParkFor() consumed a permit
// that was a wake-ahead hint (or a stale permit), spin up to `iters`
// iterations waiting for `granted()` — yielding every kPostWakeYieldSlice,
// at most kMaxPostWakeYields times, so a co-resident owner can reach its
// release. Returns true iff the grant was observed. Used by
// SpinThenParkPolicy, LOITER's standby wait, and PthreadStyleMutex's node
// wait, so hint-to-grant pacing is tuned in exactly one place.
template <typename Granted>
inline bool PostWakeRespin(std::uint32_t iters, Granted&& granted) {
  std::uint32_t yields = 0;
  for (std::uint32_t i = 0; i < iters; ++i) {
    if (granted()) {
      return true;
    }
    CpuRelax();
    if ((i + 1) % kPostWakeYieldSlice == 0 && yields < kMaxPostWakeYields) {
      ++yields;
      sched_yield();
    }
  }
  return granted();
}

namespace detail {

// Process-wide gauge of threads currently inside a YieldingSpinPolicy wait.
// The escalation predicate compares it against the cgroup-aware effective
// CPU count: it deliberately ignores non-spinning runnable threads (owners,
// STP waiters still in their spin phase), so it under-counts pressure — the
// cheap, safe direction, since a missed escalation only costs what pure
// spinning already cost.
inline std::atomic<std::uint32_t> g_active_spinners{0};

// Times a spinner gave up pure spinning for the yield loop (process-wide,
// for tests and instrumentation).
inline std::atomic<std::uint64_t> g_spin_yield_escalations{0};

// Iterations of spinning between steady_clock reads in the deadline-aware
// spin loops. A clock read is tens of ns; amortizing it over a slice keeps
// timed spinning within noise of untimed spinning (bench_timeout_overhead
// checks this stays ~0).
inline constexpr std::uint32_t kDeadlineProbeSlice = 256;

// Deadline-checked local spin shared by the non-parking policies' AwaitUntil:
// spins until *flag != expected (true) or `deadline` passes (false),
// reading the clock once per slice. When `yield_when_oversubscribed`, cedes
// the CPU at each slice boundary while the spinner population exceeds the
// effective CPU count (the YieldingSpinPolicy discipline; timed waits are
// rare enough that the simpler per-slice yield replaces the full
// grace-burst state machine).
template <typename T>
inline bool SpinUntil(const std::atomic<T>& flag, T expected_while_waiting,
                      std::chrono::steady_clock::time_point deadline,
                      bool yield_when_oversubscribed) {
  while (true) {
    for (std::uint32_t i = 0; i < kDeadlineProbeSlice; ++i) {
      if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
        return true;
      }
      CpuRelax();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return flag.load(std::memory_order_acquire) != expected_while_waiting;
    }
    if (yield_when_oversubscribed &&
        g_active_spinners.load(std::memory_order_relaxed) >=
            static_cast<std::uint32_t>(EffectiveCpuCount())) {
      sched_yield();
    }
  }
}

}  // namespace detail

struct SpinPolicy {
  static constexpr bool kParks = false;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& /*parker*/,
                    std::uint32_t /*spin_budget*/ = kDefaultSpinBudget) {
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      CpuRelax();
    }
  }

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    AdaptiveSpinBudget& /*budget*/) {
    Await(flag, expected_while_waiting, parker);
  }

  // Deadline-bounded wait: true iff *flag != expected was observed. On
  // false the caller runs its cancellation protocol (whose CAS, not this
  // return value, decides whether the grant won the race).
  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& /*parker*/,
                         std::chrono::steady_clock::time_point deadline,
                         std::uint32_t /*spin_budget*/ = kDefaultSpinBudget) {
    return detail::SpinUntil(flag, expected_while_waiting, deadline,
                             /*yield_when_oversubscribed=*/false);
  }

  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                         std::chrono::steady_clock::time_point deadline,
                         AdaptiveSpinBudget& /*budget*/) {
    return AwaitUntil(flag, expected_while_waiting, parker, deadline);
  }

  static void Wake(Parker& /*parker*/) {}
  static void Wake(const ParkerRef& /*ref*/) {}
};

// Number of threads currently spinning under YieldingSpinPolicy.
inline std::uint32_t ActiveSpinners() {
  return detail::g_active_spinners.load(std::memory_order_relaxed);
}

// Process-wide count of pure-spin waits that escalated to sched_yield
// pacing because the spinner population exceeded the effective CPU count.
inline std::uint64_t TotalSpinYieldEscalations() {
  return detail::g_spin_yield_escalations.load(std::memory_order_relaxed);
}

// Pure spinning that survives oversubscription. Identical to SpinPolicy
// while the concurrent-spinner population fits the effective CPU count
// (cgroup-aware; see platform/sysinfo.h). Once spinners >= effective CPUs,
// at least one runnable thread — possibly the lock owner — is involuntarily
// descheduled, and every further spin iteration only lengthens its wait:
// each preempted handover then costs a full preemption tick (the pathology
// that makes the pure-spin suites hang on 1-CPU hosts). The policy then
// grants one last bounded grace burst (capped at the adaptive budget, which
// observes how long escalated waits actually take) and degrades to
// YieldingBackoff's bounded spin-then-sched_yield bursts, de-escalating
// back to pure spinning if the spinner population drains below the CPU
// count mid-wait. Never parks: Wake stays a no-op and granters never pay a
// futex syscall, preserving the -S cost model.
struct YieldingSpinPolicy {
  static constexpr bool kParks = false;

  // Iterations of pure spinning between re-reads of the (process-wide)
  // spinner gauge; keeps the hot loop free of shared-counter loads.
  static constexpr std::uint32_t kProbeSlice = 256;

  // Ceiling on the post-detection grace burst. The grace hedge is "the
  // grant may be a few hundred ns away; don't pay a yield for it" — a few
  // thousand iterations cover that; anything longer is tick-bound anyway.
  static constexpr std::uint32_t kMaxGraceSpin = 4096;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    std::uint32_t spin_budget = kDefaultSpinBudget) {
    AwaitImpl(flag, expected_while_waiting, parker, spin_budget, nullptr);
  }

  // Adaptive variant: the budget bounds the grace burst, and escalated
  // waits feed their observed grant latency back into the EMA — the same
  // "cost of waiting after ceding the CPU" quantity STP feeds from parked
  // handovers — so instrumentation (samples/ema_ns) reflects reality and
  // the grace burst tracks what escalated grants actually cost.
  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    AdaptiveSpinBudget& budget) {
    AwaitImpl(flag, expected_while_waiting, parker, budget.Get(), &budget);
  }

  // Deadline-bounded wait. Participates in the spinner gauge (so untimed
  // YieldingSpin waiters see timed ones as pressure) and cedes the CPU per
  // slice while oversubscribed.
  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& /*parker*/,
                         std::chrono::steady_clock::time_point deadline,
                         std::uint32_t /*spin_budget*/ = kDefaultSpinBudget) {
    detail::g_active_spinners.fetch_add(1, std::memory_order_relaxed);
    const bool observed = detail::SpinUntil(flag, expected_while_waiting, deadline,
                                            /*yield_when_oversubscribed=*/true);
    detail::g_active_spinners.fetch_sub(1, std::memory_order_relaxed);
    return observed;
  }

  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                         std::chrono::steady_clock::time_point deadline,
                         AdaptiveSpinBudget& /*budget*/) {
    return AwaitUntil(flag, expected_while_waiting, parker, deadline);
  }

  static void Wake(Parker& /*parker*/) {}
  static void Wake(const ParkerRef& /*ref*/) {}

 private:
  static bool Oversubscribed() {
    return detail::g_active_spinners.load(std::memory_order_relaxed) >=
           static_cast<std::uint32_t>(EffectiveCpuCount());
  }

  template <typename T>
  static void AwaitImpl(const std::atomic<T>& flag, T expected_while_waiting, Parker& /*parker*/,
                        std::uint32_t spin_budget, AdaptiveSpinBudget* budget) {
    if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
      return;
    }
    detail::g_active_spinners.fetch_add(1, std::memory_order_relaxed);
    const bool timing = budget != nullptr;
    const auto wait_begin =
        timing ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
    bool ever_escalated = false;
    bool yielding = false;
    std::uint32_t probe = 0;
    YieldingBackoff backoff;
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      if (yielding) {
        backoff.Pause();
        if (!Oversubscribed()) {
          yielding = false;  // Population drained; pure spinning is rational again.
          backoff.Reset();
        }
        continue;
      }
      CpuRelax();
      if (++probe >= kProbeSlice) {
        probe = 0;
        if (Oversubscribed()) {
          // Grace: one bounded pure-spin burst in case the grant is already
          // in flight, then start ceding the CPU. A grant landing inside
          // the grace burst still counts as a pure-spin wait.
          const std::uint32_t grace = std::min(spin_budget, kMaxGraceSpin);
          for (std::uint32_t i = 0;
               i < grace && flag.load(std::memory_order_acquire) == expected_while_waiting; ++i) {
            CpuRelax();
          }
          if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
            break;
          }
          yielding = true;
          if (!ever_escalated) {
            ever_escalated = true;
            detail::g_spin_yield_escalations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    detail::g_active_spinners.fetch_sub(1, std::memory_order_relaxed);
    // Only escalated waits feed the EMA, mirroring SpinThenParkPolicy's
    // parked-round filter: a grant that lands during pure spinning is not
    // an observation of post-descheduling grant latency.
    if (timing && ever_escalated) {
      const auto elapsed = std::chrono::steady_clock::now() - wait_begin;
      budget->RecordParkedHandoverNs(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    }
  }
};

struct SpinThenParkPolicy {
  static constexpr bool kParks = true;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    std::uint32_t spin_budget = kDefaultSpinBudget) {
    AwaitImpl(flag, expected_while_waiting, parker, spin_budget, nullptr);
  }

  // Adaptive variant: consults budget.Get() for the spin phase and feeds
  // the observed parked-handover latency back into the EMA.
  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    AdaptiveSpinBudget& budget) {
    AwaitImpl(flag, expected_while_waiting, parker, budget.Get(), &budget);
  }

  // Deadline-bounded spin-then-park: bounded spin, then ParkFor(remaining)
  // rounds with the shared post-wake re-spin after each permit. Returns
  // true iff *flag != expected was observed; false once the deadline
  // passes. A permit consumed by a ParkFor that then times out on the flag
  // is not "lost": permits here always precede a flag transition (grant or
  // wake-ahead hint), and the caller's cancellation CAS arbitrates.
  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                         std::chrono::steady_clock::time_point deadline,
                         std::uint32_t spin_budget = kDefaultSpinBudget) {
    for (std::uint32_t i = 0; i < spin_budget; ++i) {
      if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
        return true;
      }
      CpuRelax();
    }
    const std::uint32_t respin = std::max(spin_budget, kMinPostWakeSpin);
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return flag.load(std::memory_order_acquire) != expected_while_waiting;
      }
      if (parker.ParkFor(deadline - now)) {
        // Permit consumed — a grant is landing or a wake-ahead hint fired;
        // re-spin for the flag before deciding to re-park.
        PostWakeRespin(respin, [&] {
          return flag.load(std::memory_order_acquire) != expected_while_waiting;
        });
      }
    }
    return true;
  }

  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                         std::chrono::steady_clock::time_point deadline,
                         AdaptiveSpinBudget& budget) {
    return AwaitUntil(flag, expected_while_waiting, parker, deadline, budget.Get());
  }

  static void Wake(Parker& parker) { parker.Unpark(); }
  static void Wake(const ParkerRef& ref) { ref.Unpark(); }

 private:
  template <typename T>
  static void AwaitImpl(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                        std::uint32_t spin_budget, AdaptiveSpinBudget* budget) {
    // Phase 1: optimistic local spinning, betting that a grant arrives within
    // roughly a context-switch round trip.
    for (std::uint32_t i = 0; i < spin_budget; ++i) {
      if (flag.load(std::memory_order_acquire) != expected_while_waiting) {
        return;
      }
      CpuRelax();
    }
    // Phase 2: park. Park() may consume a stale permit from a previous grant
    // cycle or a wake-ahead hint from the current owner, so the condition is
    // always re-checked — and after any wake the waiter re-spins before
    // re-parking, so a wake-ahead converts the coming grant into a
    // zero-syscall handover.
    const bool timing = budget != nullptr;
    const auto park_begin =
        timing ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
    const std::uint32_t respin = std::max(spin_budget, kMinPostWakeSpin);
    bool parked = false;
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      parked = true;
      parker.Park();
      PostWakeRespin(respin, [&] {
        return flag.load(std::memory_order_acquire) != expected_while_waiting;
      });
    }
    // Only rounds that really parked feed the EMA: a grant that lands just
    // after the spin phase would otherwise record a ~0 ns "handover" and
    // drag the budget toward the floor in exactly the regime where grants
    // arrive at the budget boundary.
    if (timing && parked) {
      const auto elapsed = std::chrono::steady_clock::now() - park_begin;
      budget->RecordParkedHandoverNs(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    }
  }
};

struct ParkPolicy {
  static constexpr bool kParks = true;

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    std::uint32_t /*spin_budget*/ = 0) {
    while (flag.load(std::memory_order_acquire) == expected_while_waiting) {
      parker.Park();
    }
  }

  template <typename T>
  static void Await(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                    AdaptiveSpinBudget& /*budget*/) {
    Await(flag, expected_while_waiting, parker);
  }

  // Deadline-bounded prompt parking (STP with zero spin budget).
  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                         std::chrono::steady_clock::time_point deadline,
                         std::uint32_t /*spin_budget*/ = 0) {
    return SpinThenParkPolicy::AwaitUntil(flag, expected_while_waiting, parker, deadline,
                                          /*spin_budget=*/0u);
  }

  template <typename T>
  static bool AwaitUntil(const std::atomic<T>& flag, T expected_while_waiting, Parker& parker,
                         std::chrono::steady_clock::time_point deadline,
                         AdaptiveSpinBudget& /*budget*/) {
    return AwaitUntil(flag, expected_while_waiting, parker, deadline);
  }

  static void Wake(Parker& parker) { parker.Unpark(); }
  static void Wake(const ParkerRef& ref) { ref.Unpark(); }
};

}  // namespace malthus

#endif  // MALTHUS_SRC_WAITING_POLICY_H_
