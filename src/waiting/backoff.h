// Backoff helpers for *global* spinning (TAS and ticket locks).
//
// The paper: "A simple fixed back-off usually suffices for local spinning,
// while randomized back-off is more suitable for global spinning." TAS locks
// need randomized exponential backoff to damp the thundering herd; ticket
// locks use backoff proportional to the caller's distance from the
// now-serving counter.
#ifndef MALTHUS_SRC_WAITING_BACKOFF_H_
#define MALTHUS_SRC_WAITING_BACKOFF_H_

#include <sched.h>

#include <algorithm>
#include <cstdint>

#include "src/platform/cpu.h"
#include "src/rng/xorshift.h"

namespace malthus {

// Randomized truncated exponential backoff. Each Pause() spins a uniformly
// random number of iterations in [1, ceiling], then doubles the ceiling.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint32_t initial_ceiling = 16,
                              std::uint32_t max_ceiling = 4096)
      : ceiling_(initial_ceiling),
        max_ceiling_(max_ceiling),
        initial_ceiling_snapshot_(initial_ceiling) {}

  void Pause(XorShift64& rng) {
    const std::uint32_t iters = 1 + static_cast<std::uint32_t>(rng.NextBelow(ceiling_));
    for (std::uint32_t i = 0; i < iters; ++i) {
      CpuRelax();
    }
    if (ceiling_ < max_ceiling_) {
      ceiling_ *= 2;
    }
  }

  void Reset() { ceiling_ = initial_ceiling_snapshot_; }

  std::uint32_t ceiling() const { return ceiling_; }

 private:
  std::uint32_t ceiling_;
  std::uint32_t max_ceiling_;
  std::uint32_t initial_ceiling_snapshot_;
};

// Spin-then-yield pacing for spinning on a host that cannot actually run
// every spinner: each Pause() spins a *bounded* burst, then sched_yield()s
// so the thread that must make progress (typically the lock owner, or the
// heir it granted) can have the CPU. Bursts decay geometrically from
// `initial_burst` down to `min_burst`: the first yields are a cheap bet
// that the grant is imminent; once that bet has lost a few times the waiter
// is preemption-tick-bound anyway, and shorter bursts cede the CPU faster
// without adding coherence traffic (the flag poll rate is already bounded
// by the scheduler). Reset() restores the initial burst for the next wait.
class YieldingBackoff {
 public:
  explicit YieldingBackoff(std::uint32_t initial_burst = 1024, std::uint32_t min_burst = 64)
      : burst_(initial_burst), min_burst_(min_burst), initial_burst_(initial_burst) {}

  void Pause() {
    for (std::uint32_t i = 0; i < burst_; ++i) {
      CpuRelax();
    }
    sched_yield();
    ++yields_;
    burst_ = std::max(burst_ / 2, min_burst_);
  }

  void Reset() { burst_ = initial_burst_; }

  std::uint32_t burst() const { return burst_; }
  std::uint64_t yields() const { return yields_; }

 private:
  std::uint32_t burst_;
  std::uint32_t min_burst_;
  std::uint32_t initial_burst_;
  std::uint64_t yields_ = 0;
};

// Backoff proportional to queue position (ticket locks): a thread k slots
// from the head expects ~k critical sections to pass before its turn.
inline void ProportionalBackoff(std::uint64_t distance, std::uint32_t unit = 32) {
  const std::uint64_t iters = distance * unit;
  for (std::uint64_t i = 0; i < iters; ++i) {
    CpuRelax();
  }
}

}  // namespace malthus

#endif  // MALTHUS_SRC_WAITING_BACKOFF_H_
