// Backoff helpers for *global* spinning (TAS and ticket locks).
//
// The paper: "A simple fixed back-off usually suffices for local spinning,
// while randomized back-off is more suitable for global spinning." TAS locks
// need randomized exponential backoff to damp the thundering herd; ticket
// locks use backoff proportional to the caller's distance from the
// now-serving counter.
#ifndef MALTHUS_SRC_WAITING_BACKOFF_H_
#define MALTHUS_SRC_WAITING_BACKOFF_H_

#include <cstdint>

#include "src/platform/cpu.h"
#include "src/rng/xorshift.h"

namespace malthus {

// Randomized truncated exponential backoff. Each Pause() spins a uniformly
// random number of iterations in [1, ceiling], then doubles the ceiling.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint32_t initial_ceiling = 16,
                              std::uint32_t max_ceiling = 4096)
      : ceiling_(initial_ceiling),
        max_ceiling_(max_ceiling),
        initial_ceiling_snapshot_(initial_ceiling) {}

  void Pause(XorShift64& rng) {
    const std::uint32_t iters = 1 + static_cast<std::uint32_t>(rng.NextBelow(ceiling_));
    for (std::uint32_t i = 0; i < iters; ++i) {
      CpuRelax();
    }
    if (ceiling_ < max_ceiling_) {
      ceiling_ *= 2;
    }
  }

  void Reset() { ceiling_ = initial_ceiling_snapshot_; }

  std::uint32_t ceiling() const { return ceiling_; }

 private:
  std::uint32_t ceiling_;
  std::uint32_t max_ceiling_;
  std::uint32_t initial_ceiling_snapshot_;
};

// Backoff proportional to queue position (ticket locks): a thread k slots
// from the head expects ~k critical sections to pass before its turn.
inline void ProportionalBackoff(std::uint64_t distance, std::uint32_t unit = 32) {
  const std::uint64_t iters = distance * unit;
  for (std::uint64_t i = 0; i < iters; ++i) {
    CpuRelax();
  }
}

}  // namespace malthus

#endif  // MALTHUS_SRC_WAITING_BACKOFF_H_
