// Marsaglia xorshift PRNG — the generator the paper uses for Bernoulli
// fairness trials (§4) and for benchmark index streams (§6.1). Thread-local
// by construction: each instance is owned by one thread.
//
// Also provides splitmix64 for seeding and a small Bernoulli helper used by
// the CR admission policies ("statistically, we cede ownership to the tail
// of the PS on average once every 1000 unlock operations").
#ifndef MALTHUS_SRC_RNG_XORSHIFT_H_
#define MALTHUS_SRC_RNG_XORSHIFT_H_

#include <cstdint>

namespace malthus {

// splitmix64: used to expand a small seed into well-mixed 64-bit state.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Marsaglia xorshift64. Period 2^64 - 1; state must be nonzero.
class XorShift64 {
 public:
  explicit XorShift64(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t s = seed;
    state_ = SplitMix64(s);
    if (state_ == 0) {
      state_ = 0x2545F4914F6CDD1Dull;
    }
  }

  std::uint64_t Next() {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  // Uniform in [0, bound). bound must be nonzero. Modulo bias is negligible
  // for the bounds used here (<< 2^64) and matches the paper's usage.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  // One Bernoulli trial that succeeds on average once per `inverse_p` calls.
  // inverse_p == 0 means "never"; inverse_p == 1 means "always".
  bool BernoulliOneIn(std::uint64_t inverse_p) {
    if (inverse_p == 0) {
      return false;
    }
    if (inverse_p == 1) {
      return true;
    }
    return NextBelow(inverse_p) == 0;
  }

  // Bernoulli trial with probability `p` in [0,1].
  bool BernoulliP(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    // 53-bit mantissa comparison.
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  std::uint64_t state_;
};

// A thread-local generator seeded from the thread's dense id. Used by lock
// internals so they need no per-instance RNG state.
XorShift64& ThreadLocalRng();

}  // namespace malthus

#endif  // MALTHUS_SRC_RNG_XORSHIFT_H_
