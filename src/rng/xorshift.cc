#include "src/rng/xorshift.h"

#include "src/platform/thread_registry.h"

namespace malthus {

XorShift64& ThreadLocalRng() {
  thread_local XorShift64 rng(0xC0FFEEull + 0x9E3779B9ull * (Self().id + 1));
  return rng;
}

}  // namespace malthus
