// Admission-schedule replay through the cache model — the "special version
// of RandArray" from §6.1.
//
// Synthesizes the RandArray access pattern (a shared CS array plus one
// private NCS array per thread) and replays it under a given admission
// schedule. Comparing a strict-FIFO round-robin schedule over all N threads
// against a CR schedule cycling over an ACS of k threads shows, deterministically
// and host-independently, how CR converts extrinsic CS misses into hits
// once the ACS footprint fits the cache.
#ifndef MALTHUS_SRC_CACHESIM_REPLAY_H_
#define MALTHUS_SRC_CACHESIM_REPLAY_H_

#include <cstdint>
#include <vector>

#include "src/cachesim/cache.h"

namespace malthus {

struct ReplayConfig {
  std::uint32_t threads = 16;
  // Size of each thread-private NCS array and the shared CS array, bytes.
  std::uint64_t ncs_footprint_bytes = 1u << 20;
  std::uint64_t cs_footprint_bytes = 1u << 20;
  // Random accesses per critical / non-critical section (paper: 100 / 400).
  std::uint32_t cs_accesses = 100;
  std::uint32_t ncs_accesses = 400;
  std::uint64_t total_admissions = 20000;
  std::uint64_t seed = 42;
};

// An admission schedule maps admission ordinal -> thread id.
using AdmissionSchedule = std::vector<std::uint32_t>;

// Strict FIFO: round-robin cyclic over all threads (classic MCS behaviour
// under saturation).
AdmissionSchedule MakeFifoSchedule(std::uint32_t threads, std::uint64_t admissions);

// CR: cyclic over an ACS of `acs_size` threads, with every thread rotated
// through the ACS once per `fairness_period` admissions (long-term
// fairness), mirroring MCSCR's steady state.
AdmissionSchedule MakeCrSchedule(std::uint32_t threads, std::uint32_t acs_size,
                                 std::uint64_t admissions, std::uint64_t fairness_period = 1000);

struct ReplayResult {
  CacheStats cs_stats;   // accesses to the shared CS array only
  CacheStats ncs_stats;  // accesses to private NCS arrays
  double cs_miss_rate = 0.0;
  double cs_extrinsic_rate = 0.0;  // extrinsic misses / CS accesses
};

// Replays the workload under `schedule` through a cache of `cache_config`.
ReplayResult ReplaySchedule(const ReplayConfig& config, const CacheConfig& cache_config,
                            const AdmissionSchedule& schedule);

}  // namespace malthus

#endif  // MALTHUS_SRC_CACHESIM_REPLAY_H_
