#include "src/cachesim/replay.h"

#include "src/rng/xorshift.h"

namespace malthus {

AdmissionSchedule MakeFifoSchedule(std::uint32_t threads, std::uint64_t admissions) {
  AdmissionSchedule schedule;
  schedule.reserve(admissions);
  for (std::uint64_t i = 0; i < admissions; ++i) {
    schedule.push_back(static_cast<std::uint32_t>(i % threads));
  }
  return schedule;
}

AdmissionSchedule MakeCrSchedule(std::uint32_t threads, std::uint32_t acs_size,
                                 std::uint64_t admissions, std::uint64_t fairness_period) {
  AdmissionSchedule schedule;
  schedule.reserve(admissions);
  if (acs_size == 0) {
    acs_size = 1;
  }
  if (acs_size > threads) {
    acs_size = threads;
  }
  // The ACS is a window [base, base+acs_size) over the thread ids; each
  // fairness event admits the eldest passive thread, which displaces the
  // eldest ACS member — modelled as sliding the window by one.
  std::uint32_t base = 0;
  std::uint64_t since_fairness = 0;
  std::uint32_t cursor = 0;
  for (std::uint64_t i = 0; i < admissions; ++i) {
    if (acs_size < threads && ++since_fairness >= fairness_period) {
      since_fairness = 0;
      base = (base + 1) % threads;
    }
    schedule.push_back((base + cursor) % threads);
    cursor = (cursor + 1) % acs_size;
  }
  return schedule;
}

ReplayResult ReplaySchedule(const ReplayConfig& config, const CacheConfig& cache_config,
                            const AdmissionSchedule& schedule) {
  CacheSim cache(cache_config);
  XorShift64 rng(config.seed);

  // Address layout: the shared CS array at offset 0; thread t's private
  // array at (t + 1) * ncs_footprint (regions are disjoint).
  const std::uint64_t cs_base = 0;
  auto ncs_base = [&](std::uint32_t tid) {
    return config.cs_footprint_bytes + static_cast<std::uint64_t>(tid) * config.ncs_footprint_bytes;
  };

  ReplayResult result;
  for (const std::uint32_t tid : schedule) {
    // Critical section: random lines in the shared region.
    for (std::uint32_t a = 0; a < config.cs_accesses; ++a) {
      const std::uint64_t addr = cs_base + rng.NextBelow(config.cs_footprint_bytes);
      const AccessOutcome outcome = cache.Access(tid, addr);
      switch (outcome) {
        case AccessOutcome::kHit:
          ++result.cs_stats.hits;
          break;
        case AccessOutcome::kColdMiss:
          ++result.cs_stats.cold_misses;
          break;
        case AccessOutcome::kSelfMiss:
          ++result.cs_stats.self_misses;
          break;
        case AccessOutcome::kExtrinsicMiss:
          ++result.cs_stats.extrinsic_misses;
          break;
      }
    }
    // Non-critical section: random lines in the thread-private region.
    for (std::uint32_t a = 0; a < config.ncs_accesses; ++a) {
      const std::uint64_t addr = ncs_base(tid) + rng.NextBelow(config.ncs_footprint_bytes);
      const AccessOutcome outcome = cache.Access(tid, addr);
      switch (outcome) {
        case AccessOutcome::kHit:
          ++result.ncs_stats.hits;
          break;
        case AccessOutcome::kColdMiss:
          ++result.ncs_stats.cold_misses;
          break;
        case AccessOutcome::kSelfMiss:
          ++result.ncs_stats.self_misses;
          break;
        case AccessOutcome::kExtrinsicMiss:
          ++result.ncs_stats.extrinsic_misses;
          break;
      }
    }
  }
  result.cs_miss_rate = result.cs_stats.MissRate();
  const std::uint64_t cs_accesses = result.cs_stats.Accesses();
  result.cs_extrinsic_rate =
      cs_accesses == 0
          ? 0.0
          : static_cast<double>(result.cs_stats.extrinsic_misses) / static_cast<double>(cs_accesses);
  return result;
}

}  // namespace malthus
