// Faithful functional cache emulation (paper §6.1): a set-associative LRU
// cache whose lines are tagged with the installing CPU, so misses can be
// discriminated into
//
//   * cold      — the line was never resident,
//   * self      — intrinsic: the missing CPU itself evicted the line,
//   * extrinsic — destructive interference: some *other* CPU evicted it.
//
// The paper notes that no commercially available processor offers counters
// with this discrimination; the emulation is how it validated that MCS's
// collapse in RandArray is driven by extrinsic LLC misses and that CR
// removes them. Single-threaded by design: benchmark replays feed it a
// serialized access trace (see replay.h).
#ifndef MALTHUS_SRC_CACHESIM_CACHE_H_
#define MALTHUS_SRC_CACHESIM_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace malthus {

enum class AccessOutcome : std::uint8_t { kHit = 0, kColdMiss, kSelfMiss, kExtrinsicMiss };

struct CacheConfig {
  std::size_t size_bytes = 8u << 20;  // the paper's T5 LLC
  std::uint32_t ways = 16;
  std::uint32_t line_bytes = 64;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t cold_misses = 0;
  std::uint64_t self_misses = 0;
  std::uint64_t extrinsic_misses = 0;

  std::uint64_t Misses() const { return cold_misses + self_misses + extrinsic_misses; }
  std::uint64_t Accesses() const { return hits + Misses(); }
  double MissRate() const {
    const std::uint64_t a = Accesses();
    return a == 0 ? 0.0 : static_cast<double>(Misses()) / static_cast<double>(a);
  }
};

class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config);

  // Simulates one access by `cpu` to byte address `addr`.
  AccessOutcome Access(std::uint32_t cpu, std::uint64_t addr);

  const CacheStats& TotalStats() const { return total_; }
  // Stats for accesses issued by one CPU (grown on demand).
  const CacheStats& CpuStats(std::uint32_t cpu) const;

  std::size_t SetCount() const { return sets_.size() / config_.ways; }
  const CacheConfig& config() const { return config_; }

  void ResetStats();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint32_t installer = 0;
    std::uint64_t lru_stamp = 0;
    bool valid = false;
  };

  CacheConfig config_;
  std::size_t set_count_;
  std::vector<Line> sets_;  // set-major: sets_[set * ways + way]
  std::uint64_t access_clock_ = 0;
  // line address -> cpu that last evicted it (for miss attribution).
  std::unordered_map<std::uint64_t, std::uint32_t> evicted_by_;
  CacheStats total_;
  mutable std::vector<CacheStats> per_cpu_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_CACHESIM_CACHE_H_
