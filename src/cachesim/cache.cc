#include "src/cachesim/cache.h"

#include <cassert>

namespace malthus {
namespace {

[[maybe_unused]] bool IsPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

CacheSim::CacheSim(const CacheConfig& config) : config_(config) {
  assert(IsPowerOfTwo(config_.line_bytes) && "line size must be a power of two");
  set_count_ = config_.size_bytes / (static_cast<std::size_t>(config_.ways) * config_.line_bytes);
  if (set_count_ == 0) {
    set_count_ = 1;
  }
  sets_.resize(set_count_ * config_.ways);
}

AccessOutcome CacheSim::Access(std::uint32_t cpu, std::uint64_t addr) {
  ++access_clock_;
  const std::uint64_t line_addr = addr / config_.line_bytes;
  const std::size_t set = line_addr % set_count_;
  Line* base = &sets_[set * config_.ways];

  if (cpu >= per_cpu_.size()) {
    per_cpu_.resize(cpu + 1);
  }
  CacheStats& mine = per_cpu_[cpu];

  // Hit scan.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == line_addr) {
      line.lru_stamp = access_clock_;
      ++total_.hits;
      ++mine.hits;
      return AccessOutcome::kHit;
    }
  }

  // Victim selection: first invalid way, else LRU.
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru_stamp < victim->lru_stamp) {
      victim = &line;
    }
  }

  // Miss. Classify by who evicted this line last.
  AccessOutcome outcome;
  const auto it = evicted_by_.find(line_addr);
  if (it == evicted_by_.end()) {
    outcome = AccessOutcome::kColdMiss;
    ++total_.cold_misses;
    ++mine.cold_misses;
  } else if (it->second == cpu) {
    outcome = AccessOutcome::kSelfMiss;
    ++total_.self_misses;
    ++mine.self_misses;
  } else {
    outcome = AccessOutcome::kExtrinsicMiss;
    ++total_.extrinsic_misses;
    ++mine.extrinsic_misses;
  }

  // Install, recording the eviction attribution for the displaced line.
  if (victim->valid) {
    evicted_by_[victim->tag] = cpu;
  }
  victim->valid = true;
  victim->tag = line_addr;
  victim->installer = cpu;
  victim->lru_stamp = access_clock_;
  return outcome;
}

const CacheStats& CacheSim::CpuStats(std::uint32_t cpu) const {
  if (cpu >= per_cpu_.size()) {
    per_cpu_.resize(cpu + 1);
  }
  return per_cpu_[cpu];
}

void CacheSim::ResetStats() {
  total_ = CacheStats{};
  for (auto& s : per_cpu_) {
    s = CacheStats{};
  }
}

}  // namespace malthus
