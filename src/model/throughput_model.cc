#include "src/model/throughput_model.h"

#include <algorithm>
#include <cmath>

namespace malthus {

int ThroughputModel::Saturation() const {
  return static_cast<int>(std::ceil((params_.cs_ns + params_.ncs_ns) / params_.cs_ns));
}

double ThroughputModel::EffectiveCsNs(int circulating) const {
  const double footprint =
      static_cast<double>(circulating) * params_.ncs_footprint_bytes + params_.cs_footprint_bytes;
  if (footprint <= params_.llc_bytes) {
    return params_.cs_ns;
  }
  // Pressure grows linearly from 0 at capacity to 1 at 2x capacity, then
  // clamps: once the working set dwarfs the cache, every CS access misses
  // and the inflation cannot get any worse.
  const double pressure =
      std::min(1.0, (footprint - params_.llc_bytes) / params_.llc_bytes);
  return params_.cs_ns * (1.0 + (params_.max_cs_inflation - 1.0) * pressure);
}

double ThroughputModel::ThroughputForCirculatingSet(int threads, int circulating) const {
  const double cs_eff = EffectiveCsNs(circulating);
  const double per_thread_rate = 1e9 / (cs_eff + params_.ncs_ns);  // unsaturated
  const double lock_bound_rate = 1e9 / cs_eff;                     // saturated
  return std::min(static_cast<double>(threads) * per_thread_rate, lock_bound_rate);
}

double ThroughputModel::ThroughputWithoutCr(int threads) const {
  return ThroughputForCirculatingSet(threads, threads);
}

double ThroughputModel::ThroughputWithCr(int threads) const {
  // CR clamps the circulating set to saturation. Below saturation CR does
  // not engage (no surplus to cull) and the curves coincide.
  const int circulating = std::min(threads, Saturation());
  return ThroughputForCirculatingSet(threads, circulating);
}

int ThroughputModel::PeakThreads(int max_threads) const {
  int best_n = 1;
  double best = 0.0;
  for (int n = 1; n <= max_threads; ++n) {
    const double t = ThroughputWithoutCr(n);
    if (t > best) {
      best = t;
      best_n = n;
    }
  }
  return best_n;
}

std::vector<ThroughputModel::CurvePoint> ThroughputModel::Curve(int max_threads) const {
  std::vector<CurvePoint> curve;
  curve.reserve(static_cast<std::size_t>(max_threads));
  for (int n = 1; n <= max_threads; ++n) {
    curve.push_back({n, ThroughputWithoutCr(n), ThroughputWithCr(n)});
  }
  return curve;
}

}  // namespace malthus
