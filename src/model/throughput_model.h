// Analytic throughput model reproducing Figure 1 ("Impact of Concurrency
// Restriction") and the paper's saturation/peak vocabulary (§2).
//
// Closed-system model: N threads loop CS -> NCS over one lock.
//   saturation = smallest N such that the lock is continuously held
//              = ceil((CS + NCS) / CS)
//   throughput(N) = min(N / (CS_eff + NCS), 1 / CS_eff)
// where CS_eff inflates with LLC pressure: the circulating set's combined
// footprint beyond the cache capacity stretches the critical section
// (destructive interference of NCS instances on CS data, §3). Without CR
// the circulating set is all N threads; with CR it is clamped to
// saturation, so CS_eff stops growing — the Figure-1 plateau.
//
// Time unit: nanoseconds; throughput in iterations/second.
#ifndef MALTHUS_SRC_MODEL_THROUGHPUT_MODEL_H_
#define MALTHUS_SRC_MODEL_THROUGHPUT_MODEL_H_

#include <cstdint>
#include <vector>

namespace malthus {

struct ModelParams {
  double cs_ns = 1000.0;   // paper's example: CS = 1 us
  double ncs_ns = 5000.0;  // NCS = 5 us
  double llc_bytes = 8.0 * (1u << 20);
  double ncs_footprint_bytes = 1.0 * (1u << 20);  // per-thread private data
  double cs_footprint_bytes = 1.0 * (1u << 20);   // shared CS data
  // CS duration multiplier at (and beyond) total footprint = 2x capacity.
  double max_cs_inflation = 4.0;
};

class ThroughputModel {
 public:
  explicit ThroughputModel(const ModelParams& params) : params_(params) {}

  // Minimum thread count at which the lock is saturated (continuously held),
  // ignoring cache pressure.
  int Saturation() const;

  // Effective CS duration when `circulating` threads' footprints compete
  // for the LLC.
  double EffectiveCsNs(int circulating) const;

  double ThroughputWithoutCr(int threads) const;
  double ThroughputWithCr(int threads) const;

  // argmax over 1..max_threads of ThroughputWithoutCr — the paper's "peak".
  int PeakThreads(int max_threads) const;

  // Convenience: both curves over 1..max_threads (index 0 = 1 thread).
  struct CurvePoint {
    int threads;
    double without_cr;
    double with_cr;
  };
  std::vector<CurvePoint> Curve(int max_threads) const;

 private:
  double ThroughputForCirculatingSet(int threads, int circulating) const;

  ModelParams params_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_MODEL_THROUGHPUT_MODEL_H_
