#include "src/chaos/failpoint.h"

#include <sched.h>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/platform/cpu.h"

namespace malthus {
namespace failpoint {
namespace {

struct Site {
  SiteConfig config;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

// Registry of sites by name. Guarded by g_mu for structural changes; the
// hot path never touches it unless at least one site is armed (the
// g_armed_sites fast-path gate), so a mutex is fine. Entries are never
// erased while the process runs (Reset() disarms in place), so the raw
// Site* held in each thread's Evaluate() cache stays valid; the by-value
// static map destroys the Sites at process exit, keeping LSan clean.
std::mutex g_mu;
std::unordered_map<std::string, std::unique_ptr<Site>>& Registry() {
  static std::unordered_map<std::string, std::unique_ptr<Site>> r;
  return r;
}

std::atomic<std::uint64_t> g_seed{0x9e3779b97f4a7c15ull};
std::atomic<std::uint64_t> g_seed_epoch{1};
std::atomic<std::uint64_t> g_thread_ordinal{0};
std::atomic<bool> g_env_loaded{false};

// Per-thread xorshift64* stream, re-derived whenever SetSeed() bumps the
// epoch: stream = f(global seed, thread ordinal). Deterministic given the
// seed and each thread's arrival order at its first draw.
struct ThreadRng {
  std::uint64_t state = 0;
  std::uint64_t epoch = 0;
  std::uint64_t ordinal;
  ThreadRng() : ordinal(g_thread_ordinal.fetch_add(1, std::memory_order_relaxed)) {}

  double NextUnit() {
    const std::uint64_t e = g_seed_epoch.load(std::memory_order_relaxed);
    if (epoch != e) {
      epoch = e;
      state = g_seed.load(std::memory_order_relaxed) ^ (0x6a09e667f3bcc909ull * (ordinal + 1));
      if (state == 0) state = 0x2545f4914f6cdd1dull;
    }
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const std::uint64_t r = state * 0x2545f4914f6cdd1dull;
    return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
  }
};

[[maybe_unused]] ThreadRng& Rng() {
  thread_local ThreadRng rng;
  return rng;
}

Site* FindOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> g(g_mu);
  auto [it, inserted] = Registry().try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Site>();
  }
  return it->second.get();
}

std::uint64_t CountArmed() {
  std::uint64_t n = 0;
  for (auto& [name, site] : Registry()) {
    if (site->config.action != Action::kOff) {
      ++n;
    }
  }
  return n;
}

}  // namespace

#ifdef MALTHUS_FAILPOINTS
namespace detail {
std::atomic<std::uint64_t> g_armed_sites{0};
}  // namespace detail

namespace {
void PublishArmedCount() {
  detail::g_armed_sites.store(CountArmed(), std::memory_order_relaxed);
}
}  // namespace
#else
namespace {
void PublishArmedCount() { (void)CountArmed(); }
}  // namespace
#endif

void Configure(const std::string& site, const SiteConfig& config) {
  Site* s = FindOrCreate(site);
  {
    std::lock_guard<std::mutex> g(g_mu);
    s->config = config;
    PublishArmedCount();
  }
}

void Reset() {
  std::lock_guard<std::mutex> g(g_mu);
  for (auto& [name, site] : Registry()) {
    site->config = SiteConfig{};
    site->hits.store(0, std::memory_order_relaxed);
    site->fires.store(0, std::memory_order_relaxed);
  }
  PublishArmedCount();
}

void SetSeed(std::uint64_t seed) {
  g_seed.store(seed, std::memory_order_relaxed);
  g_seed_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Seed() { return g_seed.load(std::memory_order_relaxed); }

std::uint64_t Fires(const std::string& site) {
  std::lock_guard<std::mutex> g(g_mu);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second->fires.load(std::memory_order_relaxed);
}

std::uint64_t Hits(const std::string& site) {
  std::lock_guard<std::mutex> g(g_mu);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second->hits.load(std::memory_order_relaxed);
}

std::vector<SiteInfo> Sites() {
  std::lock_guard<std::mutex> g(g_mu);
  std::vector<SiteInfo> out;
  out.reserve(Registry().size());
  for (auto& [name, site] : Registry()) {
    out.push_back(SiteInfo{name, site->config, site->hits.load(std::memory_order_relaxed),
                           site->fires.load(std::memory_order_relaxed)});
  }
  return out;
}

void ConfigureFromEnv() {
  bool expected = false;
  if (!g_env_loaded.compare_exchange_strong(expected, true, std::memory_order_relaxed)) {
    return;
  }
  if (const char* seed = std::getenv("MALTHUS_CHAOS_SEED")) {
    SetSeed(std::strtoull(seed, nullptr, 10));
  }
  const char* spec = std::getenv("MALTHUS_CHAOS");
  if (spec == nullptr) {
    return;
  }
  // Grammar: site=action[:prob[:delay_iters]] joined by ','.
  std::string s(spec);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string entry = s.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    const std::string name = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);
    SiteConfig cfg;
    std::string action = rest;
    const std::size_t c1 = rest.find(':');
    if (c1 != std::string::npos) {
      action = rest.substr(0, c1);
      std::string tail = rest.substr(c1 + 1);
      const std::size_t c2 = tail.find(':');
      cfg.probability = std::strtod(tail.substr(0, c2).c_str(), nullptr);
      if (c2 != std::string::npos) {
        cfg.delay_iters =
            static_cast<std::uint32_t>(std::strtoul(tail.substr(c2 + 1).c_str(), nullptr, 10));
      }
    }
    if (action == "yield") {
      cfg.action = Action::kYield;
    } else if (action == "delay") {
      cfg.action = Action::kDelay;
    } else if (action == "trigger") {
      cfg.action = Action::kTrigger;
    } else {
      continue;
    }
    Configure(name, cfg);
  }
}

#ifdef MALTHUS_FAILPOINTS
namespace detail {

bool Evaluate(const char* site) {
  ConfigureFromEnv();
  // Per-thread site pointer cache keeps the armed path off the registry
  // mutex after first hit.
  thread_local std::unordered_map<const char*, Site*> cache;
  Site*& s = cache[site];
  if (s == nullptr) {
    s = FindOrCreate(site);
  }
  // Snapshot the config outside the mutex: Configure() writes it racily
  // with hits, but chaos configs are set before the threads under test
  // start, and a torn mid-run read only mis-fires an injection — chaos.
  const SiteConfig cfg = s->config;
  if (cfg.action == Action::kOff) {
    return false;
  }
  s->hits.fetch_add(1, std::memory_order_relaxed);
  if (cfg.probability < 1.0 && Rng().NextUnit() >= cfg.probability) {
    return false;
  }
  if (cfg.max_hits != 0) {
    // fetch_add-and-check so concurrent hitters respect the cap exactly.
    if (s->fires.fetch_add(1, std::memory_order_relaxed) >= cfg.max_hits) {
      s->fires.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
  } else {
    s->fires.fetch_add(1, std::memory_order_relaxed);
  }
  switch (cfg.action) {
    case Action::kYield:
      sched_yield();
      return false;
    case Action::kDelay:
      for (std::uint32_t i = 0; i < cfg.delay_iters; ++i) {
        CpuRelax();
      }
      return false;
    case Action::kTrigger:
      return true;
    case Action::kOff:
      return false;
  }
  return false;
}

}  // namespace detail
#endif  // MALTHUS_FAILPOINTS

}  // namespace failpoint
}  // namespace malthus
