// FailPoint fault injection: named, compile-time-gated chaos sites wired
// into the grant/cancel/culling paths of the lock stack.
//
// The races this library ships — wake-ahead permits racing ParkFor
// timeouts, culling racing cancellation, grants racing self-removal — have
// windows of a few instructions. Scheduler luck exercises them once per
// million iterations; a FailPoint placed inside the window widens it on
// demand so a unit test covers the interleaving deterministically.
//
// Usage (production code):
//
//   MALTHUS_FAILPOINT("mcs.grant");              // maybe yield/delay here
//   if (MALTHUS_FAILPOINT_TRIGGERED("park.spurious")) {
//     return;                                     // inject a branch outcome
//   }
//
// When MALTHUS_FAILPOINTS is not defined both macros compile to nothing
// (((void)0) / false) — zero overhead, no registry, no strings in the
// binary. When compiled in but not configured, the cost per site is one
// relaxed load of a process-wide generation counter.
//
// Configuration (tests):
//
//   failpoint::Configure("mcs.grant", {.action = failpoint::Action::kYield,
//                                      .probability = 0.5});
//   failpoint::Reset();              // all sites off
//   failpoint::SetSeed(1234);        // reproducible per-thread RNG streams
//
// or from the environment (the chaos CI job):
//
//   MALTHUS_CHAOS="park.spurious=yield:0.2,mcs.grant=delay:0.5:2000"
//   MALTHUS_CHAOS_SEED=987654321
//
// Reproducibility: every probability draw comes from a per-thread xorshift
// stream derived from the global seed and a per-thread ordinal, so a given
// (seed, thread-interleaving) pair replays the same injection decisions.
// The chaos CI job echoes the seed on failure for replay.
#ifndef MALTHUS_SRC_CHAOS_FAILPOINT_H_
#define MALTHUS_SRC_CHAOS_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace malthus {
namespace failpoint {

enum class Action : std::uint8_t {
  kOff = 0,    // Site disabled.
  kYield,      // sched_yield() at the site (forced-preemption window).
  kDelay,      // Spin `delay_iters` CpuRelax iterations at the site.
  kTrigger,    // MALTHUS_FAILPOINT_TRIGGERED returns true (branch injection).
};

struct SiteConfig {
  Action action = Action::kOff;
  // Probability in [0,1] that a hit fires. 1.0 = always.
  double probability = 1.0;
  // Fire at most this many times (0 = unlimited). Lets a test arm a site
  // for exactly one interleaving.
  std::uint64_t max_hits = 0;
  // CpuRelax iterations for kDelay.
  std::uint32_t delay_iters = 1000;
};

struct SiteInfo {
  std::string name;
  SiteConfig config;
  std::uint64_t hits;   // Times Evaluate() was reached while armed.
  std::uint64_t fires;  // Times the action actually executed.
};

// Arms `site` with `config`. Creates the registry entry if the site has not
// been reached yet, so tests can configure before first use.
void Configure(const std::string& site, const SiteConfig& config);

// Disarms every site and zeroes hit/fire counters.
void Reset();

// Seeds the per-thread RNG streams. Threads derive their stream from this
// seed at first draw after the call.
void SetSeed(std::uint64_t seed);
std::uint64_t Seed();

// Times `site` fired (action executed). 0 for unknown sites.
std::uint64_t Fires(const std::string& site);
std::uint64_t Hits(const std::string& site);

// Snapshot of all registered sites (for docs/chaos.md verification and the
// watchdog dump).
std::vector<SiteInfo> Sites();

// Parses MALTHUS_CHAOS ("site=action[:prob[:delay_iters]],...", actions
// yield|delay|trigger) and MALTHUS_CHAOS_SEED. Called once from the first
// evaluated site; safe to call explicitly from test main()s.
void ConfigureFromEnv();

#ifdef MALTHUS_FAILPOINTS

namespace detail {

// Bumped on every Configure/Reset. Sites cache nothing across generations;
// the fast path when nothing is armed is one relaxed load observing 0.
extern std::atomic<std::uint64_t> g_armed_sites;

// Slow path: looks up (registering if needed) `site`, applies probability /
// max_hits, executes kYield/kDelay side effects, and returns true iff the
// site fired with kTrigger (for the _TRIGGERED macro).
bool Evaluate(const char* site);

inline bool Hit(const char* site) {
  if (g_armed_sites.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return Evaluate(site);
}

}  // namespace detail

#define MALTHUS_FAILPOINT(site) \
  ((void)::malthus::failpoint::detail::Hit(site))
#define MALTHUS_FAILPOINT_TRIGGERED(site) \
  (::malthus::failpoint::detail::Hit(site))

// True when fault injection is compiled into this build; tests use it to
// GTEST_SKIP chaos cases in plain builds.
inline constexpr bool kCompiledIn = true;

#else  // !MALTHUS_FAILPOINTS

#define MALTHUS_FAILPOINT(site) ((void)0)
#define MALTHUS_FAILPOINT_TRIGGERED(site) (false)

inline constexpr bool kCompiledIn = false;

#endif  // MALTHUS_FAILPOINTS

}  // namespace failpoint
}  // namespace malthus

#endif  // MALTHUS_SRC_CHAOS_FAILPOINT_H_
