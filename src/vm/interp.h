// A tiny stack-machine bytecode interpreter — the "perl" substrate for the
// Figure-13 experiment (DESIGN.md §2). The paper transliterated RandArray
// to perl to show CR applied through the *condition variable* of an
// interpreter-style lock construct; what matters is (a) interpreted-speed
// execution (absolute throughput far below native) and (b) the lock
// structure, not perl itself. The VM gives us both, deterministically.
//
// Machine model: operand stack of int64, a register file of locals, and a
// set of named arrays owned by the execution context. Control flow is
// absolute-target jumps. Execution is single-threaded per Context.
#ifndef MALTHUS_SRC_VM_INTERP_H_
#define MALTHUS_SRC_VM_INTERP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/rng/xorshift.h"

namespace malthus::vm {

enum class Op : std::uint8_t {
  kPushI,     // push immediate
  kPop,       // drop top
  kDup,       // duplicate top
  kLoadL,     // push locals[imm]
  kStoreL,    // locals[imm] = pop
  kAdd,       // b=pop a=pop push a+b
  kSub,       // push a-b
  kMul,       // push a*b
  kMod,       // push a%b (b != 0)
  kLt,        // push a<b ? 1 : 0
  kRand,      // push next pseudo-random value (context RNG)
  kArrLoad,   // idx=pop; push arrays[imm][idx % len]
  kArrStore,  // v=pop idx=pop; arrays[imm][idx % len] = v
  kJmp,       // pc = imm
  kJnz,       // if pop != 0: pc = imm
  kHalt,
};

struct Instr {
  Op op;
  std::int64_t imm = 0;
};

using Program = std::vector<Instr>;

// Per-thread execution context: stack, locals, arrays, RNG.
class Context {
 public:
  explicit Context(std::uint64_t seed = 1) : rng_(seed) { locals_.resize(16, 0); }

  // Registers an array; returns its id for kArrLoad/kArrStore imm fields.
  int AddArray(std::size_t length);
  // Shares an existing buffer (e.g. the CS array shared across contexts).
  int AddSharedArray(std::vector<std::int64_t>* storage);

  std::vector<std::int64_t>& ArrayAt(int id) { return *arrays_[static_cast<std::size_t>(id)]; }
  std::int64_t local(std::size_t i) const { return locals_[i]; }
  void set_local(std::size_t i, std::int64_t v) { locals_[i] = v; }

 private:
  friend class Interp;
  std::vector<std::int64_t> stack_;
  std::vector<std::int64_t> locals_;
  std::vector<std::vector<std::int64_t>*> arrays_;
  std::vector<std::unique_ptr<std::vector<std::int64_t>>> owned_;
  XorShift64 rng_;
};

struct ExecResult {
  std::uint64_t instructions = 0;
  std::int64_t top = 0;  // top of stack at halt (0 if empty)
};

class Interp {
 public:
  // Runs until kHalt or `max_instructions`. Throws std::runtime_error on
  // malformed programs (stack underflow, bad ids, pc out of range).
  static ExecResult Run(const Program& program, Context& ctx,
                        std::uint64_t max_instructions = UINT64_MAX);
};

// Human-readable disassembly, for tests and debugging.
std::string Disassemble(const Program& program);

}  // namespace malthus::vm

#endif  // MALTHUS_SRC_VM_INTERP_H_
