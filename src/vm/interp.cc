#include "src/vm/interp.h"

#include <memory>
#include <sstream>
#include <stdexcept>

namespace malthus::vm {
namespace {

const char* OpName(Op op) {
  switch (op) {
    case Op::kPushI:
      return "push";
    case Op::kPop:
      return "pop";
    case Op::kDup:
      return "dup";
    case Op::kLoadL:
      return "loadl";
    case Op::kStoreL:
      return "storel";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kMod:
      return "mod";
    case Op::kLt:
      return "lt";
    case Op::kRand:
      return "rand";
    case Op::kArrLoad:
      return "aload";
    case Op::kArrStore:
      return "astore";
    case Op::kJmp:
      return "jmp";
    case Op::kJnz:
      return "jnz";
    case Op::kHalt:
      return "halt";
  }
  return "?";
}

}  // namespace

int Context::AddArray(std::size_t length) {
  owned_.push_back(std::make_unique<std::vector<std::int64_t>>(length, 0));
  arrays_.push_back(owned_.back().get());
  return static_cast<int>(arrays_.size() - 1);
}

int Context::AddSharedArray(std::vector<std::int64_t>* storage) {
  arrays_.push_back(storage);
  return static_cast<int>(arrays_.size() - 1);
}

ExecResult Interp::Run(const Program& program, Context& ctx, std::uint64_t max_instructions) {
  auto& stack = ctx.stack_;
  auto pop = [&stack]() {
    if (stack.empty()) {
      throw std::runtime_error("vm: stack underflow");
    }
    const std::int64_t v = stack.back();
    stack.pop_back();
    return v;
  };

  ExecResult result;
  std::size_t pc = 0;
  while (result.instructions < max_instructions) {
    if (pc >= program.size()) {
      throw std::runtime_error("vm: pc out of range");
    }
    const Instr& ins = program[pc];
    ++result.instructions;
    ++pc;
    switch (ins.op) {
      case Op::kPushI:
        stack.push_back(ins.imm);
        break;
      case Op::kPop:
        (void)pop();
        break;
      case Op::kDup: {
        const std::int64_t v = pop();
        stack.push_back(v);
        stack.push_back(v);
        break;
      }
      case Op::kLoadL:
        stack.push_back(ctx.locals_.at(static_cast<std::size_t>(ins.imm)));
        break;
      case Op::kStoreL:
        ctx.locals_.at(static_cast<std::size_t>(ins.imm)) = pop();
        break;
      case Op::kAdd: {
        const std::int64_t b = pop();
        const std::int64_t a = pop();
        stack.push_back(a + b);
        break;
      }
      case Op::kSub: {
        const std::int64_t b = pop();
        const std::int64_t a = pop();
        stack.push_back(a - b);
        break;
      }
      case Op::kMul: {
        const std::int64_t b = pop();
        const std::int64_t a = pop();
        stack.push_back(a * b);
        break;
      }
      case Op::kMod: {
        const std::int64_t b = pop();
        const std::int64_t a = pop();
        if (b == 0) {
          throw std::runtime_error("vm: mod by zero");
        }
        stack.push_back(a % b);
        break;
      }
      case Op::kLt: {
        const std::int64_t b = pop();
        const std::int64_t a = pop();
        stack.push_back(a < b ? 1 : 0);
        break;
      }
      case Op::kRand:
        stack.push_back(static_cast<std::int64_t>(ctx.rng_.Next() >> 1));
        break;
      case Op::kArrLoad: {
        auto& arr = ctx.ArrayAt(static_cast<int>(ins.imm));
        const std::int64_t idx = pop();
        stack.push_back(arr[static_cast<std::size_t>(idx) % arr.size()]);
        break;
      }
      case Op::kArrStore: {
        auto& arr = ctx.ArrayAt(static_cast<int>(ins.imm));
        const std::int64_t v = pop();
        const std::int64_t idx = pop();
        arr[static_cast<std::size_t>(idx) % arr.size()] = v;
        break;
      }
      case Op::kJmp:
        pc = static_cast<std::size_t>(ins.imm);
        break;
      case Op::kJnz:
        if (pop() != 0) {
          pc = static_cast<std::size_t>(ins.imm);
        }
        break;
      case Op::kHalt:
        result.top = stack.empty() ? 0 : stack.back();
        return result;
    }
  }
  result.top = stack.empty() ? 0 : stack.back();
  return result;
}

std::string Disassemble(const Program& program) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.size(); ++i) {
    os << i << ": " << OpName(program[i].op) << ' ' << program[i].imm << '\n';
  }
  return os.str();
}

}  // namespace malthus::vm
