#include "src/vm/vm_lock.h"

// VmLock is fully inline; build anchor only.
namespace malthus::vm {}
