// VmLock — the perl lock construct (paper §6.10): a mutex, a condition
// variable, and an owner field. Threads waiting for the lock wait on the
// condition variable, not the mutex, so "the underlying mutex rarely
// encounters contention, even if the lock construct is itself contended".
// CR on the mutex is therefore useless; CR is applied through the condvar's
// queue discipline — FIFO (append_probability = 1) versus mostly-LIFO
// (append_probability = 1/1000), exactly the two curves of Figure 13.
//
// The mutex is a classic FIFO MCS lock, as in the paper's experiment.
#ifndef MALTHUS_SRC_VM_VM_LOCK_H_
#define MALTHUS_SRC_VM_VM_LOCK_H_

#include <cstdint>

#include "src/core/cr_condvar.h"
#include "src/locks/mcs.h"
#include "src/platform/thread_registry.h"

namespace malthus::vm {

class VmLock {
 public:
  explicit VmLock(const CrCondVarOptions& cv_opts) : waiters_(cv_opts) {}
  VmLock() : VmLock(CrCondVarOptions{}) {}
  VmLock(const VmLock&) = delete;
  VmLock& operator=(const VmLock&) = delete;

  void lock() {
    const std::uint32_t self = Self().id + 1;  // 0 means unowned
    mutex_.lock();
    while (owner_ != 0) {
      waiters_.Wait(mutex_);
    }
    owner_ = self;
    mutex_.unlock();
  }

  void unlock() {
    mutex_.lock();
    owner_ = 0;
    mutex_.unlock();
    waiters_.Signal();
  }

  bool IsHeld() {
    mutex_.lock();
    const bool held = owner_ != 0;
    mutex_.unlock();
    return held;
  }

 private:
  McsSpinLock mutex_;
  CrCondVar waiters_;
  std::uint32_t owner_ = 0;  // guarded by mutex_
};

}  // namespace malthus::vm

#endif  // MALTHUS_SRC_VM_VM_LOCK_H_
