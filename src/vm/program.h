// Canned VM programs for tests and the Figure-13 benchmark.
#ifndef MALTHUS_SRC_VM_PROGRAM_H_
#define MALTHUS_SRC_VM_PROGRAM_H_

#include <cstdint>

#include "src/vm/interp.h"

namespace malthus::vm {

// The RandArray inner loop, interpreted: repeat `iterations` times
//   idx = rand() ; sum += array[idx % len]
// leaving the running sum in local 0. `array_id` must reference an array
// registered in the executing Context.
Program BuildRandArrayLoop(int array_id, std::int64_t iterations);

// sum of 0..n-1 via a counted loop; exercises arithmetic + control flow.
Program BuildSumLoop(std::int64_t n);

// Writes `value` to array[idx] then reads it back, leaving it on the stack.
Program BuildArrayRoundTrip(int array_id, std::int64_t idx, std::int64_t value);

}  // namespace malthus::vm

#endif  // MALTHUS_SRC_VM_PROGRAM_H_
