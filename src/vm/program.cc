#include "src/vm/program.h"

namespace malthus::vm {

// Register conventions for the loop builders: local0 = accumulator,
// local1 = remaining iteration count.
Program BuildRandArrayLoop(int array_id, std::int64_t iterations) {
  Program p;
  // locals[1] = iterations
  p.push_back({Op::kPushI, iterations});
  p.push_back({Op::kStoreL, 1});
  // locals[0] = 0
  p.push_back({Op::kPushI, 0});
  p.push_back({Op::kStoreL, 0});
  const std::int64_t loop_top = static_cast<std::int64_t>(p.size());
  // sum += array[rand]
  p.push_back({Op::kRand, 0});
  p.push_back({Op::kArrLoad, array_id});
  p.push_back({Op::kLoadL, 0});
  p.push_back({Op::kAdd, 0});
  p.push_back({Op::kStoreL, 0});
  // if (--count) goto loop_top
  p.push_back({Op::kLoadL, 1});
  p.push_back({Op::kPushI, 1});
  p.push_back({Op::kSub, 0});
  p.push_back({Op::kDup, 0});
  p.push_back({Op::kStoreL, 1});
  p.push_back({Op::kJnz, loop_top});
  // return sum
  p.push_back({Op::kLoadL, 0});
  p.push_back({Op::kHalt, 0});
  return p;
}

Program BuildSumLoop(std::int64_t n) {
  Program p;
  p.push_back({Op::kPushI, 0});  // accumulator
  p.push_back({Op::kStoreL, 0});
  p.push_back({Op::kPushI, 0});  // i
  p.push_back({Op::kStoreL, 1});
  const std::int64_t loop_top = static_cast<std::int64_t>(p.size());
  // acc += i
  p.push_back({Op::kLoadL, 0});
  p.push_back({Op::kLoadL, 1});
  p.push_back({Op::kAdd, 0});
  p.push_back({Op::kStoreL, 0});
  // ++i
  p.push_back({Op::kLoadL, 1});
  p.push_back({Op::kPushI, 1});
  p.push_back({Op::kAdd, 0});
  p.push_back({Op::kStoreL, 1});
  // if (i < n) goto loop_top
  p.push_back({Op::kLoadL, 1});
  p.push_back({Op::kPushI, n});
  p.push_back({Op::kLt, 0});
  p.push_back({Op::kJnz, loop_top});
  p.push_back({Op::kLoadL, 0});
  p.push_back({Op::kHalt, 0});
  return p;
}

Program BuildArrayRoundTrip(int array_id, std::int64_t idx, std::int64_t value) {
  Program p;
  p.push_back({Op::kPushI, idx});
  p.push_back({Op::kPushI, value});
  p.push_back({Op::kArrStore, array_id});
  p.push_back({Op::kPushI, idx});
  p.push_back({Op::kArrLoad, array_id});
  p.push_back({Op::kHalt, 0});
  return p;
}

}  // namespace malthus::vm
