#include "src/alloc/splay_heap.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace malthus {
namespace {

constexpr std::size_t kAlign = 16;
constexpr std::size_t kSizeMask = ~static_cast<std::size_t>(1);
constexpr std::size_t kFreeBit = 1;

std::size_t AlignUp(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

// Block layout (sizes include header+footer):
//   [ header: size|free ][ payload / tree links ... ][ footer: size|free ]
// The tree links live in the payload of *free* blocks, so the minimum block
// size must hold them.
struct SplayHeap::Block {
  std::size_t size_and_flags;  // total block size in bytes, low bit = free
  // Tree links; valid only while free.
  Block* left;
  Block* right;
  Block* parent;

  std::size_t size() const { return size_and_flags & kSizeMask; }
  bool is_free() const { return (size_and_flags & kFreeBit) != 0; }
  void set(std::size_t size, bool free_flag) {
    size_and_flags = (size & kSizeMask) | (free_flag ? kFreeBit : 0);
  }
  void* payload() { return reinterpret_cast<std::byte*>(this) + sizeof(std::size_t); }
};

namespace {

constexpr std::size_t kHeaderBytes = sizeof(std::size_t);
constexpr std::size_t kFooterBytes = sizeof(std::size_t);
// Minimum block: header + tree links + footer, aligned.
constexpr std::size_t kMinBlock = 64;

// Ordering key: (size, address). Best-fit with address tie-break keeps the
// tree a total order even with many equal-size blocks.
bool KeyLess(std::size_t size_a, const void* addr_a, std::size_t size_b, const void* addr_b) {
  if (size_a != size_b) {
    return size_a < size_b;
  }
  return addr_a < addr_b;
}

}  // namespace

SplayHeap::SplayHeap(std::size_t arena_bytes) {
  arena_bytes_ = AlignUp(arena_bytes < kMinBlock * 2 ? kMinBlock * 2 : arena_bytes);
  arena_ = std::make_unique<std::byte[]>(arena_bytes_);
  Block* first = reinterpret_cast<Block*>(arena_.get());
  first->set(arena_bytes_, true);
  WriteFooter(first);
  SplayInsert(first);
}

SplayHeap::~SplayHeap() = default;

void SplayHeap::WriteFooter(Block* b) {
  std::byte* end = reinterpret_cast<std::byte*>(b) + b->size();
  std::memcpy(end - kFooterBytes, &b->size_and_flags, kFooterBytes);
}

SplayHeap::Block* SplayHeap::FromPayload(void* ptr) const {
  return reinterpret_cast<Block*>(static_cast<std::byte*>(ptr) - kHeaderBytes);
}

SplayHeap::Block* SplayHeap::NextInArena(Block* b) const {
  std::byte* next = reinterpret_cast<std::byte*>(b) + b->size();
  if (next >= arena_.get() + arena_bytes_) {
    return nullptr;
  }
  return reinterpret_cast<Block*>(next);
}

SplayHeap::Block* SplayHeap::PrevInArena(Block* b) const {
  std::byte* self = reinterpret_cast<std::byte*>(b);
  if (self == arena_.get()) {
    return nullptr;
  }
  std::size_t prev_size_and_flags;
  std::memcpy(&prev_size_and_flags, self - kFooterBytes, kFooterBytes);
  return reinterpret_cast<Block*>(self - (prev_size_and_flags & kSizeMask));
}

void SplayHeap::RotateUp(Block* x) {
  Block* p = x->parent;
  Block* g = p->parent;
  if (p->left == x) {
    p->left = x->right;
    if (x->right != nullptr) {
      x->right->parent = p;
    }
    x->right = p;
  } else {
    p->right = x->left;
    if (x->left != nullptr) {
      x->left->parent = p;
    }
    x->left = p;
  }
  p->parent = x;
  x->parent = g;
  if (g != nullptr) {
    if (g->left == p) {
      g->left = x;
    } else {
      g->right = x;
    }
  } else {
    root_ = x;
  }
}

void SplayHeap::Splay(Block* x) {
  ++splays_;
  while (x->parent != nullptr) {
    Block* p = x->parent;
    Block* g = p->parent;
    if (g == nullptr) {
      RotateUp(x);  // zig
    } else if ((g->left == p) == (p->left == x)) {
      RotateUp(p);  // zig-zig
      RotateUp(x);
    } else {
      RotateUp(x);  // zig-zag
      RotateUp(x);
    }
  }
}

void SplayHeap::SplayInsert(Block* block) {
  block->left = block->right = block->parent = nullptr;
  free_bytes_ += block->size();
  ++free_blocks_;
  if (root_ == nullptr) {
    root_ = block;
    return;
  }
  Block* cur = root_;
  while (true) {
    if (KeyLess(block->size(), block, cur->size(), cur)) {
      if (cur->left == nullptr) {
        cur->left = block;
        block->parent = cur;
        break;
      }
      cur = cur->left;
    } else {
      if (cur->right == nullptr) {
        cur->right = block;
        block->parent = cur;
        break;
      }
      cur = cur->right;
    }
  }
  Splay(block);
}

void SplayHeap::SplayRemove(Block* block) {
  free_bytes_ -= block->size();
  --free_blocks_;
  Splay(block);  // Bring to root.
  Block* left = block->left;
  Block* right = block->right;
  if (left != nullptr) {
    left->parent = nullptr;
  }
  if (right != nullptr) {
    right->parent = nullptr;
  }
  if (left == nullptr) {
    root_ = right;
    return;
  }
  // Splay the maximum of the left subtree; it then has no right child.
  Block* max = left;
  while (max->right != nullptr) {
    max = max->right;
  }
  root_ = left;
  Splay(max);
  max->right = right;
  if (right != nullptr) {
    right->parent = max;
  }
}

SplayHeap::Block* SplayHeap::FindBestFit(std::size_t need) {
  Block* best = nullptr;
  Block* cur = root_;
  while (cur != nullptr) {
    if (cur->size() >= need) {
      best = cur;
      cur = cur->left;  // Try to find something smaller that still fits.
    } else {
      cur = cur->right;
    }
  }
  return best;
}

void* SplayHeap::Allocate(std::size_t bytes) {
  const std::size_t need =
      std::max(kMinBlock, AlignUp(bytes + kHeaderBytes + kFooterBytes));
  Block* block = FindBestFit(need);
  if (block == nullptr) {
    return nullptr;
  }
  SplayRemove(block);

  const std::size_t remainder = block->size() - need;
  if (remainder >= kMinBlock) {
    // Split: head becomes the allocation, tail returns to the tree.
    block->set(need, false);
    WriteFooter(block);
    Block* tail = NextInArena(block);
    tail->set(remainder, true);
    WriteFooter(tail);
    SplayInsert(tail);
  } else {
    block->set(block->size(), false);
    WriteFooter(block);
  }
  ++allocations_;
  return block->payload();
}

void SplayHeap::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  Block* block = FromPayload(ptr);
  assert(!block->is_free() && "double free");

  // Coalesce with the successor.
  Block* next = NextInArena(block);
  if (next != nullptr && next->is_free()) {
    SplayRemove(next);
    block->set(block->size() + next->size(), false);
  }
  // Coalesce with the predecessor.
  Block* prev = PrevInArena(block);
  if (prev != nullptr && prev->is_free()) {
    SplayRemove(prev);
    prev->set(prev->size() + block->size(), false);
    block = prev;
  }
  block->set(block->size(), true);
  WriteFooter(block);
  SplayInsert(block);
}

bool SplayHeap::CheckConsistency() const {
  const std::byte* end = arena_.get() + arena_bytes_;
  const Block* b = reinterpret_cast<const Block*>(arena_.get());
  std::size_t free_bytes = 0;
  std::size_t free_blocks = 0;
  bool prev_free = false;
  while (reinterpret_cast<const std::byte*>(b) < end) {
    const std::size_t size = b->size();
    if (size < kMinBlock || size % kAlign != 0) {
      return false;
    }
    std::size_t footer;
    std::memcpy(&footer, reinterpret_cast<const std::byte*>(b) + size - kFooterBytes,
                kFooterBytes);
    if (footer != b->size_and_flags) {
      return false;
    }
    if (b->is_free()) {
      if (prev_free) {
        return false;  // Adjacent free blocks should have been coalesced.
      }
      free_bytes += size;
      ++free_blocks;
    }
    prev_free = b->is_free();
    b = reinterpret_cast<const Block*>(reinterpret_cast<const std::byte*>(b) + size);
  }
  return reinterpret_cast<const std::byte*>(b) == end && free_bytes == free_bytes_ &&
         free_blocks == free_blocks_;
}

}  // namespace malthus
