// Splay-tree best-fit heap allocator behind one central lock — the stand-in
// for the default Solaris libc allocator the paper uses in the mmicro
// experiment (§6.4): "implemented as a splay tree protected by a central
// mutex. While not scalable, this allocator yields a dense heap and small
// footprint."
//
// Design: a contiguous arena carved into blocks with boundary tags
// (header + footer carry size and a free bit), so Free() coalesces with
// both neighbours in O(1) before inserting into the free tree. The free
// tree is a bottom-up splay tree keyed by (size, address); Allocate()
// splays the best fit (smallest block >= request) to the root, removes it,
// and returns the tail split to the tree when the remainder is usable.
//
// SplayHeap itself is single-threaded; LockedHeap<Lock> adds the paper's
// central mutex. Every malloc/free pair thus acquires the central lock,
// which is the contention the mmicro benchmark measures.
#ifndef MALTHUS_SRC_ALLOC_SPLAY_HEAP_H_
#define MALTHUS_SRC_ALLOC_SPLAY_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace malthus {

class SplayHeap {
 public:
  // Creates a heap over a private arena of `arena_bytes` (rounded up to the
  // block granularity).
  explicit SplayHeap(std::size_t arena_bytes);
  ~SplayHeap();
  SplayHeap(const SplayHeap&) = delete;
  SplayHeap& operator=(const SplayHeap&) = delete;

  // Returns 16-byte-aligned storage for `bytes`, or nullptr if the arena is
  // exhausted (no fallback to the system allocator by design).
  void* Allocate(std::size_t bytes);

  // Returns a block obtained from Allocate. nullptr is a no-op.
  void Free(void* ptr);

  // Diagnostics & test hooks.
  std::size_t FreeBytes() const { return free_bytes_; }
  std::size_t FreeBlockCount() const { return free_blocks_; }
  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t splay_operations() const { return splays_; }
  // Walks the whole arena verifying boundary-tag integrity; test-only.
  bool CheckConsistency() const;

 private:
  struct Block;

  // Splay-tree primitives (keyed by (size, address)).
  void SplayInsert(Block* block);
  void SplayRemove(Block* block);
  Block* FindBestFit(std::size_t need);
  void Splay(Block* x);
  void RotateUp(Block* x);

  Block* FromPayload(void* ptr) const;
  Block* NextInArena(Block* b) const;
  Block* PrevInArena(Block* b) const;
  void WriteFooter(Block* b);

  std::unique_ptr<std::byte[]> arena_;
  std::size_t arena_bytes_;
  Block* root_ = nullptr;
  std::size_t free_bytes_ = 0;
  std::size_t free_blocks_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t splays_ = 0;
};

// The paper's central-mutex allocator: every operation takes `Lock`.
template <typename Lock>
class LockedHeap {
 public:
  explicit LockedHeap(std::size_t arena_bytes) : heap_(arena_bytes) {}

  void* Allocate(std::size_t bytes) {
    lock_.lock();
    void* p = heap_.Allocate(bytes);
    lock_.unlock();
    return p;
  }

  void Free(void* ptr) {
    lock_.lock();
    heap_.Free(ptr);
    lock_.unlock();
  }

  Lock& lock() { return lock_; }
  SplayHeap& heap() { return heap_; }

 private:
  Lock lock_;
  SplayHeap heap_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_ALLOC_SPLAY_HEAP_H_
