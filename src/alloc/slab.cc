#include "src/alloc/slab.h"

namespace malthus {
namespace {

// Bytes currently reserved across all SlabAllocator instances. Signed ops
// are avoided: Add/Sub are balanced by construction (every slab freed in a
// destructor was counted when carved).
std::atomic<std::size_t> g_slab_bytes{0};

}  // namespace

namespace slab_detail {

void AddReservedBytes(std::size_t n) {
  g_slab_bytes.fetch_add(n, std::memory_order_relaxed);
}

void SubReservedBytes(std::size_t n) {
  g_slab_bytes.fetch_sub(n, std::memory_order_relaxed);
}

}  // namespace slab_detail

std::size_t TotalSlabBytesReserved() {
  return g_slab_bytes.load(std::memory_order_relaxed);
}

}  // namespace malthus
