// Typed slab allocator with per-CPU magazines, a depot layer, and
// generation-stamped safe reclamation (Bonwick '94 shape, specialized for
// the waiter-state objects of this library: ThreadCtx and QNode).
//
// Why it exists: the paper's succession protocols let a granter touch a
// waiter's state *after* the grant CAS — the post-grant Wake(), MCSCRN's
// numa_node read. The repo used to make those touches safe by deliberately
// leaking every ThreadCtx and every QNode slab that still held cancelled
// husks at thread exit. That is fine for long-lived bench threads and wrong
// for a server with thread churn. This allocator retires the leak with two
// properties:
//
//   * Type-stable memory. Slot memory is carved from slabs owned by the
//     allocator and freed only when the allocator itself is destroyed (at
//     process exit). A stale pointer into a recycled slot therefore always
//     points at a live, correctly-typed object — a stale touch is
//     *memory-safe* by construction.
//   * Generation stamps. Every slot type T exposes an intrusive
//     `std::atomic<std::uint64_t> slot_gen`, bumped on checkout (odd =
//     checked out) and on return (even = free). A validator that captured
//     {object, generation} while the slot was pinned can later detect
//     recycling with one acquire load and turn the touch into a logical
//     no-op (see ParkerRef in platform/thread_registry.h). The residual
//     race — the generation changing between the check and the touch —
//     degrades to a spurious permit on the slot's new tenant, which the
//     parking litmus test already tolerates and checkout drains.
//
// Layout (akaros/Bonwick magazine shape):
//
//   Checkout/Return ──▶ per-CPU cache (EffectiveCpuCount-sized array,
//                       TinyLock + loaded/previous magazines)
//                          │ magazine exchange
//                          ▼
//                       depot (TinyLock: full/empty magazine lists,
//                       loose-slot list, slab list)
//                          │ slab carve
//                          ▼
//                       aligned ::operator new, placement-new once per slot
//                       (constructed-object caching: T's constructor runs
//                       once per slot lifetime, not once per checkout)
//
// The internal locks are raw test-and-set spinlocks (TinyLock), never this
// repo's queue locks: the queue locks allocate QNodes, and QNodes come from
// a SlabAllocator — using them here would recurse.
#ifndef MALTHUS_SRC_ALLOC_SLAB_H_
#define MALTHUS_SRC_ALLOC_SLAB_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/platform/align.h"
#include "src/platform/cpu.h"
#include "src/platform/sysinfo.h"

namespace malthus {

namespace slab_detail {

// Raw test-and-set spinlock for allocator internals. Critical sections are
// a handful of pointer moves; contention is bounded by the per-CPU fan-in.
class TinyLock {
 public:
  void lock() {
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      CpuRelax();
    }
  }
  void unlock() { flag_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

// Process-wide slab-byte accounting across every SlabAllocator instance
// (defined in slab.cc). Memory-flatness tests assert this stops growing
// once the working set is warm.
void AddReservedBytes(std::size_t n);
void SubReservedBytes(std::size_t n);

}  // namespace slab_detail

// Total bytes currently reserved in slabs across all SlabAllocator
// instances (slot storage only; magazine bookkeeping is excluded).
std::size_t TotalSlabBytesReserved();

// A typed slab allocator. T must be trivially destructible and expose a
// public `std::atomic<std::uint64_t> slot_gen` initialized to 0; the
// allocator owns that field's parity protocol (odd = checked out).
template <typename T>
class SlabAllocator {
  static_assert(std::is_trivially_destructible_v<T>,
                "slab slots are destroyed only at allocator teardown");

 public:
  // A checked-out slot plus the generation stamped at checkout. Callers
  // that hand out wake channels snapshot {obj, gen} while the slot is
  // pinned; IsCurrent() later tells a toucher whether the tenancy ended.
  struct Handle {
    T* obj = nullptr;
    std::uint64_t gen = 0;
  };

  explicit SlabAllocator(std::size_t slots_per_slab = kDefaultSlotsPerSlab)
      : slots_per_slab_(slots_per_slab),
        cache_count_(static_cast<std::size_t>(
            EffectiveCpuCount() > 0 ? EffectiveCpuCount() : 1)),
        caches_(new CpuCache[cache_count_]) {}

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Frees every slab and magazine. Runs at static destruction for the
  // process-wide instances (QNodeSlab, ThreadCtxSlab): thread_local
  // destructors (which return slots) run before static destructors on the
  // main thread, so by the time this runs all well-behaved tenants are
  // gone and LeakSanitizer sees a clean heap. Slots still checked out here
  // (orphaned husks pinned by a dead granter) lose their memory with the
  // slab — safe, because nothing can touch them after process exit.
  ~SlabAllocator() {
    for (Magazine* m : depot_.all_magazines) {
      delete m;
    }
    for (void* slab : depot_.slabs) {
      ::operator delete(slab, std::align_val_t{alignof(T)});
    }
    const std::size_t bytes = depot_.slabs.size() * SlabBytes();
    slab_detail::SubReservedBytes(bytes);
    delete[] caches_;
  }

  // Checks out a slot and stamps its generation odd. The returned object
  // keeps whatever state its previous tenant left (constructed-object
  // caching); callers re-initialize the fields they own.
  Handle Checkout() {
    T* obj = Pop();
    // acq_rel: acquire pairs with the previous tenant's release bump in
    // Return(), ordering its final writes before our first reads of the
    // slot; release publishes the odd parity to generation validators.
    const std::uint64_t gen =
        obj->slot_gen.fetch_add(1, std::memory_order_acq_rel) + 1;
    live_.fetch_add(1, std::memory_order_relaxed);
    return Handle{obj, gen};
  }

  // Returns a slot, stamping its generation even. After this, validators
  // holding the checkout-time generation observe the mismatch and no-op.
  void Return(T* obj) {
    // Release: every write this tenant made to the slot is ordered before
    // the parity flip that lets validators (and the next tenant) move on.
    obj->slot_gen.fetch_add(1, std::memory_order_release);
    live_.fetch_sub(1, std::memory_order_relaxed);
    Push(obj);
  }

  // Current generation of a slot (acquire: pairs with the stamp bumps).
  static std::uint64_t GenerationOf(const T* obj) {
    return obj->slot_gen.load(std::memory_order_acquire);
  }

  // True while the tenancy that observed `gen` at checkout is still live.
  static bool IsCurrent(const T* obj, std::uint64_t gen) {
    return GenerationOf(obj) == gen;
  }

  // Slot bytes reserved by this instance (slabs only). Monotonic while the
  // process runs; flat once the working set is warm.
  std::size_t BytesReserved() const {
    return slab_count_.load(std::memory_order_relaxed) * SlabBytes();
  }

  // Slots currently checked out.
  std::uint64_t SlotsLive() const {
    return live_.load(std::memory_order_relaxed);
  }

  std::size_t SlabCount() const {
    return slab_count_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kDefaultSlotsPerSlab = 32;
  static constexpr std::size_t kMagazineCapacity = 16;

 private:
  struct Magazine {
    T* slots[kMagazineCapacity];
    std::size_t count = 0;
    bool Full() const { return count == kMagazineCapacity; }
    bool Empty() const { return count == 0; }
  };

  // Per-CPU front end. Cache-line aligned so two CPUs' caches never share
  // a line; indexed by CurrentCpu() % cache_count_, which is a locality
  // hint, not an exclusivity guarantee — hence the TinyLock.
  struct alignas(kCacheLineSize) CpuCache {
    slab_detail::TinyLock lock;
    Magazine* loaded = nullptr;
    Magazine* previous = nullptr;
  };

  struct Depot {
    slab_detail::TinyLock lock;
    std::vector<Magazine*> full;
    std::vector<Magazine*> empty;
    std::vector<Magazine*> all_magazines;  // ownership list for teardown
    std::vector<T*> loose;                 // constructed slots in no magazine
    std::vector<void*> slabs;
  };

  std::size_t SlabBytes() const { return slots_per_slab_ * sizeof(T); }

  CpuCache& Cache() {
    const int cpu = CurrentCpu();
    const std::size_t idx =
        cpu >= 0 ? static_cast<std::size_t>(cpu) % cache_count_ : 0;
    return caches_[idx];
  }

  // Depot lock held. Carves one slab into constructed loose slots.
  void AllocateSlabLocked() {
    void* raw = ::operator new(SlabBytes(), std::align_val_t{alignof(T)});
    depot_.slabs.push_back(raw);
    slab_count_.fetch_add(1, std::memory_order_relaxed);
    slab_detail::AddReservedBytes(SlabBytes());
    T* slots = static_cast<T*>(raw);
    depot_.loose.reserve(depot_.loose.size() + slots_per_slab_);
    for (std::size_t i = slots_per_slab_; i-- > 0;) {
      depot_.loose.push_back(new (&slots[i]) T());
    }
  }

  T* Pop() {
    CpuCache& c = Cache();
    c.lock.lock();
    while (true) {
      if (c.loaded != nullptr && !c.loaded->Empty()) {
        T* obj = c.loaded->slots[--c.loaded->count];
        c.lock.unlock();
        return obj;
      }
      if (c.previous != nullptr && !c.previous->Empty()) {
        std::swap(c.loaded, c.previous);
        continue;
      }
      // Magazine round trip: trade our empty loaded magazine for a full
      // one, or fall through to the loose list / a fresh slab.
      depot_.lock.lock();
      if (!depot_.full.empty()) {
        Magazine* full = depot_.full.back();
        depot_.full.pop_back();
        if (c.loaded != nullptr) {
          depot_.empty.push_back(c.loaded);
        }
        c.loaded = full;
        depot_.lock.unlock();
        continue;
      }
      if (depot_.loose.empty()) {
        AllocateSlabLocked();
      }
      T* obj = depot_.loose.back();
      depot_.loose.pop_back();
      depot_.lock.unlock();
      c.lock.unlock();
      return obj;
    }
  }

  void Push(T* obj) {
    CpuCache& c = Cache();
    c.lock.lock();
    while (true) {
      if (c.loaded != nullptr && !c.loaded->Full()) {
        c.loaded->slots[c.loaded->count++] = obj;
        c.lock.unlock();
        return;
      }
      if (c.loaded != nullptr &&
          (c.previous == nullptr || c.previous->Empty())) {
        std::swap(c.loaded, c.previous);
        if (c.loaded == nullptr) {
          c.loaded = GetEmptyMagazine();
        }
        continue;
      }
      // loaded full (or absent) and previous full: push a full magazine to
      // the depot and retry with an empty one.
      depot_.lock.lock();
      if (c.previous != nullptr && c.previous->Full()) {
        depot_.full.push_back(c.previous);
        c.previous = nullptr;
      }
      if (c.loaded == nullptr) {
        c.loaded = GetEmptyMagazineLocked();
        depot_.lock.unlock();
        continue;
      }
      depot_.full.push_back(c.loaded);
      c.loaded = GetEmptyMagazineLocked();
      depot_.lock.unlock();
    }
  }

  Magazine* GetEmptyMagazine() {
    depot_.lock.lock();
    Magazine* m = GetEmptyMagazineLocked();
    depot_.lock.unlock();
    return m;
  }

  // Depot lock held.
  Magazine* GetEmptyMagazineLocked() {
    if (!depot_.empty.empty()) {
      Magazine* m = depot_.empty.back();
      depot_.empty.pop_back();
      return m;
    }
    Magazine* m = new Magazine();
    depot_.all_magazines.push_back(m);
    return m;
  }

  const std::size_t slots_per_slab_;
  const std::size_t cache_count_;
  CpuCache* caches_;
  Depot depot_;
  std::atomic<std::size_t> slab_count_{0};
  std::atomic<std::uint64_t> live_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_ALLOC_SLAB_H_
