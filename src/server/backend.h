// Type-erased KV backend: the hot shared structure the server's workers
// contend on. Implementations front the repo's data structures — minidb
// (memtable + block cache), kchash (Kyoto-style hash cache), simple_lru
// (CEPH-style LRU) — in both the original single-global-lock form and the
// PR 8 sharded form (ShardedTable partitions, one Malthusian lock per
// shard), parameterized by lock registry name, so the sweep harness swaps
// {structure × lock algorithm × shard count} the way the figure benches do.
//
// The virtual-call overhead is identical across variants (the any_lock.h
// argument), so relative comparisons across locks, shard counts, and
// admission settings are unaffected.
#ifndef MALTHUS_SRC_SERVER_BACKEND_H_
#define MALTHUS_SRC_SERVER_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace malthus {

class KvBackend {
 public:
  virtual ~KvBackend() = default;

  // `tid` is the calling worker's dense thread id (Self().id); cache-style
  // backends use it to attribute displacement (footnote 33 — who evicted
  // whose entry). Pass 0 when the caller has no meaningful identity.
  virtual void Put(std::uint64_t key, std::uint64_t value, std::uint32_t tid) = 0;
  // Returns true on hit; on miss implementations may install the key
  // (cache-fill semantics, matching the paper's LRU workload).
  virtual bool Get(std::uint64_t key, std::uint64_t* value, std::uint32_t tid) = 0;
  virtual std::string name() const = 0;

  // Footnote-33 displacement statistics, where the structure tracks them
  // (the LRU-backed structures). Zeros elsewhere.
  struct Displacement {
    std::uint64_t self = 0;
    std::uint64_t extrinsic = 0;
  };
  virtual Displacement displacement() const { return {}; }
  // Shard count of the underlying structure (1 for the unsharded classes).
  virtual std::size_t shards() const { return 1; }
};

// Known structures: "minidb", "kchash", "lru" (the original single-lock
// classes) plus "sharded-minidb", "sharded-kchash", "sharded-lru" (the
// ShardedTable variants; `shards` picks the partition count, 0 =
// DefaultShardCount(), values are rounded up to a power of two). Lock
// names are the any_lock registry subset usable as a structure mutex, plus
// "throttled-<name>" variants that wrap the lock in ThrottledLock (CR
// imposed outside the lock, paper §A.1) — e.g. "throttled-mcs-stp".
// Returns nullptr for unknown combinations.
std::unique_ptr<KvBackend> MakeBackend(const std::string& structure,
                                       const std::string& lock_name,
                                       std::size_t shards = 0);

// Structures and lock names MakeBackend accepts, for sweep registration.
std::vector<std::string> BackendStructureNames();
std::vector<std::string> BackendLockNames();

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_BACKEND_H_
