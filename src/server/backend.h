// Type-erased KV backend: the hot shared structure the server's workers
// contend on. Implementations front the repo's existing single-global-lock
// data structures — minidb (memtable + block cache), kchash (Kyoto-style
// hash cache), simple_lru (CEPH-style LRU) — parameterized by lock registry
// name, so the sweep harness swaps {structure × lock algorithm} the way the
// figure benches do.
//
// The virtual-call overhead is identical across variants (the any_lock.h
// argument), so relative comparisons across locks and admission settings
// are unaffected.
#ifndef MALTHUS_SRC_SERVER_BACKEND_H_
#define MALTHUS_SRC_SERVER_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace malthus {

class KvBackend {
 public:
  virtual ~KvBackend() = default;

  virtual void Put(std::uint64_t key, std::uint64_t value) = 0;
  // Returns true on hit; on miss implementations may install the key
  // (cache-fill semantics, matching the paper's LRU workload).
  virtual bool Get(std::uint64_t key, std::uint64_t* value) = 0;
  virtual std::string name() const = 0;
};

// Known structures: "minidb", "kchash", "lru". Lock names are the any_lock
// registry subset usable as a structure mutex, plus "throttled-<name>"
// variants that wrap the lock in ThrottledLock (CR imposed outside the
// lock, paper §A.1) — e.g. "throttled-mcs-stp". Returns nullptr for
// unknown combinations.
std::unique_ptr<KvBackend> MakeBackend(const std::string& structure,
                                       const std::string& lock_name);

// Structures and lock names MakeBackend accepts, for sweep registration.
std::vector<std::string> BackendStructureNames();
std::vector<std::string> BackendLockNames();

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_BACKEND_H_
