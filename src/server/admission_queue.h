// Bounded admission queue with CoDel queue management — the buffer between
// the open-loop arrival process and the worker pool.
//
// Arrivals tail-drop when the queue is full (the hard backstop bounding
// memory); dequeues consult the CoDel controller with the item's measured
// sojourn time, so a *standing* backlog — the signature of offered load
// beyond capacity — is shed at a controlled, increasing rate until queueing
// delay returns under target. Together the two mechanisms keep the queue
// short enough that served requests meet the latency SLO no matter how far
// offered load exceeds capacity; without them an open-loop overload grows
// the queue (and every request's sojourn) without bound.
//
// Plain FIFO + one mutex + one condvar: the queue itself is deliberately
// not the interesting contention point — the backend's global lock is.
#ifndef MALTHUS_SRC_SERVER_ADMISSION_QUEUE_H_
#define MALTHUS_SRC_SERVER_ADMISSION_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/cr_condvar.h"
#include "src/locks/tas.h"
#include "src/server/codel.h"
#include "src/server/request.h"

namespace malthus {

class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t capacity, bool codel_enabled,
                 const CoDelOptions& codel_opts);
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Enqueues unless the queue is at capacity (tail drop → false) or
  // stopped. Timestamps the enqueue for the sojourn measurement.
  bool TryPush(const ServerRequest& request);

  enum class PopStatus : std::uint8_t {
    kServe,    // item dequeued, sojourn under control — serve it
    kShed,     // item dequeued but CoDel says shed it (standing backlog)
    kTimeout,  // queue stayed empty for the whole timeout
    kStopped,  // Stop() was called — consumers should exit
  };
  struct PopResult {
    PopStatus status = PopStatus::kTimeout;
    ServerRequest request{};
    std::chrono::nanoseconds sojourn{0};
  };

  // Blocks up to `timeout` for an item. Returns kStopped immediately once
  // Stop() has been called (remaining items are recovered via DrainAll).
  PopResult PopFor(std::chrono::nanoseconds timeout);

  // Wakes all blocked consumers and makes subsequent pops return kStopped.
  void Stop();

  // Re-arms a stopped queue (server restart). The owner must have drained
  // it first.
  void Restart();

  // Removes and returns everything still queued (teardown accounting).
  std::vector<ServerRequest> DrainAll();

  std::size_t Size();
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t tail_drops() const {
    return tail_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t codel_sheds() const {
    return codel_sheds_.load(std::memory_order_relaxed);
  }
  // Consumer-side CoDel state; read under no lock for stats only.
  const CoDel& codel() const { return codel_; }

 private:
  struct Item {
    ServerRequest request;
    std::chrono::steady_clock::time_point enqueued;
  };

  const std::size_t capacity_;
  const bool codel_enabled_;
  TtasLock lock_;
  CrCondVar not_empty_;
  std::deque<Item> items_;
  CoDel codel_;  // guarded by lock_ (consulted during pop)
  bool stopped_ = false;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> tail_drops_{0};
  std::atomic<std::uint64_t> codel_sheds_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_ADMISSION_QUEUE_H_
