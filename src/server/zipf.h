// Zipf-distributed key sampling for the KV server's open-loop load
// generator (the YCSB ZipfianGenerator construction, Gray et al.'s
// "Quickly generating billion-record synthetic databases" method): rank r
// is drawn with probability proportional to 1/(r+1)^theta via one uniform
// draw and a closed-form inverse, after an O(N) one-time zeta precompute.
//
// theta = 0.99 is the YCSB default (heavily skewed: the hottest key draws
// ~10% of accesses at N=64k); theta = 0 degenerates to uniform. Ranks are
// optionally scrambled (splitmix64) so "hot" does not mean "adjacent" —
// without scrambling the hottest keys share minidb cache blocks, which is
// itself an interesting (but different) workload.
#ifndef MALTHUS_SRC_SERVER_ZIPF_H_
#define MALTHUS_SRC_SERVER_ZIPF_H_

#include <cstdint>

#include "src/rng/xorshift.h"

namespace malthus {

class ZipfGenerator {
 public:
  // n >= 1 keys; theta in [0, 1). theta == 0 is uniform.
  ZipfGenerator(std::uint64_t n, double theta, bool scramble = true);

  // Draws a key in [0, n). With scrambling, the returned value is a
  // permutation-ish hash of the underlying rank (collisions fold two cold
  // ranks together; the head of the distribution is effectively injective).
  std::uint64_t Next(XorShift64& rng);

  // The underlying rank draw in [0, n), rank 0 hottest. Exposed for
  // distribution tests.
  std::uint64_t NextRank(XorShift64& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }
  // Probability of rank 0 — the hottest key's share of all draws.
  double HeadProbability() const;

 private:
  std::uint64_t n_;
  double theta_;
  bool scramble_;
  double zetan_;      // sum_{i=1..n} 1/i^theta
  double zeta2_;      // sum_{i=1..2} 1/i^theta
  double alpha_;      // 1 / (1 - theta)
  double eta_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_ZIPF_H_
