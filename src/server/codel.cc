#include "src/server/codel.h"

#include <cmath>

namespace malthus {

std::chrono::nanoseconds CoDel::ControlLaw(std::chrono::nanoseconds t) const {
  return t + std::chrono::nanoseconds(static_cast<std::int64_t>(
                 static_cast<double>(opts_.interval.count()) /
                 std::sqrt(static_cast<double>(count_))));
}

bool CoDel::OnDequeue(std::chrono::nanoseconds sojourn,
                      std::chrono::nanoseconds now) {
  if (sojourn < opts_.target) {
    // Below target: any standing backlog has cleared. Leave the dropping
    // state and forget the above-target streak.
    first_above_ = std::chrono::nanoseconds(0);
    if (dropping_) {
      dropping_ = false;
      last_count_ = count_;
    }
    return false;
  }

  if (dropping_) {
    if (now >= drop_next_) {
      ++count_;
      ++drops_;
      drop_next_ = ControlLaw(drop_next_);
      return true;
    }
    return false;
  }

  // Above target but not yet dropping: start (or continue) the streak.
  if (first_above_ == std::chrono::nanoseconds(0)) {
    first_above_ = now + opts_.interval;
    return false;
  }
  if (now < first_above_) {
    return false;
  }

  // Sojourn exceeded target for a full interval: enter the dropping state.
  // If we were dropping recently, resume near the previous rate instead of
  // relearning it from 1 (the standard CoDel restart heuristic).
  dropping_ = true;
  const bool recently = (now - drop_next_) < (8 * opts_.interval);
  count_ = (recently && last_count_ > 2) ? last_count_ - 2 : 1;
  ++drops_;
  drop_next_ = ControlLaw(now);
  return true;
}

}  // namespace malthus
