#include "src/server/loadgen.h"

#include <cmath>
#include <thread>

#include "src/server/server.h"

namespace malthus {

LoadGenerator::LoadGenerator(const LoadGenOptions& opts) : opts_(opts) {
  if (opts_.tenants == 0) {
    opts_.tenants = 1;
  }
  std::vector<double> weights = opts_.tenant_weights;
  weights.resize(opts_.tenants, weights.empty() ? 1.0 : 0.0);
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0.0) {
    weights.assign(opts_.tenants, 1.0);
    total = static_cast<double>(opts_.tenants);
  }
  double cum = 0.0;
  cumulative_weights_.reserve(opts_.tenants);
  for (double w : weights) {
    cum += w / total;
    cumulative_weights_.push_back(cum);
  }
  cumulative_weights_.back() = 1.0;
  zipf_.reserve(opts_.tenants);
  for (std::uint32_t t = 0; t < opts_.tenants; ++t) {
    zipf_.emplace_back(opts_.keys_per_tenant, opts_.zipf_theta);
  }
}

ServerRequest LoadGenerator::NextRequest(XorShift64& rng) {
  const double u =
      static_cast<double>(rng.Next() >> 11) * (1.0 / 9007199254740992.0);
  std::uint32_t tenant = 0;
  while (tenant + 1 < cumulative_weights_.size() &&
         u >= cumulative_weights_[tenant]) {
    ++tenant;
  }
  ServerRequest r;
  r.tenant = tenant;
  r.op = rng.BernoulliP(opts_.put_fraction) ? ServerRequest::Op::kPut
                                            : ServerRequest::Op::kGet;
  r.key = TenantKey(tenant, zipf_[tenant].Next(rng));
  r.value = rng.Next();
  return r;
}

LoadGenStats LoadGenerator::Run(KvServer& server) {
  XorShift64 rng(opts_.seed);
  LoadGenStats stats;
  const double mean_gap_ns = 1e9 / opts_.rate_per_sec;
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + opts_.duration;
  auto next = start;

  while (next < end) {
    auto now = std::chrono::steady_clock::now();
    if (next > now) {
      // Ahead of schedule: sleep the bulk, spin the last stretch (sleep
      // granularity on loaded hosts is a scheduling quantum, far coarser
      // than the inter-arrival gaps at interesting rates).
      const auto gap = next - now;
      if (gap > std::chrono::microseconds(500)) {
        std::this_thread::sleep_for(gap - std::chrono::microseconds(200));
      }
      while ((now = std::chrono::steady_clock::now()) < next) {
      }
    } else if (now - next > stats.max_lag) {
      // Behind schedule: submit immediately, stamped with the scheduled
      // time — the lag shows up in end-to-end latency, not as a lost tick.
      stats.max_lag = now - next;
    }

    ServerRequest r = NextRequest(rng);
    r.arrival = next;
    ++stats.offered;
    if (server.Submit(r)) {
      ++stats.accepted;
    } else {
      ++stats.dropped;
    }

    if (opts_.poisson) {
      // Exponential inter-arrival: -ln(U) * mean, U in (0, 1].
      const double u = (static_cast<double>(rng.Next() >> 11) + 1.0) *
                       (1.0 / 9007199254740992.0);
      next += std::chrono::nanoseconds(
          static_cast<std::int64_t>(-std::log(u) * mean_gap_ns));
    } else {
      next += std::chrono::nanoseconds(static_cast<std::int64_t>(mean_gap_ns));
    }
  }
  stats.actual_duration = std::chrono::steady_clock::now() - start;
  return stats;
}

}  // namespace malthus
