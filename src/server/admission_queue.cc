#include "src/server/admission_queue.h"

namespace malthus {

AdmissionQueue::AdmissionQueue(std::size_t capacity, bool codel_enabled,
                               const CoDelOptions& codel_opts)
    : capacity_(capacity), codel_enabled_(codel_enabled), codel_(codel_opts) {}

bool AdmissionQueue::TryPush(const ServerRequest& request) {
  const auto now = std::chrono::steady_clock::now();
  lock_.lock();
  if (stopped_ || items_.size() >= capacity_) {
    lock_.unlock();
    tail_drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  items_.push_back(Item{request, now});
  lock_.unlock();
  pushed_.fetch_add(1, std::memory_order_relaxed);
  not_empty_.Signal();
  return true;
}

AdmissionQueue::PopResult AdmissionQueue::PopFor(
    std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  lock_.lock();
  while (items_.empty()) {
    if (stopped_) {
      lock_.unlock();
      return PopResult{PopStatus::kStopped, {}, {}};
    }
    if (!not_empty_.WaitUntil(lock_, deadline) && items_.empty()) {
      const bool stopped = stopped_;
      lock_.unlock();
      return PopResult{stopped ? PopStatus::kStopped : PopStatus::kTimeout,
                       {},
                       {}};
    }
  }
  if (stopped_) {
    // Remaining items are drained (and accounted) by the owner via
    // DrainAll(); consumers just leave.
    lock_.unlock();
    return PopResult{PopStatus::kStopped, {}, {}};
  }
  Item item = items_.front();
  items_.pop_front();
  const auto now = std::chrono::steady_clock::now();
  const auto sojourn = now - item.enqueued;
  bool shed = false;
  if (codel_enabled_) {
    shed = codel_.OnDequeue(sojourn, now.time_since_epoch());
  }
  lock_.unlock();
  if (shed) {
    codel_sheds_.fetch_add(1, std::memory_order_relaxed);
    return PopResult{PopStatus::kShed, item.request, sojourn};
  }
  return PopResult{PopStatus::kServe, item.request, sojourn};
}

void AdmissionQueue::Stop() {
  lock_.lock();
  stopped_ = true;
  lock_.unlock();
  not_empty_.Broadcast();
}

void AdmissionQueue::Restart() {
  lock_.lock();
  stopped_ = false;
  lock_.unlock();
}

std::vector<ServerRequest> AdmissionQueue::DrainAll() {
  std::vector<ServerRequest> out;
  lock_.lock();
  out.reserve(items_.size());
  for (const Item& item : items_) {
    out.push_back(item.request);
  }
  items_.clear();
  lock_.unlock();
  return out;
}

std::size_t AdmissionQueue::Size() {
  lock_.lock();
  const std::size_t s = items_.size();
  lock_.unlock();
  return s;
}

}  // namespace malthus
