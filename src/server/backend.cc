#include "src/server/backend.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/core/lifocr.h"
#include "src/core/mcscr.h"
#include "src/core/mcscrn.h"
#include "src/core/throttle.h"
#include "src/kchash/kchash.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/locks/tas.h"
#include "src/locks/ticket.h"
#include "src/minidb/minidb.h"
#include "src/minidb/simple_lru.h"
#include "src/platform/sysinfo.h"
#include "src/sharded/sharded_kchash.h"
#include "src/sharded/sharded_lru.h"
#include "src/sharded/sharded_table.h"

namespace malthus {
namespace {

// Shared sizing across the backend family so throughput comparisons across
// {structure × lock × shards} hold the working set constant.
constexpr std::size_t kMiniDbCacheBlocks = 4096;
constexpr std::size_t kKcHashBuckets = 1 << 16;
constexpr std::size_t kKcHashCapacity = 1 << 15;
constexpr std::size_t kLruCapacity = 1 << 15;

std::string EncodeValue(std::uint64_t value) {
  return std::string(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint64_t DecodeValue(const std::string& s) {
  std::uint64_t v = 0;
  std::memcpy(&v, s.data(), std::min(s.size(), sizeof(v)));
  return v;
}

template <typename Lock>
class MiniDbBackend final : public KvBackend {
 public:
  MiniDbBackend(std::string name, std::size_t shards)
      : name_(std::move(name)), db_(kMiniDbCacheBlocks, shards) {}

  void Put(std::uint64_t key, std::uint64_t value, std::uint32_t /*tid*/) override {
    db_.Put(key, EncodeValue(value));
  }
  bool Get(std::uint64_t key, std::uint64_t* value, std::uint32_t tid) override {
    auto v = db_.Get(key, tid);
    if (!v.has_value()) {
      return false;
    }
    *value = DecodeValue(*v);
    return true;
  }
  std::string name() const override { return name_; }
  Displacement displacement() const override {
    return {db_.block_cache().self_displacements(),
            db_.block_cache().extrinsic_displacements()};
  }
  std::size_t shards() const override { return db_.block_cache().shard_count(); }

 private:
  std::string name_;
  MiniDb<Lock> db_;
};

template <typename Lock>
class KcHashBackend final : public KvBackend {
 public:
  explicit KcHashBackend(std::string name)
      : name_(std::move(name)), db_(kKcHashBuckets, kKcHashCapacity) {}

  void Put(std::uint64_t key, std::uint64_t value, std::uint32_t /*tid*/) override {
    db_.Set(key, EncodeValue(value));
  }
  bool Get(std::uint64_t key, std::uint64_t* value, std::uint32_t /*tid*/) override {
    auto v = db_.Get(key);
    if (!v.has_value()) {
      return false;
    }
    *value = DecodeValue(*v);
    return true;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  LockedKcHash<Lock> db_;
};

template <typename Lock>
class ShardedKcHashBackend final : public KvBackend {
 public:
  ShardedKcHashBackend(std::string name, std::size_t shards)
      : name_(std::move(name)), db_(kKcHashBuckets, kKcHashCapacity, shards) {}

  void Put(std::uint64_t key, std::uint64_t value, std::uint32_t /*tid*/) override {
    db_.Set(key, EncodeValue(value));
  }
  bool Get(std::uint64_t key, std::uint64_t* value, std::uint32_t /*tid*/) override {
    auto v = db_.Get(key);
    if (!v.has_value()) {
      return false;
    }
    *value = DecodeValue(*v);
    return true;
  }
  std::string name() const override { return name_; }
  std::size_t shards() const override { return db_.shard_count(); }

 private:
  std::string name_;
  ShardedKcHash<Lock> db_;
};

template <typename Lock>
class LruBackend final : public KvBackend {
 public:
  explicit LruBackend(std::string name)
      : name_(std::move(name)), cache_(kLruCapacity, /*track_displacement=*/true) {}

  void Put(std::uint64_t key, std::uint64_t value, std::uint32_t tid) override {
    cache_.Insert(key, value, tid);
  }
  bool Get(std::uint64_t key, std::uint64_t* value, std::uint32_t tid) override {
    auto v = cache_.Lookup(key, tid);
    if (!v.has_value()) {
      // Miss installs the key itself — the paper's LRUCache workload, where
      // a miss costs exactly one erase + one insert.
      cache_.Insert(key, key, tid);
      return false;
    }
    *value = *v;
    return true;
  }
  std::string name() const override { return name_; }
  Displacement displacement() const override {
    return {cache_.self_displacements(), cache_.extrinsic_displacements()};
  }

 private:
  std::string name_;
  SimpleLru<Lock> cache_;
};

template <typename Lock>
class ShardedLruBackend final : public KvBackend {
 public:
  ShardedLruBackend(std::string name, std::size_t shards)
      : name_(std::move(name)),
        cache_(kLruCapacity, shards, /*track_displacement=*/true) {}

  void Put(std::uint64_t key, std::uint64_t value, std::uint32_t tid) override {
    cache_.Insert(key, value, tid);
  }
  bool Get(std::uint64_t key, std::uint64_t* value, std::uint32_t tid) override {
    auto v = cache_.Lookup(key, tid);
    if (!v.has_value()) {
      cache_.Insert(key, key, tid);
      return false;
    }
    *value = *v;
    return true;
  }
  std::string name() const override { return name_; }
  Displacement displacement() const override {
    return {cache_.self_displacements(), cache_.extrinsic_displacements()};
  }
  std::size_t shards() const override { return cache_.shard_count(); }

 private:
  std::string name_;
  ShardedLru<Lock> cache_;
};

template <typename Lock>
std::unique_ptr<KvBackend> MakeWithLock(const std::string& structure,
                                        const std::string& full_name,
                                        std::size_t shards) {
  if (structure == "minidb") {
    return std::make_unique<MiniDbBackend<Lock>>(full_name, /*shards=*/1);
  }
  if (structure == "kchash") {
    return std::make_unique<KcHashBackend<Lock>>(full_name);
  }
  if (structure == "lru") {
    return std::make_unique<LruBackend<Lock>>(full_name);
  }
  const std::size_t n = shards == 0 ? DefaultShardCount() : shards;
  if (structure == "sharded-minidb") {
    return std::make_unique<MiniDbBackend<Lock>>(full_name, n);
  }
  if (structure == "sharded-kchash") {
    return std::make_unique<ShardedKcHashBackend<Lock>>(full_name, n);
  }
  if (structure == "sharded-lru") {
    return std::make_unique<ShardedLruBackend<Lock>>(full_name, n);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<KvBackend> MakeBackend(const std::string& structure,
                                       const std::string& lock_name,
                                       std::size_t shards) {
  const std::string full = structure + "/" + lock_name;
  // Throttled variants: CR imposed outside the lock (§A.1). The K is the
  // saturation-oriented static choice — the host's effective parallelism.
  if (lock_name.rfind("throttled-", 0) == 0) {
    const std::string inner = lock_name.substr(10);
    if (inner == "mcs-stp") {
      return MakeWithLock<ThrottledLock<McsStpLock>>(structure, full, shards);
    }
    if (inner == "tas") {
      return MakeWithLock<ThrottledLock<TtasLock>>(structure, full, shards);
    }
    if (inner == "pthread-style") {
      return MakeWithLock<ThrottledLock<PthreadStyleMutex>>(structure, full, shards);
    }
    return nullptr;
  }
  if (lock_name == "tas") {
    return MakeWithLock<TtasLock>(structure, full, shards);
  }
  if (lock_name == "ticket") {
    return MakeWithLock<TicketLock>(structure, full, shards);
  }
  if (lock_name == "pthread-style") {
    return MakeWithLock<PthreadStyleMutex>(structure, full, shards);
  }
  if (lock_name == "mcs-stp") {
    return MakeWithLock<McsStpLock>(structure, full, shards);
  }
  if (lock_name == "mcscr-stp") {
    return MakeWithLock<McscrStpLock>(structure, full, shards);
  }
  if (lock_name == "mcscrn-stp") {
    return MakeWithLock<McscrnStpLock>(structure, full, shards);
  }
  if (lock_name == "lifocr-stp") {
    return MakeWithLock<LifoCrStpLock>(structure, full, shards);
  }
  return nullptr;
}

std::vector<std::string> BackendStructureNames() {
  return {"minidb",         "kchash",         "lru",
          "sharded-minidb", "sharded-kchash", "sharded-lru"};
}

std::vector<std::string> BackendLockNames() {
  return {"tas",         "ticket",      "pthread-style",
          "mcs-stp",     "mcscr-stp",   "mcscrn-stp",
          "lifocr-stp",  "throttled-mcs-stp", "throttled-tas",
          "throttled-pthread-style"};
}

}  // namespace malthus
