#include "src/server/backend.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/core/lifocr.h"
#include "src/core/mcscr.h"
#include "src/core/mcscrn.h"
#include "src/core/throttle.h"
#include "src/kchash/kchash.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/locks/tas.h"
#include "src/locks/ticket.h"
#include "src/minidb/minidb.h"
#include "src/minidb/simple_lru.h"
#include "src/platform/sysinfo.h"

namespace malthus {
namespace {

std::string EncodeValue(std::uint64_t value) {
  return std::string(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint64_t DecodeValue(const std::string& s) {
  std::uint64_t v = 0;
  std::memcpy(&v, s.data(), std::min(s.size(), sizeof(v)));
  return v;
}

template <typename Lock>
class MiniDbBackend final : public KvBackend {
 public:
  explicit MiniDbBackend(std::string name)
      : name_(std::move(name)), db_(/*cache_blocks=*/4096) {}

  void Put(std::uint64_t key, std::uint64_t value) override {
    db_.Put(key, EncodeValue(value));
  }
  bool Get(std::uint64_t key, std::uint64_t* value) override {
    auto v = db_.Get(key);
    if (!v.has_value()) {
      return false;
    }
    *value = DecodeValue(*v);
    return true;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  MiniDb<Lock> db_;
};

template <typename Lock>
class KcHashBackend final : public KvBackend {
 public:
  explicit KcHashBackend(std::string name)
      : name_(std::move(name)),
        db_(/*bucket_count=*/1 << 16, /*capacity=*/1 << 15) {}

  void Put(std::uint64_t key, std::uint64_t value) override {
    db_.Set(key, EncodeValue(value));
  }
  bool Get(std::uint64_t key, std::uint64_t* value) override {
    auto v = db_.Get(key);
    if (!v.has_value()) {
      return false;
    }
    *value = DecodeValue(*v);
    return true;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  LockedKcHash<Lock> db_;
};

template <typename Lock>
class LruBackend final : public KvBackend {
 public:
  explicit LruBackend(std::string name)
      : name_(std::move(name)), cache_(/*max_size=*/1 << 15) {}

  void Put(std::uint64_t key, std::uint64_t value) override {
    cache_.Insert(key, value);
  }
  bool Get(std::uint64_t key, std::uint64_t* value) override {
    auto v = cache_.Lookup(key);
    if (!v.has_value()) {
      // Miss installs the key itself — the paper's LRUCache workload, where
      // a miss costs exactly one erase + one insert.
      cache_.Insert(key, key);
      return false;
    }
    *value = *v;
    return true;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  SimpleLru<Lock> cache_;
};

template <typename Lock>
std::unique_ptr<KvBackend> MakeWithLock(const std::string& structure,
                                        const std::string& full_name) {
  if (structure == "minidb") {
    return std::make_unique<MiniDbBackend<Lock>>(full_name);
  }
  if (structure == "kchash") {
    return std::make_unique<KcHashBackend<Lock>>(full_name);
  }
  if (structure == "lru") {
    return std::make_unique<LruBackend<Lock>>(full_name);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<KvBackend> MakeBackend(const std::string& structure,
                                       const std::string& lock_name) {
  const std::string full = structure + "/" + lock_name;
  // Throttled variants: CR imposed outside the lock (§A.1). The K is the
  // saturation-oriented static choice — the host's effective parallelism.
  if (lock_name.rfind("throttled-", 0) == 0) {
    const std::string inner = lock_name.substr(10);
    if (inner == "mcs-stp") {
      return MakeWithLock<ThrottledLock<McsStpLock>>(structure, full);
    }
    if (inner == "tas") {
      return MakeWithLock<ThrottledLock<TtasLock>>(structure, full);
    }
    if (inner == "pthread-style") {
      return MakeWithLock<ThrottledLock<PthreadStyleMutex>>(structure, full);
    }
    return nullptr;
  }
  if (lock_name == "tas") {
    return MakeWithLock<TtasLock>(structure, full);
  }
  if (lock_name == "ticket") {
    return MakeWithLock<TicketLock>(structure, full);
  }
  if (lock_name == "pthread-style") {
    return MakeWithLock<PthreadStyleMutex>(structure, full);
  }
  if (lock_name == "mcs-stp") {
    return MakeWithLock<McsStpLock>(structure, full);
  }
  if (lock_name == "mcscr-stp") {
    return MakeWithLock<McscrStpLock>(structure, full);
  }
  if (lock_name == "mcscrn-stp") {
    return MakeWithLock<McscrnStpLock>(structure, full);
  }
  if (lock_name == "lifocr-stp") {
    return MakeWithLock<LifoCrStpLock>(structure, full);
  }
  return nullptr;
}

std::vector<std::string> BackendStructureNames() {
  return {"minidb", "kchash", "lru"};
}

std::vector<std::string> BackendLockNames() {
  return {"tas",         "ticket",      "pthread-style",
          "mcs-stp",     "mcscr-stp",   "mcscrn-stp",
          "lifocr-stp",  "throttled-mcs-stp", "throttled-tas",
          "throttled-pthread-style"};
}

}  // namespace malthus
