#include "src/server/zipf.h"

#include <cmath>

namespace malthus {
namespace {

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, bool scramble)
    : n_(n == 0 ? 1 : n), theta_(theta), scramble_(scramble) {
  if (theta_ <= 0.0) {
    theta_ = 0.0;
    zetan_ = zeta2_ = alpha_ = eta_ = 0.0;
    return;
  }
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfGenerator::NextRank(XorShift64& rng) {
  if (theta_ == 0.0) {
    return rng.NextBelow(n_);
  }
  // Gray et al. closed-form inverse: one uniform draw partitions [0, zetan)
  // into the rank-0 mass, the rank-1 mass, and the analytic tail.
  const double u =
      static_cast<double>(rng.Next() >> 11) * (1.0 / 9007199254740992.0);
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double rank = static_cast<double>(n_) *
                      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t r = static_cast<std::uint64_t>(rank);
  return r >= n_ ? n_ - 1 : r;
}

std::uint64_t ZipfGenerator::Next(XorShift64& rng) {
  const std::uint64_t rank = NextRank(rng);
  if (!scramble_) {
    return rank;
  }
  std::uint64_t s = rank;
  return SplitMix64(s) % n_;
}

double ZipfGenerator::HeadProbability() const {
  return theta_ == 0.0 ? 1.0 / static_cast<double>(n_) : 1.0 / zetan_;
}

}  // namespace malthus
