// KvServer — the multi-tenant request-serving front end over the repo's
// single-global-lock data structures, turning the paper's "overthreading
// collapses throughput" claim into a served-traffic SLO story.
//
// Pipeline:
//
//   open-loop arrivals ──Submit()──▶ AdmissionQueue ──▶ worker pool
//        (loadgen.h)      tail-drop │  CoDel shed        │
//                                   ▼                    ▼
//                                shed                CR gate (CrSemaphore,
//                                                    mostly-LIFO): at most
//                                                    K in-flight requests
//                                                    touch the backend
//                                                         │
//                                                         ▼
//                                                  KvBackend (minidb /
//                                                  kchash / lru behind one
//                                                  Malthusian lock)
//
// The CR gate is the paper's concurrency restriction acting as *admission
// control*: no matter how many workers the pool runs (the oversubscription
// axis), only K requests circulate over the hot structure; the surplus
// workers passivate in the semaphore's mostly-LIFO wait queue exactly as
// surplus lock waiters passivate in MCSCR. CoDel + the bounded queue
// convert excess offered load into controlled shedding instead of unbounded
// queueing delay, so the p99 of *served* requests stays flat as offered
// load sweeps past capacity.
//
// Every completed request lands in per-tenant log-bucket histograms:
// end-to-end (scheduled arrival → completion, coordinated-omission-safe)
// and service-only (dequeue → completion, i.e. gate wait + lock wait +
// critical section).
//
// FailPoint sites (see docs/chaos.md): "server.admit" on the submit path,
// "server.shed" on every shed path, "server.dispatch" before the backend
// op.
#ifndef MALTHUS_SRC_SERVER_SERVER_H_
#define MALTHUS_SRC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cr_semaphore.h"
#include "src/metrics/histogram.h"
#include "src/platform/align.h"
#include "src/server/admission_queue.h"
#include "src/server/backend.h"
#include "src/server/codel.h"
#include "src/server/request.h"

namespace malthus {

struct KvServerOptions {
  // Worker pool size. Sweeps oversubscribe this relative to
  // EffectiveCpuCount() to reproduce the paper's excess-thread axis.
  std::size_t workers = 4;
  std::size_t queue_capacity = 4096;

  // Queue management (CoDel). Disabled = plain bounded FIFO: the "no
  // admission control" arm of the sweep, where overload turns into
  // queueing delay instead of shedding.
  bool codel_enabled = true;
  CoDelOptions codel{};

  // CR gate: max requests concurrently in flight over the backend.
  // 0 = EffectiveCpuCount(). Disabled = every worker may dive at the lock.
  bool admission_enabled = true;
  std::uint32_t max_inflight = 0;
  // Mostly-LIFO keeps a warm worker subset circulating (§6.11).
  double gate_append_probability = 1.0 / 1000;
  // Bound on the gate wait; a request that cannot reach the backend within
  // this budget is shed (it would blow its latency SLO anyway). 0 = wait
  // forever.
  std::chrono::nanoseconds gate_timeout{std::chrono::milliseconds(100)};

  // Backend selection (see backend.h). `backend_shards` applies to the
  // "sharded-*" structures: partition count for the ShardedTable layer
  // (0 = DefaultShardCount(), rounded up to a power of two).
  std::string structure = "minidb";
  std::string lock_name = "mcs-stp";
  std::size_t backend_shards = 0;

  std::uint32_t tenants = 1;
};

// Counter + percentile snapshot for one tenant (or the aggregate).
struct TenantStats {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t shed_queue_full = 0;  // tail-dropped at Submit
  std::uint64_t shed_codel = 0;       // shed by CoDel at dequeue
  std::uint64_t shed_gate_timeout = 0;
  std::uint64_t shed_at_stop = 0;  // still queued at Stop()
  std::uint64_t get_hits = 0;
  // Percentiles in nanoseconds.
  std::uint64_t e2e_p50 = 0, e2e_p90 = 0, e2e_p99 = 0, e2e_p999 = 0;
  std::uint64_t svc_p50 = 0, svc_p90 = 0, svc_p99 = 0, svc_p999 = 0;
  std::uint64_t e2e_max = 0;
  double e2e_mean = 0.0;

  std::uint64_t shed_total() const {
    return shed_queue_full + shed_codel + shed_gate_timeout + shed_at_stop;
  }
};

class KvServer {
 public:
  explicit KvServer(const KvServerOptions& opts);
  ~KvServer();
  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Spawns the worker pool. Returns false if the backend combination is
  // unknown. Idempotent while running.
  bool Start();

  // Stops accepting work, joins workers, accounts still-queued requests as
  // shed, and verifies teardown hygiene: every worker drains its QNode
  // zombies and Parker permit before retiring; Stop() then scavenges
  // orphaned husks in a progress-tracking retry loop (bounded stall window
  // + hard deadline) and aborts only if the zombie gauge is genuinely stuck
  // above the Start() baseline — i.e. a granter never released its pin.
  void Stop();

  bool running() const { return running_; }

  // Open-loop entry point: never blocks. False = shed at the tail
  // (queue full), already counted against the tenant.
  bool Submit(const ServerRequest& request);

  // Snapshot of one tenant's counters + percentiles. Tenant ids are taken
  // modulo options().tenants on Submit, so any id is valid here.
  TenantStats StatsFor(std::uint32_t tenant) const;
  // Merged across tenants (histograms merged, then percentiles taken).
  TenantStats Aggregate() const;

  std::size_t QueueDepth() { return queue_.Size(); }
  const AdmissionQueue& queue() const { return queue_; }
  // Gate stats; zeros when admission is disabled.
  std::size_t GateWaiters() const;
  std::uint64_t GateTimeouts() const;

  const KvServerOptions& options() const { return opts_; }
  KvBackend* backend() { return backend_.get(); }

 private:
  // Per-tenant accounting. Cache-line aligned: every worker hammers these
  // on every completion; adjacent tenants must not false-share.
  struct alignas(kCacheLineSize) Tenant {
    std::atomic<std::uint64_t> offered{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> shed_queue_full{0};
    std::atomic<std::uint64_t> shed_codel{0};
    std::atomic<std::uint64_t> shed_gate_timeout{0};
    std::atomic<std::uint64_t> shed_at_stop{0};
    std::atomic<std::uint64_t> get_hits{0};
    LatencyHistogram e2e;
    LatencyHistogram service;
  };

  void WorkerLoop();
  void ServeOne(const ServerRequest& request,
                std::chrono::steady_clock::time_point dequeued);
  Tenant& TenantRef(std::uint32_t tenant) const {
    return *tenants_[tenant % opts_.tenants];
  }
  static TenantStats SnapshotTenant(const Tenant& t);

  KvServerOptions opts_;
  AdmissionQueue queue_;
  std::unique_ptr<KvBackend> backend_;
  std::unique_ptr<CrSemaphore> gate_;  // null when admission disabled
  mutable std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::uint64_t zombie_baseline_ = 0;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_SERVER_H_
