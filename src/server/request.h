// The unit of work flowing through the KV server: one tenant-tagged
// get/put, stamped with its *scheduled* open-loop arrival time.
//
// End-to-end latency is measured from `arrival`, not from when the load
// generator managed to call Submit(): if the generator falls behind the
// arrival schedule, the lag counts against the server's latency numbers
// instead of silently vanishing — the standard coordinated-omission fix.
#ifndef MALTHUS_SRC_SERVER_REQUEST_H_
#define MALTHUS_SRC_SERVER_REQUEST_H_

#include <chrono>
#include <cstdint>

namespace malthus {

struct ServerRequest {
  enum class Op : std::uint8_t { kGet, kPut };

  std::uint32_t tenant = 0;
  Op op = Op::kGet;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  // Scheduled arrival (open-loop); origin of the end-to-end measurement.
  std::chrono::steady_clock::time_point arrival{};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_REQUEST_H_
