// Open-loop load generation: arrival *rate* is the independent variable.
//
// Closed-loop harnesses (every benchmark in bench/fig*) couple the arrival
// process to service completions — N threads each issue the next request
// only after the previous one returns — so overload manifests as reduced
// throughput, never as queueing delay, and tail latency is silently capped
// at N in-flight requests (coordinated omission). Real served traffic is
// open-loop: millions of independent clients arrive on their own schedule,
// indifferent to how the server is coping. This generator reproduces that:
// arrivals follow a fixed schedule (Poisson or fixed-rate) computed up
// front from the rate knob, each request is stamped with its *scheduled*
// arrival time, and if the generator falls behind it submits late without
// dropping ticks — the lag lands in the end-to-end histogram where it
// belongs.
//
// Multi-tenant: each arrival picks a tenant by weight, then a key from the
// tenant's own Zipf distribution over the tenant's private key range.
#ifndef MALTHUS_SRC_SERVER_LOADGEN_H_
#define MALTHUS_SRC_SERVER_LOADGEN_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/server/request.h"
#include "src/server/zipf.h"

namespace malthus {

class KvServer;

struct LoadGenOptions {
  double rate_per_sec = 10000.0;
  // Poisson (exponential inter-arrival) vs fixed-rate arrivals.
  bool poisson = true;
  std::chrono::nanoseconds duration{std::chrono::seconds(1)};

  std::uint32_t tenants = 1;
  // Relative offered-load share per tenant; empty = equal shares. Sized or
  // truncated to `tenants`.
  std::vector<double> tenant_weights{};
  std::uint64_t keys_per_tenant = 65536;
  double zipf_theta = 0.99;
  double put_fraction = 0.1;
  std::uint64_t seed = 1;
};

struct LoadGenStats {
  std::uint64_t offered = 0;   // requests submitted (incl. tail-dropped)
  std::uint64_t accepted = 0;  // Submit() returned true
  std::uint64_t dropped = 0;   // tail-dropped at the admission queue
  // Worst generator lag behind the arrival schedule: how late the busiest
  // submission was. Large lag means the generator (not the server) was the
  // bottleneck and the offered rate was not actually reached.
  std::chrono::nanoseconds max_lag{0};
  std::chrono::nanoseconds actual_duration{0};
  double OfferedRate() const {
    const double secs =
        static_cast<double>(actual_duration.count()) / 1e9;
    return secs > 0 ? static_cast<double>(offered) / secs : 0.0;
  }
};

// Tenant-disjoint key spaces: tenant id in the high bits.
inline std::uint64_t TenantKey(std::uint32_t tenant, std::uint64_t key) {
  return (static_cast<std::uint64_t>(tenant) << 40) | key;
}

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenOptions& opts);

  // Drives the arrival schedule against `server` on the calling thread
  // until `duration` of schedule has been issued. Reentrant across
  // instances; one instance = one arrival stream.
  LoadGenStats Run(KvServer& server);

  // One arrival's worth of request content (tenant, op, key) — exposed so
  // tests and the capacity calibrator can draw from the same workload
  // distribution without the pacing loop.
  ServerRequest NextRequest(XorShift64& rng);

 private:
  LoadGenOptions opts_;
  std::vector<double> cumulative_weights_;
  std::vector<ZipfGenerator> zipf_;  // one per tenant
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_LOADGEN_H_
