// CoDel (Controlled Delay, Nichols & Jacobson, ACM Queue 2012) queue
// management for the KV server's admission queue — the BESS codel.h state
// machine, applied to requests instead of packets.
//
// CoDel watches the *sojourn time* of each dequeued item. If sojourn has
// stayed above `target` for a full `interval`, the queue has a standing
// backlog that serving faster cannot fix, and the controller enters the
// dropping state: it sheds the current item and schedules the next shed at
// interval/sqrt(count), shedding at an increasing rate until sojourn dips
// back under target. Momentary bursts (sojourn spikes shorter than an
// interval) are never shed — that is the property that distinguishes CoDel
// from a naive queue-length or sojourn threshold.
//
// The controller is clock-free: callers pass `now` into OnDequeue(), so
// tests drive the enter/exit-drop transitions with deterministic fake
// timestamps and the server passes steady_clock readings.
#ifndef MALTHUS_SRC_SERVER_CODEL_H_
#define MALTHUS_SRC_SERVER_CODEL_H_

#include <chrono>
#include <cstdint>

namespace malthus {

struct CoDelOptions {
  // Acceptable standing queue delay. The canonical 5 ms works for the
  // request latencies this server targets.
  std::chrono::nanoseconds target{std::chrono::milliseconds(5)};
  // Window sojourn must exceed target continuously before shedding starts;
  // also the initial shed spacing.
  std::chrono::nanoseconds interval{std::chrono::milliseconds(100)};
};

class CoDel {
 public:
  explicit CoDel(const CoDelOptions& opts = {}) : opts_(opts) {}

  // Called once per dequeued item with the item's queue sojourn time and
  // the current timestamp (any consistent monotonic epoch). Returns true if
  // the item should be shed. Single-consumer-side state; callers serialize
  // (the admission queue consults it under its lock).
  bool OnDequeue(std::chrono::nanoseconds sojourn,
                 std::chrono::nanoseconds now);

  bool dropping() const { return dropping_; }
  std::uint64_t drops() const { return drops_; }
  // Sheds scheduled back-to-back in the current dropping episode; the
  // control-law divisor.
  std::uint32_t drop_count() const { return count_; }

  const CoDelOptions& options() const { return opts_; }

 private:
  std::chrono::nanoseconds ControlLaw(std::chrono::nanoseconds t) const;

  CoDelOptions opts_;
  bool dropping_ = false;
  // Time at which a continuously-above-target sojourn justifies shedding;
  // zero when sojourn was last observed below target.
  std::chrono::nanoseconds first_above_{0};
  std::chrono::nanoseconds drop_next_{0};
  std::uint32_t count_ = 0;       // sheds this episode (control-law divisor)
  std::uint32_t last_count_ = 0;  // count_ when the last episode ended
  std::uint64_t drops_ = 0;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SERVER_CODEL_H_
