#include "src/server/server.h"

#include <cstdio>
#include <cstdlib>

#include "src/chaos/failpoint.h"
#include "src/locks/lock_base.h"
#include "src/platform/sysinfo.h"
#include "src/platform/thread_registry.h"

namespace malthus {

KvServer::KvServer(const KvServerOptions& opts)
    : opts_(opts),
      queue_(opts.queue_capacity, opts.codel_enabled, opts.codel) {
  if (opts_.tenants == 0) {
    opts_.tenants = 1;
  }
  tenants_.reserve(opts_.tenants);
  for (std::uint32_t i = 0; i < opts_.tenants; ++i) {
    tenants_.push_back(std::make_unique<Tenant>());
  }
}

KvServer::~KvServer() { Stop(); }

bool KvServer::Start() {
  if (running_) {
    return true;
  }
  backend_ = MakeBackend(opts_.structure, opts_.lock_name, opts_.backend_shards);
  if (backend_ == nullptr) {
    return false;
  }
  if (opts_.admission_enabled) {
    const std::uint32_t k =
        opts_.max_inflight != 0
            ? opts_.max_inflight
            : static_cast<std::uint32_t>(EffectiveCpuCount());
    gate_ = std::make_unique<CrSemaphore>(
        static_cast<std::int64_t>(k),
        CrSemaphoreOptions{.append_probability = opts_.gate_append_probability});
  } else {
    gate_.reset();
  }
  zombie_baseline_ = OutstandingZombieQNodes();
  stop_.store(false, std::memory_order_relaxed);
  queue_.Restart();
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  running_ = true;
  return true;
}

void KvServer::Stop() {
  if (!running_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  queue_.Stop();
  for (std::thread& w : workers_) {
    w.join();
  }
  workers_.clear();
  for (const ServerRequest& r : queue_.DrainAll()) {
    TenantRef(r.tenant).shed_at_stop.fetch_add(1, std::memory_order_relaxed);
  }
  // Teardown hygiene check. Workers reaped their own zombie QNodes before
  // retiring (WorkerLoop epilogue); husks still pinned at thread exit moved
  // to the orphanage, where any thread may scavenge them once their
  // granters store kReclaimed. Drain the gauge back to the Start() baseline
  // with a progress-tracking loop: keep scavenging as long as the count
  // keeps dropping, give up only when it stalls for kStallWindow (or the
  // hard deadline lapses). A gauge stuck above baseline means a granter
  // never released its pin — a genuine husk leak that would accumulate
  // across server restarts, so abort rather than mask it.
  constexpr auto kStallWindow = std::chrono::milliseconds(500);
  constexpr auto kHardDeadline = std::chrono::seconds(5);
  const auto drain_start = std::chrono::steady_clock::now();
  std::uint64_t last = OutstandingZombieQNodes();
  auto last_progress = drain_start;
  while (last > zombie_baseline_) {
    ScavengeOrphanQNodes();
    const std::uint64_t gauge = OutstandingZombieQNodes();
    const auto now = std::chrono::steady_clock::now();
    if (gauge < last) {
      last = gauge;
      last_progress = now;
      continue;
    }
    if (now - last_progress >= kStallWindow || now - drain_start >= kHardDeadline) {
      break;
    }
    std::this_thread::yield();
  }
  ScavengeOrphanQNodes();
  const std::uint64_t outstanding = OutstandingZombieQNodes();
  if (outstanding > zombie_baseline_) {
    std::fprintf(stderr,
                 "[KvServer] teardown leaked %llu zombie QNode(s) "
                 "(baseline %llu) — worker churn left timed-waiter husks\n",
                 static_cast<unsigned long long>(outstanding - zombie_baseline_),
                 static_cast<unsigned long long>(zombie_baseline_));
    std::abort();
  }
  running_ = false;
}

bool KvServer::Submit(const ServerRequest& request) {
  MALTHUS_FAILPOINT("server.admit");
  Tenant& t = TenantRef(request.tenant);
  t.offered.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.TryPush(request)) {
    MALTHUS_FAILPOINT("server.shed");
    t.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void KvServer::WorkerLoop() {
  for (;;) {
    AdmissionQueue::PopResult res =
        queue_.PopFor(std::chrono::milliseconds(20));
    if (res.status == AdmissionQueue::PopStatus::kStopped) {
      break;
    }
    if (res.status == AdmissionQueue::PopStatus::kTimeout) {
      continue;
    }
    if (res.status == AdmissionQueue::PopStatus::kShed) {
      // Standing backlog: CoDel converted this request into a controlled
      // shed instead of letting it (and everything behind it) blow the SLO.
      MALTHUS_FAILPOINT("server.shed");
      TenantRef(res.request.tenant)
          .shed_codel.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ServeOne(res.request, std::chrono::steady_clock::now());
  }
  // Worker retirement: short-lived pool threads must not leak timed-waiter
  // husks. Reap this thread's zombie QNodes (bounded wait for granters to
  // release their pins — anything still pinned when the thread exits lands
  // in the orphanage for Stop() to scavenge) and drain any stale permit so
  // the Parker retires neutral.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (ReapZombieQNodes() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  Self().parker.DrainPermit();
}

void KvServer::ServeOne(const ServerRequest& request,
                        std::chrono::steady_clock::time_point dequeued) {
  MALTHUS_FAILPOINT("server.dispatch");
  Tenant& t = TenantRef(request.tenant);
  bool gated = false;
  if (gate_ != nullptr) {
    // The CR gate: concurrency restriction as admission control. At most K
    // requests are in flight over the backend; surplus workers passivate in
    // the mostly-LIFO wait queue (the same warm-subset dynamics as MCSCR's
    // passive list). A request that cannot reach the backend within the
    // gate budget has already blown its latency SLO — shed it.
    if (opts_.gate_timeout.count() > 0) {
      if (!gate_->TryAcquireFor(opts_.gate_timeout)) {
        MALTHUS_FAILPOINT("server.shed");
        t.shed_gate_timeout.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    } else {
      gate_->Wait();
    }
    gated = true;
  }
  // The worker's dense thread id rides into the backend so cache-style
  // structures can attribute displacement (footnote 33): who evicted whose
  // entry is meaningful only if every server worker passes its real tid.
  const std::uint32_t tid = Self().id;
  std::uint64_t value = 0;
  if (request.op == ServerRequest::Op::kGet) {
    if (backend_->Get(request.key, &value, tid)) {
      t.get_hits.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    backend_->Put(request.key, request.value, tid);
  }
  if (gated) {
    // Anticipatory handover: start the head gate-waiter's wakeup before the
    // permit post so the handoff needs no futex syscall (§5.2).
    gate_->PreparePost();
    gate_->Post();
  }
  const auto end = std::chrono::steady_clock::now();
  const auto e2e = end - request.arrival;
  const auto service = end - dequeued;
  t.e2e.Record(e2e.count() > 0 ? static_cast<std::uint64_t>(e2e.count()) : 0);
  t.service.Record(
      service.count() > 0 ? static_cast<std::uint64_t>(service.count()) : 0);
  t.served.fetch_add(1, std::memory_order_relaxed);
}

TenantStats KvServer::SnapshotTenant(const Tenant& t) {
  TenantStats s;
  s.offered = t.offered.load(std::memory_order_relaxed);
  s.served = t.served.load(std::memory_order_relaxed);
  s.shed_queue_full = t.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_codel = t.shed_codel.load(std::memory_order_relaxed);
  s.shed_gate_timeout = t.shed_gate_timeout.load(std::memory_order_relaxed);
  s.shed_at_stop = t.shed_at_stop.load(std::memory_order_relaxed);
  s.get_hits = t.get_hits.load(std::memory_order_relaxed);
  s.e2e_p50 = t.e2e.Percentile(50);
  s.e2e_p90 = t.e2e.Percentile(90);
  s.e2e_p99 = t.e2e.Percentile(99);
  s.e2e_p999 = t.e2e.Percentile(99.9);
  s.svc_p50 = t.service.Percentile(50);
  s.svc_p90 = t.service.Percentile(90);
  s.svc_p99 = t.service.Percentile(99);
  s.svc_p999 = t.service.Percentile(99.9);
  s.e2e_max = t.e2e.Max();
  s.e2e_mean = t.e2e.Mean();
  return s;
}

TenantStats KvServer::StatsFor(std::uint32_t tenant) const {
  return SnapshotTenant(TenantRef(tenant));
}

TenantStats KvServer::Aggregate() const {
  Tenant merged;
  TenantStats s;
  for (const auto& t : tenants_) {
    s.offered += t->offered.load(std::memory_order_relaxed);
    s.served += t->served.load(std::memory_order_relaxed);
    s.shed_queue_full += t->shed_queue_full.load(std::memory_order_relaxed);
    s.shed_codel += t->shed_codel.load(std::memory_order_relaxed);
    s.shed_gate_timeout +=
        t->shed_gate_timeout.load(std::memory_order_relaxed);
    s.shed_at_stop += t->shed_at_stop.load(std::memory_order_relaxed);
    s.get_hits += t->get_hits.load(std::memory_order_relaxed);
    merged.e2e.Merge(t->e2e);
    merged.service.Merge(t->service);
  }
  s.e2e_p50 = merged.e2e.Percentile(50);
  s.e2e_p90 = merged.e2e.Percentile(90);
  s.e2e_p99 = merged.e2e.Percentile(99);
  s.e2e_p999 = merged.e2e.Percentile(99.9);
  s.svc_p50 = merged.service.Percentile(50);
  s.svc_p90 = merged.service.Percentile(90);
  s.svc_p99 = merged.service.Percentile(99);
  s.svc_p999 = merged.service.Percentile(99.9);
  s.e2e_max = merged.e2e.Max();
  s.e2e_mean = merged.e2e.Mean();
  return s;
}

std::size_t KvServer::GateWaiters() const {
  return gate_ != nullptr ? gate_->WaiterCount() : 0;
}

std::uint64_t KvServer::GateTimeouts() const {
  return gate_ != nullptr ? gate_->Timeouts() : 0;
}

}  // namespace malthus
