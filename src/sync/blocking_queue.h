// Bounded blocking queue — the COZ producer_consumer construction (paper
// §6.7): one mutex, a pair of condition variables signalling not-empty /
// not-full, and a std::deque of values. Lock algorithm and condvar queue
// discipline are both pluggable, which is exactly the experiment: under a
// FIFO lock+condvar each conveyed message costs ~3 lock acquisitions
// (producers block on the full queue and reacquire); under CR the system
// settles into "fast flow" where threads wait on the mutex instead of the
// condvars and each message costs ~2 acquisitions.
#ifndef MALTHUS_SRC_SYNC_BLOCKING_QUEUE_H_
#define MALTHUS_SRC_SYNC_BLOCKING_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>

#include "src/core/cr_condvar.h"

namespace malthus {

template <typename T, typename Lock>
class BoundedBlockingQueue {
 public:
  BoundedBlockingQueue(std::size_t capacity, const CrCondVarOptions& cv_opts)
      : capacity_(capacity), not_empty_(cv_opts), not_full_(cv_opts) {}
  explicit BoundedBlockingQueue(std::size_t capacity)
      : BoundedBlockingQueue(capacity, CrCondVarOptions{}) {}
  BoundedBlockingQueue(const BoundedBlockingQueue&) = delete;
  BoundedBlockingQueue& operator=(const BoundedBlockingQueue&) = delete;

  void Push(T value) {
    lock_.lock();
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    while (items_.size() >= capacity_) {
      futile_waits_.fetch_add(1, std::memory_order_relaxed);
      not_full_.Wait(lock_);
      lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }
    items_.push_back(std::move(value));
    lock_.unlock();
    not_empty_.Signal();
  }

  T Pop() {
    lock_.lock();
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    while (items_.empty()) {
      not_empty_.Wait(lock_);
      lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }
    T value = std::move(items_.front());
    items_.pop_front();
    lock_.unlock();
    not_full_.Signal();
    return value;
  }

  // Timed variants: false on deadline. Each failed condvar wait re-checks
  // the predicate once under the lock (a signal may have raced the timeout
  // and been absorbed by WaitUntil's committed-signal path).
  bool PushUntil(T value, std::chrono::steady_clock::time_point deadline) {
    lock_.lock();
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    while (items_.size() >= capacity_) {
      futile_waits_.fetch_add(1, std::memory_order_relaxed);
      const bool signaled = not_full_.WaitUntil(lock_, deadline);
      lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      if (!signaled && items_.size() >= capacity_) {
        lock_.unlock();
        return false;
      }
    }
    items_.push_back(std::move(value));
    lock_.unlock();
    not_empty_.Signal();
    return true;
  }
  bool PushFor(T value, std::chrono::nanoseconds timeout) {
    return PushUntil(std::move(value), std::chrono::steady_clock::now() + timeout);
  }

  bool PopUntil(T* out, std::chrono::steady_clock::time_point deadline) {
    lock_.lock();
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    while (items_.empty()) {
      const bool signaled = not_empty_.WaitUntil(lock_, deadline);
      lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      if (!signaled && items_.empty()) {
        lock_.unlock();
        return false;
      }
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock_.unlock();
    not_full_.Signal();
    return true;
  }
  bool PopFor(T* out, std::chrono::nanoseconds timeout) {
    return PopUntil(out, std::chrono::steady_clock::now() + timeout);
  }

  bool TryPop(T* out) {
    lock_.lock();
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (items_.empty()) {
      lock_.unlock();
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock_.unlock();
    not_full_.Signal();
    return true;
  }

  std::size_t Size() {
    lock_.lock();
    const std::size_t s = items_.size();
    lock_.unlock();
    return s;
  }

  Lock& lock() { return lock_; }

  // Total mutex acquisitions and producer waits on the full queue — the
  // paper's per-message-cost diagnostics for Figure 10.
  std::uint64_t lock_acquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t futile_waits() const { return futile_waits_.load(std::memory_order_relaxed); }

 private:
  const std::size_t capacity_;
  Lock lock_;
  CrCondVar not_empty_;
  CrCondVar not_full_;
  std::deque<T> items_;
  std::atomic<std::uint64_t> lock_acquisitions_{0};
  std::atomic<std::uint64_t> futile_waits_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SYNC_BLOCKING_QUEUE_H_
