#include "src/sync/thread_pool.h"

#include "src/platform/cpu.h"

namespace malthus {

ThreadPool::ThreadPool(std::size_t workers, const CrCondVarOptions& cv_opts)
    : work_available_(cv_opts), worker_task_counts_(workers, 0) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  lock_.lock();
  shutdown_.store(true, std::memory_order_release);
  lock_.unlock();
  work_available_.Broadcast();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  lock_.lock();
  tasks_.push_back(std::move(task));
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  lock_.unlock();
  work_available_.Signal();
}

void ThreadPool::Drain() {
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

std::vector<std::uint64_t> ThreadPool::TaskCountsPerWorker() const {
  return worker_task_counts_;
}

void ThreadPool::WorkerLoop(std::size_t index) {
  while (true) {
    lock_.lock();
    while (tasks_.empty() && !shutdown_.load(std::memory_order_acquire)) {
      work_available_.Wait(lock_);
    }
    if (tasks_.empty()) {
      lock_.unlock();
      return;  // Shutdown with an empty queue.
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    lock_.unlock();

    task();
    ++worker_task_counts_[index];
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace malthus
