// Central shared blocking buffer pool (paper §6.11): a mutex, a NotEmpty
// condition variable with controllable append probability P, and a
// std::deque of buffer pointers with LIFO allocation. P = 1 reproduces the
// FIFO baseline of Figure 14, P = 0 pure LIFO, and intermediate values the
// sensitivity sweep. A semaphore-gated variant (SemaphoreBufferPool) backs
// the paper's "effectively identical" semaphore experiment.
#ifndef MALTHUS_SRC_SYNC_BUFFER_POOL_H_
#define MALTHUS_SRC_SYNC_BUFFER_POOL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/core/cr_condvar.h"
#include "src/core/cr_semaphore.h"

namespace malthus {

struct PoolBuffer {
  explicit PoolBuffer(std::size_t bytes) : data(bytes, 0) {}
  std::vector<std::uint32_t> data;  // sized in uint32 slots by the pool
};

template <typename Lock>
class BufferPool {
 public:
  BufferPool(std::size_t buffer_count, std::size_t buffer_bytes, const CrCondVarOptions& cv_opts)
      : not_empty_(cv_opts) {
    for (std::size_t i = 0; i < buffer_count; ++i) {
      storage_.push_back(std::make_unique<PoolBuffer>(buffer_bytes / sizeof(std::uint32_t)));
      available_.push_back(storage_.back().get());
    }
  }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  PoolBuffer* Acquire() {
    lock_.lock();
    while (available_.empty()) {
      not_empty_.Wait(lock_);
    }
    // LIFO allocation: the most recently returned buffer is the warmest.
    PoolBuffer* buffer = available_.back();
    available_.pop_back();
    lock_.unlock();
    return buffer;
  }

  void Release(PoolBuffer* buffer) {
    lock_.lock();
    available_.push_back(buffer);
    lock_.unlock();
    not_empty_.Signal();
  }

  std::size_t AvailableCount() {
    lock_.lock();
    const std::size_t n = available_.size();
    lock_.unlock();
    return n;
  }

 private:
  Lock lock_;
  CrCondVar not_empty_;
  std::deque<PoolBuffer*> available_;
  std::vector<std::unique_ptr<PoolBuffer>> storage_;
};

// The semaphore variant: waiting for a buffer blocks on the semaphore, and
// buffer handoff itself needs only a tiny spin-guarded stack.
class SemaphoreBufferPool {
 public:
  SemaphoreBufferPool(std::size_t buffer_count, std::size_t buffer_bytes,
                      const CrSemaphoreOptions& sem_opts)
      : available_sem_(static_cast<std::int64_t>(buffer_count), sem_opts) {
    for (std::size_t i = 0; i < buffer_count; ++i) {
      storage_.push_back(std::make_unique<PoolBuffer>(buffer_bytes / sizeof(std::uint32_t)));
      available_.push_back(storage_.back().get());
    }
  }
  SemaphoreBufferPool(const SemaphoreBufferPool&) = delete;
  SemaphoreBufferPool& operator=(const SemaphoreBufferPool&) = delete;

  PoolBuffer* Acquire() {
    available_sem_.Wait();
    Guard();
    PoolBuffer* buffer = available_.back();
    available_.pop_back();
    Unguard();
    return buffer;
  }

  void Release(PoolBuffer* buffer) {
    Guard();
    available_.push_back(buffer);
    Unguard();
    available_sem_.Post();
  }

 private:
  void Guard() {
    while (guard_.exchange(1, std::memory_order_acquire) != 0) {
      CpuRelax();
    }
  }
  void Unguard() { guard_.store(0, std::memory_order_release); }

  CrSemaphore available_sem_;
  std::atomic<std::uint32_t> guard_{0};
  std::vector<PoolBuffer*> available_;
  std::vector<std::unique_ptr<PoolBuffer>> storage_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SYNC_BUFFER_POOL_H_
