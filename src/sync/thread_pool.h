// Fixed-size thread pool whose idle workers block on a central condition
// variable with a controllable queue discipline (paper §6.11, thread-pool
// discussion): with a FIFO condvar, work is dispatched round-robin and
// execution circulates over *all* workers; with a mostly-LIFO condvar, only
// the worker subset needed to carry the offered load stays active and the
// rest remain parked — CR applied to worker activation.
//
// Per-worker task counts expose the activation spread (Gini over the counts
// quantifies how concentrated the active set is).
#ifndef MALTHUS_SRC_SYNC_THREAD_POOL_H_
#define MALTHUS_SRC_SYNC_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/core/cr_condvar.h"
#include "src/locks/tas.h"

namespace malthus {

class ThreadPool {
 public:
  ThreadPool(std::size_t workers, const CrCondVarOptions& cv_opts);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until the task queue is empty and all workers are idle.
  void Drain();

  std::size_t WorkerCount() const { return worker_task_counts_.size(); }
  std::vector<std::uint64_t> TaskCountsPerWorker() const;

 private:
  void WorkerLoop(std::size_t index);

  TtasLock lock_;
  CrCondVar work_available_;
  std::deque<std::function<void()>> tasks_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> in_flight_{0};
  std::vector<std::uint64_t> worker_task_counts_;  // written by owner worker only
  std::vector<std::thread> workers_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SYNC_THREAD_POOL_H_
