#include "src/sync/buffer_pool.h"

#include "src/locks/mcs.h"

namespace malthus {

template class BufferPool<McsSpinLock>;

}  // namespace malthus
