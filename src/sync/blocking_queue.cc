#include "src/sync/blocking_queue.h"

#include "src/core/mcscr.h"
#include "src/locks/mcs.h"

namespace malthus {

// Instantiation anchors for the template so header diagnostics surface in
// the library build.
template class BoundedBlockingQueue<int, McsSpinLock>;
template class BoundedBlockingQueue<int, McscrStpLock>;

}  // namespace malthus
