// Deadline-bounded acquisition helpers shared by the timed-lock surface.
//
// Every queue lock in this library implements a *native* cancellable
// TryLockUntil (safe mid-chain self-removal — see the cancellation protocol
// in locks/lock_base.h). For locks without one, PollTryLockUntil provides
// the conservative fallback: spin-poll try_lock() with randomized truncated
// exponential backoff until the deadline. It holds no queue position, so
// cancellation is trivially just ceasing to poll — at the cost of
// competitive (barging) admission and a possible near-deadline miss of a
// momentarily free lock. TryLockUntilOrPoll dispatches between the two at
// compile time; AnyLock's virtual default routes through the poll.
#ifndef MALTHUS_SRC_LOCKS_TIMED_H_
#define MALTHUS_SRC_LOCKS_TIMED_H_

#include <chrono>

#include "src/rng/xorshift.h"
#include "src/waiting/backoff.h"

namespace malthus {

// True when L exposes a native deadline-bounded acquire.
template <typename L>
concept HasNativeTimedLock = requires(L& l, std::chrono::steady_clock::time_point d) {
  { l.TryLockUntil(d) } -> std::convertible_to<bool>;
};

template <typename L>
concept HasTryLock = requires(L& l) {
  { l.try_lock() } -> std::convertible_to<bool>;
};

// Conservative fallback: poll try_lock() under backoff until the deadline.
template <typename Lock>
inline bool PollTryLockUntil(Lock& lock, std::chrono::steady_clock::time_point deadline) {
  if (lock.try_lock()) {
    return true;
  }
  ExponentialBackoff backoff(16, 4096);
  XorShift64& rng = ThreadLocalRng();
  while (std::chrono::steady_clock::now() < deadline) {
    backoff.Pause(rng);
    if (lock.try_lock()) {
      return true;
    }
  }
  return false;
}

template <typename Lock>
inline bool PollTryLockFor(Lock& lock, std::chrono::nanoseconds timeout) {
  return PollTryLockUntil(lock, std::chrono::steady_clock::now() + timeout);
}

// Generic dispatch: native timed acquire when the lock has one, spin-poll
// otherwise. Locks with neither (CLH — no safe mid-queue abandonment
// without the full cancellation protocol; NullLock) degrade to a blocking
// lock() that always reports success.
template <typename Lock>
inline bool TryLockUntilOrPoll(Lock& lock, std::chrono::steady_clock::time_point deadline) {
  if constexpr (HasNativeTimedLock<Lock>) {
    return lock.TryLockUntil(deadline);
  } else if constexpr (HasTryLock<Lock>) {
    return PollTryLockUntil(lock, deadline);
  } else {
    lock.lock();
    return true;
  }
}

template <typename Lock>
inline bool TryLockForOrPoll(Lock& lock, std::chrono::nanoseconds timeout) {
  return TryLockUntilOrPoll(lock, std::chrono::steady_clock::now() + timeout);
}

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_TIMED_H_
