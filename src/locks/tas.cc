#include "src/locks/tas.h"

// TtasLock is fully inline; this file exists as a build anchor so the header
// is compiled (and warned about) with the library.
namespace malthus {}
