// Ticket lock with proportional backoff.
//
// Strict FIFO via a fetch-and-add ticket dispenser; global spinning on the
// now-serving counter. A waiter k positions from the head backs off for ~k
// critical-section times between polls. Direct handoff in spirit (the next
// ticket holder is fixed at arrival), so it shares MCS's vulnerability to
// lock-waiter preemption; unlike MCS there is no explicit waiter list, which
// is why ticket locks are hard to adapt to parking (§5.4).
#ifndef MALTHUS_SRC_LOCKS_TICKET_H_
#define MALTHUS_SRC_LOCKS_TICKET_H_

#include <atomic>
#include <cstdint>

#include "src/metrics/admission_log.h"
#include "src/platform/align.h"
#include "src/platform/thread_registry.h"
#include "src/waiting/backoff.h"

namespace malthus {

class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() {
    const std::uint64_t my_ticket = next_.fetch_add(1, std::memory_order_relaxed);
    while (true) {
      const std::uint64_t serving = serving_.load(std::memory_order_acquire);
      if (serving == my_ticket) {
        break;
      }
      ProportionalBackoff(my_ticket - serving, backoff_unit_);
    }
    if (recorder_ != nullptr) {
      recorder_->Record(Self().id);
    }
  }

  bool try_lock() {
    std::uint64_t serving = serving_.load(std::memory_order_relaxed);
    std::uint64_t expected = serving;
    // Acquire the lock only if no one is waiting: next_ == serving_.
    return next_.compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() { serving_.fetch_add(1, std::memory_order_release); }

  void set_recorder(AdmissionLog* recorder) { recorder_ = recorder; }

 private:
  alignas(kCacheLineSize) std::atomic<std::uint64_t> next_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> serving_{0};
  AdmissionLog* recorder_ = nullptr;
  std::uint32_t backoff_unit_ = 32;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_TICKET_H_
