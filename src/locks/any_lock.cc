#include "src/locks/any_lock.h"

#include <mutex>

#include "src/core/lifocr.h"
#include "src/core/loiter.h"
#include "src/core/mcscr.h"
#include "src/core/mcscrn.h"
#include "src/locks/clh.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/locks/tas.h"
#include "src/locks/ticket.h"

namespace malthus {
namespace {

// Degenerate lock whose acquire/release return immediately. Only suitable
// for embarrassingly trivial microbenchmarks; it provides the "ideal lock"
// upper bound in Figure 3.
class NullLock {
 public:
  void lock() {}
  void unlock() {}
};

}  // namespace

std::unique_ptr<AnyLock> MakeLock(const std::string& name) {
  if (name == "null") {
    return std::make_unique<LockAdapter<NullLock>>(name);
  }
  if (name == "std") {
    return std::make_unique<LockAdapter<std::mutex>>(name);
  }
  if (name == "tas") {
    return std::make_unique<LockAdapter<TtasLock>>(name);
  }
  if (name == "ticket") {
    return std::make_unique<LockAdapter<TicketLock>>(name);
  }
  if (name == "clh") {
    return std::make_unique<LockAdapter<ClhLock>>(name);
  }
  if (name == "pthread-style") {
    return std::make_unique<LockAdapter<PthreadStyleMutex>>(name);
  }
  if (name == "mcs-s") {
    return std::make_unique<LockAdapter<McsSpinLock>>(name);
  }
  if (name == "mcs-stp") {
    return std::make_unique<LockAdapter<McsStpLock>>(name);
  }
  if (name == "mcscr-s") {
    return std::make_unique<LockAdapter<McscrSpinLock>>(name);
  }
  if (name == "mcscr-stp") {
    return std::make_unique<LockAdapter<McscrStpLock>>(name);
  }
  if (name == "lifocr-s") {
    return std::make_unique<LockAdapter<LifoCrSpinLock>>(name);
  }
  if (name == "lifocr-stp") {
    return std::make_unique<LockAdapter<LifoCrStpLock>>(name);
  }
  if (name == "loiter") {
    return std::make_unique<LockAdapter<LoiterLock>>(name);
  }
  if (name == "mcscrn-s") {
    return std::make_unique<LockAdapter<McscrnSpinLock>>(name);
  }
  if (name == "mcscrn-stp") {
    return std::make_unique<LockAdapter<McscrnStpLock>>(name);
  }
  return nullptr;
}

std::vector<std::string> AllLockNames() {
  return {"null",    "std",     "tas",      "ticket",     "clh",
          "pthread-style", "mcs-s",   "mcs-stp",  "mcscr-s",    "mcscr-stp",
          "lifocr-s",      "lifocr-stp", "loiter", "mcscrn-s", "mcscrn-stp"};
}

std::vector<std::string> PaperComparisonLockNames() {
  return {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"};
}

}  // namespace malthus
