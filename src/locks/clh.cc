#include "src/locks/clh.h"

#include <cassert>

namespace malthus {

ClhLock::ClhLock() : slots_(kMaxThreads) {
  // The lock starts with a dummy unlocked node as the tail, representing a
  // phantom previous owner that has already released.
  tail_.store(new Node(), std::memory_order_relaxed);
}

ClhLock::~ClhLock() {
  delete tail_.load(std::memory_order_relaxed);
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

ClhLock::Node* ClhLock::MyNode(ThreadId tid) {
  assert(tid < kMaxThreads && "ClhLock supports at most kMaxThreads distinct threads");
  Node* node = slots_[tid].load(std::memory_order_relaxed);
  if (node == nullptr) {
    node = new Node();
    slots_[tid].store(node, std::memory_order_relaxed);
  }
  return node;
}

void ClhLock::lock() {
  ThreadCtx& self = Self();
  Node* me = MyNode(self.id);
  me->locked.store(true, std::memory_order_relaxed);
  Node* pred = tail_.exchange(me, std::memory_order_acq_rel);
  while (pred->locked.load(std::memory_order_acquire)) {
    CpuRelax();
  }
  owner_node_ = me;
  owner_pred_ = pred;
  owner_tid_ = self.id;
  if (recorder_ != nullptr) {
    recorder_->Record(self.id);
  }
}

void ClhLock::unlock() {
  // Adopt the predecessor's node for this thread's next acquisition; our own
  // node stays in the queue until our successor (if any) observes the
  // release below and, in turn, adopts it.
  slots_[owner_tid_].store(owner_pred_, std::memory_order_relaxed);
  owner_node_->locked.store(false, std::memory_order_release);
}

}  // namespace malthus
