// Shared infrastructure for queue-based locks: the queue node, a per-thread
// node pool, and the grant protocol constants.
//
// Node lifecycle: a node is acquired from the calling thread's pool in
// lock() and released back to the *same* thread's pool once the node is
// quiescent (at unlock for MCS-family owners; at grant for LIFO-CR waiters).
// A node is always released by the thread that acquired it, so the pool
// needs no synchronization. Nodes are cache-line sized so waiters spinning
// on their own node never share a line (local spinning, §5.4).
//
// The per-thread pools are clients of the process-wide QNode slab
// (alloc/slab.h): pools refill from the slab in batches and hand everything
// back at thread exit — free nodes directly, cancelled-but-unreclaimed
// husks via the orphanage (ScavengeOrphanQNodes), so thread churn is
// memory-flat. Slab memory is type-stable for the life of the process, so
// a granter's post-grant touch of a recycled node can never fault; the
// node's generation stamp (slot_gen / ctx_gen) turns it into a logical
// no-op as well.
#ifndef MALTHUS_SRC_LOCKS_LOCK_BASE_H_
#define MALTHUS_SRC_LOCKS_LOCK_BASE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/alloc/slab.h"
#include "src/platform/align.h"
#include "src/platform/cpu.h"
#include "src/platform/park.h"
#include "src/platform/thread_registry.h"

namespace malthus {

// Grant-flag values. kWaiting while enqueued; the granter stores kGranted
// with release semantics after publishing any owner-handoff state.
//
// Timed acquisition adds three more states forming the cancellation
// protocol (tombstones, not neighbor-stitching: a timed-out waiter cannot
// safely touch its neighbors' links, but it *can* flip its own flag and
// walk away, leaving the granting owner — who already owns the chain — to
// skip and reclaim the husk):
//
//   kCancelled — waiter-side tombstone. The waiter CASes kWaiting ->
//                kCancelled and abandons the node (ZombieQNode). A failed
//                CAS means a granter won the race and the waiter owns the
//                lock after all.
//   kClaimed   — granter-side pin. Paths that must *link* a node before
//                granting it (MCSCR fairness graft / deficit refill,
//                MCSCRN rotation) first CAS kWaiting -> kClaimed; a
//                claimed node can no longer cancel, so the subsequent
//                splicing is race-free. The waiter's Await exits on any
//                value != kWaiting, so waiters observing kClaimed spin on
//                to kGranted (AwaitGrantCommit).
//   kReclaimed — granter-side release of a cancelled husk, stored with
//                release semantics *after* the granter's last read of the
//                node. The owning thread's arena reaps zombies whose flag
//                reads kReclaimed (acquire), which orders every granter
//                access before reuse.
inline constexpr std::uint32_t kWaiting = 0;
inline constexpr std::uint32_t kGranted = 1;
inline constexpr std::uint32_t kCancelled = 2;
inline constexpr std::uint32_t kClaimed = 3;
inline constexpr std::uint32_t kReclaimed = 4;

struct alignas(kCacheLineSize) QNode {
  // MCS chain / LIFO stack successor link.
  std::atomic<QNode*> next{nullptr};
  // Grant flag; the waiter local-spins (or spin-then-parks) on this.
  std::atomic<std::uint32_t> status{kWaiting};
  // Slab tenancy stamp, owned by QNodeSlab() (odd = checked out by some
  // thread's pool). See alloc/slab.h.
  std::atomic<std::uint64_t> slot_gen{0};
  // The waiting thread's context plus the ThreadCtx tenancy observed when
  // the wait began. Granters never dereference ctx directly — they build a
  // generation-validated ParkerRef via wake_ref(), so a wake aimed at a
  // waiter whose thread has since exited (and whose ThreadCtx slot may have
  // been recycled) is a counted no-op instead of a use-after-free.
  ThreadCtx* ctx = nullptr;
  std::uint64_t ctx_gen = 0;
  ThreadId tid = 0;
  // NUMA node id, used only by MCSCRN.
  std::uint32_t numa_node = 0;
  // Passive/remote list links. Only ever touched while holding the lock that
  // owns the list, so they are plain fields.
  QNode* list_next = nullptr;
  QNode* list_prev = nullptr;

  // Re-initializes per-acquisition state. Pool identity fields are set once.
  void PrepareForWait(ThreadCtx& self) {
    next.store(nullptr, std::memory_order_relaxed);
    status.store(kWaiting, std::memory_order_relaxed);
    ctx = &self;
    ctx_gen = self.slot_gen.load(std::memory_order_relaxed);
    tid = self.id;
    list_next = nullptr;
    list_prev = nullptr;
  }

  // Wake channel for the thread that prepared this node. Safe to copy out
  // before a grant CAS and invoke after it.
  ParkerRef wake_ref() const { return ParkerRef(ctx, ctx_gen); }

  // True while the thread that prepared this node still holds its ThreadCtx
  // tenancy. A node whose owner has detached can only be a tombstone — a
  // live waiter pins its ThreadCtx until its wait resolves — so linking
  // paths (the kClaimed pin) use this as a pre-CAS tripwire.
  bool OwnerCurrent() const {
    return ctx != nullptr &&
           ctx->slot_gen.load(std::memory_order_acquire) == ctx_gen;
  }
};

// Pops a node from the calling thread's pool (allocating if empty).
QNode* AcquireQNode();

// Returns a node to the calling thread's pool. The node must be quiescent:
// no other thread may still hold a reference that it will dereference.
void ReleaseQNode(QNode* node);

// Abandons a cancelled node that a granter may still reference. The node
// parks on the calling thread's zombie list until its status reads
// kReclaimed (stored by the granter after its last access), at which point
// AcquireQNode() reaps it back into the free pool. Must be called by the
// thread that acquired the node.
void ZombieQNode(QNode* node);

// Process-wide count of zombied nodes not yet reaped. Leak tests drain
// activity and assert this returns to zero.
std::uint64_t OutstandingZombieQNodes();

// Reaps the calling thread's reclaimed zombies back into its pool without
// waiting for the next AcquireQNode(), and returns how many of this
// thread's zombies remain pinned by a granter. Threads that churn through
// timed acquisitions and then *exit* (short-lived pool workers) call this
// in a bounded retry loop before retiring: zombies still pinned at arena
// teardown are handed to the process-wide orphanage rather than leaked
// (see NodeArena::~NodeArena), so a non-zero return here is a latency
// concern, not a leak.
std::size_t ReapZombieQNodes();

// Scans the orphanage — zombie nodes whose owning thread exited before a
// granter released its pin — and returns every node whose status reads
// kReclaimed (acquire) to the slab, decrementing the zombie gauge. Any
// thread may call this; KvServer::Stop() drains through it. Returns the
// number of nodes reclaimed by this call.
std::size_t ScavengeOrphanQNodes();

// Orphaned zombie nodes currently parked in the orphanage (subset of
// OutstandingZombieQNodes()). Test/diagnostic surface.
std::size_t OrphanedQNodes();

// The process-wide QNode slab (test/diagnostic surface: memory-flatness
// checks read BytesReserved()/SlotsLive()).
SlabAllocator<QNode>& QNodeSlab();

// A waiter whose Await exited on kClaimed was picked by a linking granter
// (graft/refill/rotation) that has not yet committed the grant; the commit
// is a few stores away. Spin for it.
inline void AwaitGrantCommit(const std::atomic<std::uint32_t>& status) {
  while (status.load(std::memory_order_acquire) != kGranted) {
    CpuRelax();
  }
}

// Spins until `node->next` is non-null. Used on the unlock path when the
// tail CAS fails: an arriving thread has swapped the tail but not yet linked
// itself; the window is a few instructions.
inline QNode* SpinForSuccessor(QNode* node) {
  QNode* next = node->next.load(std::memory_order_acquire);
  while (next == nullptr) {
    next = node->next.load(std::memory_order_acquire);
  }
  return next;
}

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_LOCK_BASE_H_
