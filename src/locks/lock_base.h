// Shared infrastructure for queue-based locks: the queue node, a per-thread
// node pool, and the grant protocol constants.
//
// Node lifecycle: a node is acquired from the calling thread's pool in
// lock() and released back to the *same* thread's pool once the node is
// quiescent (at unlock for MCS-family owners; at grant for LIFO-CR waiters).
// A node is always released by the thread that acquired it, so the pool
// needs no synchronization. Nodes are cache-line sized so waiters spinning
// on their own node never share a line (local spinning, §5.4).
#ifndef MALTHUS_SRC_LOCKS_LOCK_BASE_H_
#define MALTHUS_SRC_LOCKS_LOCK_BASE_H_

#include <atomic>
#include <cstdint>

#include "src/platform/align.h"
#include "src/platform/park.h"
#include "src/platform/thread_registry.h"

namespace malthus {

// Grant-flag values. kWaiting while enqueued; the granter stores kGranted
// with release semantics after publishing any owner-handoff state.
inline constexpr std::uint32_t kWaiting = 0;
inline constexpr std::uint32_t kGranted = 1;

struct alignas(kCacheLineSize) QNode {
  // MCS chain / LIFO stack successor link.
  std::atomic<QNode*> next{nullptr};
  // Grant flag; the waiter local-spins (or spin-then-parks) on this.
  std::atomic<std::uint32_t> status{kWaiting};
  // Wake channel for parking policies.
  Parker* parker = nullptr;
  ThreadId tid = 0;
  // NUMA node id, used only by MCSCRN.
  std::uint32_t numa_node = 0;
  // Passive/remote list links. Only ever touched while holding the lock that
  // owns the list, so they are plain fields.
  QNode* list_next = nullptr;
  QNode* list_prev = nullptr;

  // Re-initializes per-acquisition state. Pool identity fields are set once.
  void PrepareForWait(ThreadCtx& self) {
    next.store(nullptr, std::memory_order_relaxed);
    status.store(kWaiting, std::memory_order_relaxed);
    parker = &self.parker;
    tid = self.id;
    list_next = nullptr;
    list_prev = nullptr;
  }
};

// Pops a node from the calling thread's pool (allocating if empty).
QNode* AcquireQNode();

// Returns a node to the calling thread's pool. The node must be quiescent:
// no other thread may still hold a reference that it will dereference.
void ReleaseQNode(QNode* node);

// Spins until `node->next` is non-null. Used on the unlock path when the
// tail CAS fails: an arriving thread has swapped the tail but not yet linked
// itself; the window is a few instructions.
inline QNode* SpinForSuccessor(QNode* node) {
  QNode* next = node->next.load(std::memory_order_acquire);
  while (next == nullptr) {
    next = node->next.load(std::memory_order_acquire);
  }
  return next;
}

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_LOCK_BASE_H_
