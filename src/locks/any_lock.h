// Type-erased lock handle + a name-based factory.
//
// Benchmarks sweep lock algorithms by name ("mcs-s", "mcscr-stp", ...) the
// way the paper swept LD_PRELOAD interposition libraries; the factory is
// the moral equivalent of setting LD_PRELOAD. The virtual-call overhead is
// identical across algorithms, so relative comparisons are unaffected.
#ifndef MALTHUS_SRC_LOCKS_ANY_LOCK_H_
#define MALTHUS_SRC_LOCKS_ANY_LOCK_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/locks/handover_guard.h"
#include "src/locks/timed.h"
#include "src/metrics/admission_log.h"

namespace malthus {

class AnyLock {
 public:
  virtual ~AnyLock() = default;

  virtual void lock() = 0;
  virtual void unlock() = 0;
  virtual std::string name() const = 0;

  // Non-blocking acquire. Returns false both on contention and for
  // algorithms with no non-blocking path (CLH); LockAdapter overrides it
  // whenever the wrapped lock exposes try_lock.
  virtual bool try_lock() { return false; }

  // Deadline-bounded acquire. The base default is the conservative
  // spin-poll-try_lock-with-backoff fallback (locks/timed.h); LockAdapter
  // forwards to the wrapped lock's native cancellable TryLockUntil when it
  // has one — every queue lock in the registry does (see docs/handover.md
  // for the coverage matrix). Returns false iff the deadline passed without
  // acquisition.
  virtual bool TryLockUntil(std::chrono::steady_clock::time_point deadline) {
    return PollTryLockUntil(*this, deadline);
  }
  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  // Anticipatory handover hint (see locks/handover_guard.h, re-exported
  // here so factory users get the whole opt-in surface from one include):
  // HandoverLockGuard<AnyLock> and PrepareHandoverIfSupported(any_lock)
  // dispatch through this virtual. A no-op for algorithms without
  // wake-ahead; every parking lock in the registry (mcs-stp, mcscr-stp,
  // mcscrn-stp, lifocr-stp, loiter, pthread-style) overrides it — see the
  // coverage matrix in docs/handover.md.
  virtual void PrepareHandover() {}

  // Attaches an admission recorder, if the algorithm supports one.
  virtual void set_recorder(AdmissionLog* /*recorder*/) {}
};

// Wraps any lock that satisfies BasicLockable (and optionally exposes
// set_recorder) into an AnyLock.
template <typename L>
class LockAdapter final : public AnyLock {
 public:
  explicit LockAdapter(std::string lock_name) : name_(std::move(lock_name)) {}
  template <typename... Args>
  LockAdapter(std::string lock_name, Args&&... args)
      : impl_(std::forward<Args>(args)...), name_(std::move(lock_name)) {}

  void lock() override { impl_.lock(); }
  void unlock() override { impl_.unlock(); }
  std::string name() const override { return name_; }

  bool try_lock() override {
    if constexpr (HasTryLock<L>) {
      return impl_.try_lock();
    } else {
      return false;
    }
  }

  // Native timed acquire when available; spin-poll fallback otherwise;
  // locks with neither (null, clh) degrade to a blocking lock() that
  // always reports success.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline) override {
    return TryLockUntilOrPoll(impl_, deadline);
  }

  void PrepareHandover() override {
    if constexpr (requires(L& l) { l.PrepareHandover(); }) {
      impl_.PrepareHandover();
    }
  }

  void set_recorder(AdmissionLog* recorder) override {
    if constexpr (requires(L & l, AdmissionLog* r) { l.set_recorder(r); }) {
      impl_.set_recorder(recorder);
    }
  }

  L& impl() { return impl_; }

 private:
  L impl_;
  std::string name_;
};

// Creates a lock by registry name. Known names:
//   null, std, tas, ticket, clh, pthread-style,
//   mcs-s, mcs-stp, mcscr-s, mcscr-stp,
//   lifocr-s, lifocr-stp, loiter, mcscrn-s, mcscrn-stp
// Returns nullptr for unknown names.
std::unique_ptr<AnyLock> MakeLock(const std::string& name);

// All registry names, in a stable presentation order.
std::vector<std::string> AllLockNames();

// The paper's Figure-3 comparison set: MCS-S, MCS-STP, MCSCR-S, MCSCR-STP.
std::vector<std::string> PaperComparisonLockNames();

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_ANY_LOCK_H_
