// Scope-guard opt-in for anticipatory handover (wake-ahead, §5.2).
//
// The §5.2 cost model: granting a lock to a *spinning* successor costs
// ~100 ns, granting to a *parked* successor costs a kernel wake of 30000+
// cycles — accrued while the lock is logically held. Locks in this library
// therefore expose PrepareHandover(): the owner calls it near the end of
// its critical section, the lock posts the predicted heir's wake permit,
// and by the time unlock() flips the grant flag the heir is runnable (or
// back to spinning) — the kernel wake has been hidden behind the tail of
// the critical section, and the grant itself needs no syscall.
//
// HandoverLockGuard is the drop-in way to opt a call site in: it is a
// std::lock_guard whose destructor fires PrepareHandover() immediately
// before unlock(). That placement yields the minimum overlap (everything
// after the caller's last statement), which already moves the wake syscall
// off the post-release path; call sites that know their critical-section
// tail can instead invoke PrepareHandover() manually even earlier.
//
// Both the guard and PrepareHandoverIfSupported() degrade to no-ops for
// locks without wake-ahead (pure spin policies, std::mutex, ...), so
// generic code can adopt them unconditionally.
#ifndef MALTHUS_SRC_LOCKS_HANDOVER_GUARD_H_
#define MALTHUS_SRC_LOCKS_HANDOVER_GUARD_H_

// Re-exported: generic deadline-bounded acquisition (PollTryLockUntil,
// TryLockUntilOrPoll) travels with the opt-in guard surface so call sites
// get both from one include.
#include "src/locks/timed.h"

namespace malthus {

// Calls lock.PrepareHandover() if the lock provides it; no-op otherwise.
template <typename Lock>
inline void PrepareHandoverIfSupported(Lock& lock) {
  if constexpr (requires { lock.PrepareHandover(); }) {
    lock.PrepareHandover();
  }
}

template <typename Lock>
class HandoverLockGuard {
 public:
  explicit HandoverLockGuard(Lock& lock) : lock_(lock) { lock_.lock(); }
  HandoverLockGuard(const HandoverLockGuard&) = delete;
  HandoverLockGuard& operator=(const HandoverLockGuard&) = delete;

  ~HandoverLockGuard() {
    PrepareHandoverIfSupported(lock_);
    lock_.unlock();
  }

 private:
  Lock& lock_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_HANDOVER_GUARD_H_
