// A Solaris-pthread-style mutex (paper §5.3 and footnote 40): a polite
// test-and-test-and-set lock with a bounded spin phase, a bound on the
// number of concurrent spinners, and a mostly-LIFO stack of parked waiters.
//
// Succession is competitive: unlock stores the lock free, then — only if the
// lock is still free (defer-and-avoid, which both trims the voluntary
// context-switch rate and keeps the ACS stable) — pops one waiter and
// unparks it as heir presumptive. The woken thread re-contends; barging
// arrivals may beat it, so admission is unfair with unbounded bypass.
//
// Correctness notes:
//   * Pops are serialized by a tiny internal spinlock. With a single
//     consumer, Treiber-stack pop is ABA-free (a node cannot be popped and
//     re-pushed behind the popper's back). Pushes stay lock-free.
//   * A waiter that self-acquires while its node is still on the stack CASes
//     the node kOnStack→kAbandoned, transferring ownership (and the duty to
//     free it) to whichever popper later removes it; poppers skip abandoned
//     nodes so a wake is never wasted on a thread that is no longer waiting.
//   * A popper reads node->parker *before* its kOnStack→kPopped CAS and
//     never touches the node afterwards, so the waiter may reuse or free the
//     node as soon as it observes kPopped.
#ifndef MALTHUS_SRC_LOCKS_PTHREAD_STYLE_H_
#define MALTHUS_SRC_LOCKS_PTHREAD_STYLE_H_

#include <atomic>
#include <cstdint>

#include "src/metrics/admission_log.h"
#include "src/platform/align.h"
#include "src/platform/park.h"
#include "src/platform/thread_registry.h"

namespace malthus {

class PthreadStyleMutex {
 public:
  PthreadStyleMutex() = default;
  ~PthreadStyleMutex();
  PthreadStyleMutex(const PthreadStyleMutex&) = delete;
  PthreadStyleMutex& operator=(const PthreadStyleMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  void set_recorder(AdmissionLog* recorder) { recorder_ = recorder; }
  void set_spin_budget(std::uint32_t budget) { spin_budget_ = budget; }
  void set_max_spinners(std::uint32_t n) { max_spinners_ = n; }

  // Instrumentation: wakes skipped because another thread took the lock
  // during the defer window (unpark avoidance).
  std::uint64_t avoided_unparks() const {
    return avoided_unparks_.load(std::memory_order_relaxed);
  }

 private:
  enum WaitState : std::uint32_t { kOnStack = 0, kPopped = 1, kAbandoned = 2 };

  struct alignas(kCacheLineSize) WaitNode {
    std::atomic<std::uint32_t> state{kOnStack};
    WaitNode* next = nullptr;
    Parker* parker = nullptr;
  };

  bool TryAcquire() {
    return word_.load(std::memory_order_relaxed) == 0 &&
           word_.exchange(1, std::memory_order_acquire) == 0;
  }

  void Push(WaitNode* node);
  WaitNode* PopSerialized();
  void WakeOneWaiter();

  alignas(kCacheLineSize) std::atomic<std::uint32_t> word_{0};
  alignas(kCacheLineSize) std::atomic<WaitNode*> stack_{nullptr};
  std::atomic<std::uint32_t> pop_lock_{0};
  std::atomic<std::uint32_t> spinners_{0};
  std::atomic<std::uint64_t> avoided_unparks_{0};
  AdmissionLog* recorder_ = nullptr;
  std::uint32_t spin_budget_ = 512;
  std::uint32_t max_spinners_ = 8;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_PTHREAD_STYLE_H_
