// A Solaris-pthread-style mutex (paper §5.3 and footnote 40): a polite
// test-and-test-and-set lock with a bounded spin phase, a bound on the
// number of concurrent spinners, and a mostly-LIFO stack of parked waiters.
//
// Succession is competitive: unlock stores the lock free, then — only if the
// lock is still free (defer-and-avoid, which both trims the voluntary
// context-switch rate and keeps the ACS stable) — pops one waiter and
// unparks it as heir presumptive. The woken thread re-contends; barging
// arrivals may beat it, so admission is unfair with unbounded bypass.
// Owners can additionally call PrepareHandover() (wake-ahead, §5.2) from
// the critical-section tail: the predicted heir's kernel wakeup then
// overlaps the remaining hold, and the pop-and-unpark at release becomes a
// syscall-free permit post onto a re-spinning waiter.
//
// Correctness notes:
//   * Pops are serialized by a tiny internal spinlock. With a single
//     consumer, Treiber-stack pop is ABA-free (a node cannot be popped and
//     re-pushed behind the popper's back). Pushes stay lock-free.
//   * A waiter that self-acquires while its node is still on the stack CASes
//     the node kOnStack→kAbandoned, transferring ownership (and the duty to
//     free it) to whichever popper later removes it; poppers skip abandoned
//     nodes so a wake is never wasted on a thread that is no longer waiting.
//   * A popper copies node->wake *before* its kOnStack→kPopped CAS and
//     never touches the node afterwards, so the waiter may reuse or free the
//     node as soon as it observes kPopped. The copied ParkerRef is
//     generation-validated: if the waiter's thread has since exited and its
//     ThreadCtx slot was recycled, the late Unpark is a suppressed no-op
//     rather than a poke at a stranger's parker.
#ifndef MALTHUS_SRC_LOCKS_PTHREAD_STYLE_H_
#define MALTHUS_SRC_LOCKS_PTHREAD_STYLE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/metrics/admission_log.h"
#include "src/platform/align.h"
#include "src/platform/park.h"
#include "src/platform/thread_registry.h"

namespace malthus {

class PthreadStyleMutex {
 public:
  PthreadStyleMutex() = default;
  ~PthreadStyleMutex();
  PthreadStyleMutex(const PthreadStyleMutex&) = delete;
  PthreadStyleMutex& operator=(const PthreadStyleMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  // Timed acquisition. A timed-out stack waiter reuses the existing
  // kAbandoned tombstone protocol (self-acquirers already needed it):
  // the kOnStack -> kAbandoned CAS transfers node ownership to whichever
  // popper later removes it. If a popper won the race (kPopped — we were
  // chosen heir), the waiter absorbs the imminent permit, makes one last
  // acquire attempt, and on failure re-dispatches the succession baton via
  // WakeOneWaiter() so a free lock never strands the remaining sleepers.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline);
  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  // Anticipatory handover (wake-ahead, §5.2): called by the owner near the
  // end of its critical section, before unlock(). Predicts the waiter the
  // coming unlock() will pop — the topmost stack node still in kOnStack —
  // and posts its wake permit, so a parked waiter overlaps its kernel
  // wakeup with the critical-section tail and re-spins on its node state;
  // the eventual pop-and-unpark then collapses into a syscall-free permit
  // post. The scan briefly takes the pop lock (poppers delete abandoned
  // nodes, so an unserialized walk could touch freed memory); if a lagging
  // popper from an earlier unlock still holds it, the hint is simply
  // skipped — it is only ever a hint. Succession here is competitive, so
  // mispredictions (a barging acquirer, a fresher push) leave a stale
  // permit, which only degrades that waiter to one re-spin round.
  void PrepareHandover();

  void set_recorder(AdmissionLog* recorder) { recorder_ = recorder; }
  void set_spin_budget(std::uint32_t budget) { spin_budget_ = budget; }
  void set_max_spinners(std::uint32_t n) { max_spinners_ = n; }

  // Instrumentation: wakes skipped because another thread took the lock
  // during the defer window (unpark avoidance).
  std::uint64_t avoided_unparks() const {
    return avoided_unparks_.load(std::memory_order_relaxed);
  }
  // Timed acquisitions that gave up at their deadline.
  std::uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }

 private:
  enum WaitState : std::uint32_t { kOnStack = 0, kPopped = 1, kAbandoned = 2 };

  struct alignas(kCacheLineSize) WaitNode {
    std::atomic<std::uint32_t> state{kOnStack};
    WaitNode* next = nullptr;
    // Generation-validated wake channel (see header note): copied by the
    // popper before the node changes hands.
    ParkerRef wake;
  };

  bool TryAcquire() {
    return word_.load(std::memory_order_relaxed) == 0 &&
           word_.exchange(1, std::memory_order_acquire) == 0;
  }

  void Push(WaitNode* node);
  WaitNode* PopSerialized();
  void WakeOneWaiter();

  alignas(kCacheLineSize) std::atomic<std::uint32_t> word_{0};
  alignas(kCacheLineSize) std::atomic<WaitNode*> stack_{nullptr};
  std::atomic<std::uint32_t> pop_lock_{0};
  std::atomic<std::uint32_t> spinners_{0};
  std::atomic<std::uint64_t> avoided_unparks_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  AdmissionLog* recorder_ = nullptr;
  std::uint32_t spin_budget_ = 512;
  std::uint32_t max_spinners_ = 8;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_PTHREAD_STYLE_H_
