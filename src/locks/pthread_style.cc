#include "src/locks/pthread_style.h"

#include "src/chaos/failpoint.h"
#include "src/platform/cpu.h"
#include "src/rng/xorshift.h"
#include "src/waiting/backoff.h"
#include "src/waiting/policy.h"

namespace malthus {
namespace {

// Cap on the PrepareHandover() stack scan. The hint targets the first
// still-waiting node; walking past a few abandoned nodes covers the common
// case, and bailing early merely skips the hint while bounding how long the
// owner holds the pop lock inside its critical section.
constexpr int kHintScanLimit = 16;

}  // namespace

PthreadStyleMutex::~PthreadStyleMutex() {
  // Precondition: no thread holds or waits on the mutex. Any nodes left on
  // the stack were abandoned by self-acquiring waiters; we own them now.
  WaitNode* node = stack_.load(std::memory_order_acquire);
  while (node != nullptr) {
    WaitNode* next = node->next;
    delete node;
    node = next;
  }
}

void PthreadStyleMutex::Push(WaitNode* node) {
  WaitNode* top = stack_.load(std::memory_order_relaxed);
  do {
    node->next = top;
  } while (!stack_.compare_exchange_weak(top, node, std::memory_order_release,
                                         std::memory_order_relaxed));
}

PthreadStyleMutex::WaitNode* PthreadStyleMutex::PopSerialized() {
  // Caller holds pop_lock_, so we are the only popper: top->next cannot be
  // invalidated between the load and the CAS.
  WaitNode* top = stack_.load(std::memory_order_acquire);
  while (top != nullptr) {
    if (stack_.compare_exchange_weak(top, top->next, std::memory_order_acquire,
                                     std::memory_order_acquire)) {
      return top;
    }
  }
  return nullptr;
}

void PthreadStyleMutex::WakeOneWaiter() {
  // Serialize poppers; blocking (not try) so responsibility for succession
  // is never silently dropped between two racing unlockers.
  while (pop_lock_.exchange(1, std::memory_order_acquire) != 0) {
    CpuRelax();
  }
  while (true) {
    if (stack_.load(std::memory_order_acquire) == nullptr) {
      break;
    }
    // Defer-and-avoid: if some other thread has grabbed the lock during the
    // window, delegate succession to its eventual unlock.
    for (int i = 0; i < 64; ++i) {
      CpuRelax();
    }
    if (word_.load(std::memory_order_acquire) != 0) {
      avoided_unparks_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    WaitNode* node = PopSerialized();
    if (node == nullptr) {
      break;
    }
    // Chaos: widen the pop-vs-timeout window before the heir-selection CAS.
    MALTHUS_FAILPOINT("pthread.pop");
    const ParkerRef wake = node->wake;  // Copy before the CAS: see header note.
    std::uint32_t expected = kOnStack;
    if (node->state.compare_exchange_strong(expected, kPopped, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      wake.Unpark();
      break;
    }
    // Abandoned: the enqueuer self-acquired and transferred ownership to us.
    delete node;
  }
  pop_lock_.store(0, std::memory_order_release);
}

void PthreadStyleMutex::PrepareHandover() {
  if (stack_.load(std::memory_order_acquire) == nullptr) {
    return;  // No waiters: nothing to warm.
  }
  // Serialize against poppers with try-acquire semantics: a popper deletes
  // abandoned nodes, so the scan must exclude it, but the owner must never
  // block inside its critical section for a mere hint.
  if (pop_lock_.exchange(1, std::memory_order_acquire) != 0) {
    return;
  }
  WaitNode* node = stack_.load(std::memory_order_acquire);
  for (int i = 0; node != nullptr && i < kHintScanLimit; ++i) {
    // Nodes reachable from the stack are either pinned by a waiter
    // (kOnStack) or owned by poppers (kAbandoned) — and we hold the pop
    // lock — so the walk cannot touch freed memory. The wake ref is
    // generation-validated, so a raced state transition after this check
    // at worst posts a stale permit — and if the waiter's thread already
    // exited, not even that: the hint is suppressed.
    if (node->state.load(std::memory_order_acquire) == kOnStack) {
      node->wake.WakeAhead();
      break;
    }
    node = node->next;
  }
  pop_lock_.store(0, std::memory_order_release);
}

void PthreadStyleMutex::lock() {
  ThreadCtx& self = Self();
  // Phase 1: bounded polite spinning, capped in the number of concurrent
  // spinners (excess arrivals go straight to parking — self-restriction).
  if (spinners_.load(std::memory_order_relaxed) < max_spinners_) {
    spinners_.fetch_add(1, std::memory_order_relaxed);
    ExponentialBackoff backoff(8, 512);
    XorShift64& rng = ThreadLocalRng();
    for (std::uint32_t i = 0; i < spin_budget_; ++i) {
      if (TryAcquire()) {
        spinners_.fetch_sub(1, std::memory_order_relaxed);
        if (recorder_ != nullptr) {
          recorder_->Record(self.id);
        }
        return;
      }
      backoff.Pause(rng);
    }
    spinners_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Phase 2: enqueue and park.
  WaitNode* node = new WaitNode();
  node->wake = SelfWakeRef(self);
  while (true) {
    node->state.store(kOnStack, std::memory_order_relaxed);
    node->next = nullptr;
    Push(node);
    // Retry once after publishing the node: an unlock that drained between
    // our spin phase and the push would otherwise be a missed wake.
    if (TryAcquire()) {
      std::uint32_t expected = kOnStack;
      if (node->state.compare_exchange_strong(expected, kAbandoned, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        // A future popper frees the node.
        node = nullptr;
      } else {
        // A popper beat us to the node (state == kPopped) and its Unpark is
        // imminent; absorb the permit so it cannot alias a later wait.
        self.parker.Park();
        delete node;
      }
      break;
    }
    while (node->state.load(std::memory_order_acquire) != kPopped) {
      self.parker.Park();
      // Park() returning without kPopped means the permit was a wake-ahead
      // hint (or a stale permit): the pop is imminent. Re-spin (shared
      // pacing — see PostWakeRespin) before re-parking, so the
      // pop-and-unpark lands on a runnable thread and costs no futex wake.
      PostWakeRespin(kMinPostWakeSpin,
                     [&] { return node->state.load(std::memory_order_acquire) == kPopped; });
    }
    if (TryAcquire()) {
      delete node;
      break;
    }
    // Beaten by a barging arrival; re-enqueue (we own the node again).
  }
  if (recorder_ != nullptr) {
    recorder_->Record(self.id);
  }
}

bool PthreadStyleMutex::try_lock() { return TryAcquire(); }

bool PthreadStyleMutex::TryLockUntil(std::chrono::steady_clock::time_point deadline) {
  ThreadCtx& self = Self();
  // Phase 1: the same bounded, spinner-capped spin as lock(). The budget is
  // a few hundred iterations — far below any realistic deadline — so the
  // clock is not consulted until the parking phase.
  if (spinners_.load(std::memory_order_relaxed) < max_spinners_) {
    spinners_.fetch_add(1, std::memory_order_relaxed);
    ExponentialBackoff backoff(8, 512);
    XorShift64& rng = ThreadLocalRng();
    for (std::uint32_t i = 0; i < spin_budget_; ++i) {
      if (TryAcquire()) {
        spinners_.fetch_sub(1, std::memory_order_relaxed);
        if (recorder_ != nullptr) {
          recorder_->Record(self.id);
        }
        return true;
      }
      backoff.Pause(rng);
    }
    spinners_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Phase 2: enqueue and park with a deadline.
  WaitNode* node = new WaitNode();
  node->wake = SelfWakeRef(self);
  while (true) {
    node->state.store(kOnStack, std::memory_order_relaxed);
    node->next = nullptr;
    Push(node);
    // Retry once after publishing the node: an unlock that drained between
    // our spin phase and the push would otherwise be a missed wake.
    if (TryAcquire()) {
      std::uint32_t expected = kOnStack;
      if (node->state.compare_exchange_strong(expected, kAbandoned, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        node = nullptr;  // A future popper frees the node.
      } else {
        // A popper beat us to the node (kPopped); absorb the imminent permit.
        self.parker.Park();
        delete node;
      }
      if (recorder_ != nullptr) {
        recorder_->Record(self.id);
      }
      return true;
    }
    while (node->state.load(std::memory_order_acquire) != kPopped) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        // Chaos: widen the timeout-vs-pop window before abandoning.
        MALTHUS_FAILPOINT("pthread.cancel");
        std::uint32_t expected = kOnStack;
        if (node->state.compare_exchange_strong(expected, kAbandoned, std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
          // The abandoning CAS hands the node to a future popper, which
          // skips it and keeps popping — no wake is wasted on us and no
          // baton is dropped.
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        // kPopped: a popper chose us as heir and its Unpark is imminent.
        // Absorb the permit, make one last attempt, and on failure hand the
        // succession baton onward — the lock may be free with every other
        // waiter parked, and leaving silently would be a lost wakeup.
        self.parker.Park();
        const bool acquired = TryAcquire();
        delete node;
        if (acquired) {
          if (recorder_ != nullptr) {
            recorder_->Record(self.id);
          }
          return true;
        }
        WakeOneWaiter();
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (self.parker.ParkFor(deadline - now)) {
        PostWakeRespin(kMinPostWakeSpin,
                       [&] { return node->state.load(std::memory_order_acquire) == kPopped; });
      }
    }
    if (TryAcquire()) {
      delete node;
      if (recorder_ != nullptr) {
        recorder_->Record(self.id);
      }
      return true;
    }
    // Beaten by a barging arrival after being popped; we own the node again.
    if (std::chrono::steady_clock::now() >= deadline) {
      // We consumed the popper's wake. The lock is held by the barger, whose
      // unlock will re-dispatch — but re-dispatch anyway in case it freed
      // the lock between our TryAcquire and now (defer-and-avoid makes a
      // redundant call cheap and it is never wrong).
      delete node;
      WakeOneWaiter();
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Re-enqueue and keep waiting.
  }
}

void PthreadStyleMutex::unlock() {
  word_.store(0, std::memory_order_release);
  if (stack_.load(std::memory_order_acquire) != nullptr) {
    WakeOneWaiter();
  }
}

}  // namespace malthus
