// Test-and-test-and-set lock with randomized truncated exponential backoff.
//
// Global spinning, competitive succession ("barging"), unbounded unfairness
// (§5.3–5.4, Figure 2). Arriving threads and spinning waiters race for the
// lock word; the backoff damps the thundering herd on release. No waiter
// list is maintained, so the lock is preemption tolerant: ownership is never
// handed to a descheduled thread.
#ifndef MALTHUS_SRC_LOCKS_TAS_H_
#define MALTHUS_SRC_LOCKS_TAS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/metrics/admission_log.h"
#include "src/platform/align.h"
#include "src/platform/thread_registry.h"
#include "src/rng/xorshift.h"
#include "src/waiting/backoff.h"

namespace malthus {

class TtasLock {
 public:
  TtasLock() = default;
  TtasLock(const TtasLock&) = delete;
  TtasLock& operator=(const TtasLock&) = delete;

  void lock() {
    ExponentialBackoff backoff(backoff_floor_, backoff_ceiling_);
    XorShift64& rng = ThreadLocalRng();
    while (true) {
      // Test: spin on a read-only load to avoid write-invalidation storms.
      if (word_.load(std::memory_order_relaxed) == 0) {
        if (anderson_recheck_) {
          // Anderson's thundering-herd damper (paper §A.1): after observing
          // the lock free, delay a short random period and re-check before
          // attempting the atomic, so racing observers spread out.
          const std::uint32_t delay = 1 + static_cast<std::uint32_t>(rng.NextBelow(64));
          for (std::uint32_t i = 0; i < delay; ++i) {
            CpuRelax();
          }
          if (word_.load(std::memory_order_relaxed) != 0) {
            backoff.Pause(rng);
            continue;
          }
        }
        if (word_.exchange(1, std::memory_order_acquire) == 0) {
          break;
        }
      }
      backoff.Pause(rng);
    }
    if (recorder_ != nullptr) {
      recorder_->Record(Self().id);
    }
  }

  bool try_lock() {
    return word_.load(std::memory_order_relaxed) == 0 &&
           word_.exchange(1, std::memory_order_acquire) == 0;
  }

  // Timed acquisition: the same backoff-paced global spin, bounded by the
  // deadline. There is no waiter list, so cancellation is trivially just
  // ceasing to spin — no tombstones, no succession duty. The clock is
  // probed once per backoff round (the pauses are the dominant cost).
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline) {
    ExponentialBackoff backoff(backoff_floor_, backoff_ceiling_);
    XorShift64& rng = ThreadLocalRng();
    while (true) {
      if (try_lock()) {
        if (recorder_ != nullptr) {
          recorder_->Record(Self().id);
        }
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      backoff.Pause(rng);
    }
  }
  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  void unlock() { word_.store(0, std::memory_order_release); }

  void set_recorder(AdmissionLog* recorder) { recorder_ = recorder; }
  void set_backoff(std::uint32_t floor, std::uint32_t ceiling) {
    backoff_floor_ = floor;
    backoff_ceiling_ = ceiling;
  }
  void set_anderson_recheck(bool enabled) { anderson_recheck_ = enabled; }

 private:
  alignas(kCacheLineSize) std::atomic<std::uint32_t> word_{0};
  AdmissionLog* recorder_ = nullptr;
  std::uint32_t backoff_floor_ = 16;
  std::uint32_t backoff_ceiling_ = 4096;
  bool anderson_recheck_ = false;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_TAS_H_
