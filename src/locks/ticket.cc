#include "src/locks/ticket.h"

// TicketLock is fully inline; build anchor only.
namespace malthus {}
