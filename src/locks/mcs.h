// Classic MCS queue lock (Mellor-Crummey & Scott, 1991), templated on the
// waiting policy: McsLock<SpinPolicy> is the paper's MCS-S, and
// McsLock<SpinThenParkPolicy> is MCS-STP.
//
// Properties (Figure 2 of the paper): strict FIFO admission, succession by
// direct handoff, local spinning (each waiter spins only on its own node),
// no tuning parameters. FIFO + direct handoff interacts poorly with parking:
// the next thread granted is the one that has waited longest and is thus the
// most likely to have exhausted its spin budget and parked — which is
// exactly the pathology MCSCR's mostly-LIFO admission avoids, and which
// PrepareHandover() (wake-ahead) mitigates by starting the heir's kernel
// wakeup before the release.
#ifndef MALTHUS_SRC_LOCKS_MCS_H_
#define MALTHUS_SRC_LOCKS_MCS_H_

#include <atomic>
#include <chrono>

#include "src/chaos/failpoint.h"
#include "src/locks/lock_base.h"
#include "src/metrics/admission_log.h"
#include "src/waiting/policy.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

template <typename WaitPolicy>
class McsLock {
 public:
  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    // acq_rel: acquire so the predecessor's node fields (published by its
    // own enqueue) are visible before we store through prev; release so the
    // successor that swaps us out sees our PrepareForWait() stores.
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      WaitPolicy::Await(me->status, kWaiting, self.parker, spin_budget_);
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
  }

  bool try_lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* expected = nullptr;
    if (tail_.compare_exchange_strong(expected, me, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      owner_ = me;
      if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
        recorder->Record(self.id);
      }
      return true;
    }
    ReleaseQNode(me);
    return false;
  }

  // Timed acquisition with mid-chain self-removal. Enqueues exactly like
  // lock(); on deadline expiry the waiter CASes its grant flag kWaiting ->
  // kCancelled and abandons the node as a tombstone (it cannot touch its
  // neighbors' links — its predecessor may be granting *right now*). The
  // eventual granter skips cancelled husks (see unlock) and reclaims them
  // with a release store the owning thread's arena observes before reuse.
  // A failed cancel CAS means a granter committed first: the caller owns
  // the lock and true is returned even though the deadline passed.
  bool TryLockUntil(std::chrono::steady_clock::time_point deadline) {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      if (!WaitPolicy::AwaitUntil(me->status, kWaiting, self.parker, deadline, spin_budget_)) {
        // Chaos: widen the timeout-vs-grant window before the cancel CAS.
        MALTHUS_FAILPOINT("mcs.cancel");
        std::uint32_t expected = kWaiting;
        // Release: no successor of ours dereferences our stores, but the
        // tombstone publication should not sink below our enqueue stores.
        // Failure acquire: pairs with the granter's kGranted release — we
        // own the lock after all and must observe the critical section.
        if (me->status.compare_exchange_strong(expected, kCancelled, std::memory_order_release,
                                               std::memory_order_acquire)) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          ZombieQNode(me);
          return false;
        }
      }
      // Granted — or claimed by a linking granter whose commit is imminent.
      if (me->status.load(std::memory_order_acquire) != kGranted) {
        AwaitGrantCommit(me->status);
      }
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
    return true;
  }

  bool TryLockFor(std::chrono::nanoseconds timeout) {
    return TryLockUntil(std::chrono::steady_clock::now() + timeout);
  }

  // Anticipatory handover (wake-ahead, §5.2): called by the owner near the
  // end of its critical section, before unlock(). If a successor is already
  // queued, post its wake permit now: a parked heir overlaps its kernel
  // wakeup with the tail of the critical section, and a spinning heir's
  // eventual grant collapses into a zero-syscall permit post. MCS is strict
  // FIFO, so the successor observed here is exactly the node unlock() will
  // grant; even were it not, a stale permit only degrades the heir to
  // spinning (the parking litmus test).
  void PrepareHandover() {
    if constexpr (WaitPolicy::kParks) {
      QNode* next = owner_->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        // The chain pins `next` (its thread is blocked in Await until we
        // grant), so the generation-validated poke lands on the right
        // tenancy; a concurrent cancel at worst wastes the hint.
        next->wake_ref().WakeAhead();
      }
    }
  }

  void unlock() {
    QNode* me = owner_;
    // Walk the chain from our node, skipping cancelled husks. `node` is the
    // current chain head: our own node first, then each husk we stepped
    // over. Invariant: a husk is reclaimed only after our last access to it
    // (the next-pointer read / SpinForSuccessor below).
    QNode* node = me;
    while (true) {
      QNode* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        QNode* expected = node;
        // Release on success: the next arriving thread's acq_rel tail swap
        // must observe our critical section.
        if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                          std::memory_order_relaxed)) {
          Retire(node, me);
          return;
        }
        next = SpinForSuccessor(node);
      }
      // Chaos: widen the grant-vs-cancel window before committing.
      MALTHUS_FAILPOINT("mcs.grant");
      // The waiter may recycle its node as soon as it observes the grant,
      // so the wake channel is read before the CAS. The ParkerRef stays
      // safe even past thread exit: ThreadCtx memory is type-stable (slab,
      // see alloc/slab.h) so the post-grant Wake can never fault, and its
      // generation check turns a wake aimed at an exited waiter's recycled
      // slot into a counted no-op. owner_ is written before the CAS — only
      // the thread that observes kGranted ever reads it, so the speculative
      // store is dead if the CAS fails.
      const ParkerRef wake = next->wake_ref();
      owner_ = next;
      std::uint32_t expected = kWaiting;
      // Release pairs with the acquire load in the waiter's Await: it
      // transfers both the critical section and the owner_ handoff above.
      // Failure (expected == kCancelled) carries no ordering need beyond
      // the husk walk itself.
      if (next->status.compare_exchange_strong(expected, kGranted, std::memory_order_release,
                                               std::memory_order_relaxed)) {
        // Chaos: widen the grant-committed-vs-wake window. This is the
        // stale-wake window the generation check closes: the granted waiter
        // may run, unlock, exit, and have its ThreadCtx recycled before the
        // Wake below fires.
        MALTHUS_FAILPOINT("mcs.wake");
        WaitPolicy::Wake(wake);
        Retire(node, me);
        return;
      }
      // next cancelled underneath us: step over the husk and keep looking.
      cancelled_reclaims_.fetch_add(1, std::memory_order_relaxed);
      Retire(node, me);
      node = next;
    }
  }

  // Safe to call while other threads are locking (tests attach recorders
  // mid-run to skip warmup); hence the atomic pointer.
  void set_recorder(AdmissionLog* recorder) {
    recorder_.store(recorder, std::memory_order_relaxed);
  }
  void set_spin_budget(std::uint32_t budget) { spin_budget_.Pin(budget); }

  AdaptiveSpinBudget& spin_budget() { return spin_budget_; }

  // Acquisitions that timed out and self-removed.
  std::uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  // Cancelled husks the unlock path stepped over and reclaimed.
  std::uint64_t cancelled_reclaims() const {
    return cancelled_reclaims_.load(std::memory_order_relaxed);
  }

 private:
  // Disposes the finished chain head: our own node back to the pool, a
  // stepped-over husk to its owner via the kReclaimed release store (which
  // orders every access above it before the owner's reuse).
  static void Retire(QNode* node, QNode* me) {
    if (node == me) {
      ReleaseQNode(node);
    } else {
      node->status.store(kReclaimed, std::memory_order_release);
    }
  }

  std::atomic<QNode*> tail_{nullptr};
  // The owner's queue node. Written by the granter before the releasing
  // store of the grant flag; read only by the owner at unlock.
  QNode* owner_ = nullptr;
  std::atomic<AdmissionLog*> recorder_{nullptr};
  AdaptiveSpinBudget spin_budget_;
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> cancelled_reclaims_{0};
};

// MCS-S uses the yield-aware pure-spin policy: identical to SpinPolicy
// while spinners fit the effective CPU count, bounded sched_yield pacing
// once they do not (see waiting/policy.h).
using McsSpinLock = McsLock<YieldingSpinPolicy>;
using McsStpLock = McsLock<SpinThenParkPolicy>;

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_MCS_H_
