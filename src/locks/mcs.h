// Classic MCS queue lock (Mellor-Crummey & Scott, 1991), templated on the
// waiting policy: McsLock<SpinPolicy> is the paper's MCS-S, and
// McsLock<SpinThenParkPolicy> is MCS-STP.
//
// Properties (Figure 2 of the paper): strict FIFO admission, succession by
// direct handoff, local spinning (each waiter spins only on its own node),
// no tuning parameters. FIFO + direct handoff interacts poorly with parking:
// the next thread granted is the one that has waited longest and is thus the
// most likely to have exhausted its spin budget and parked — which is
// exactly the pathology MCSCR's mostly-LIFO admission avoids.
#ifndef MALTHUS_SRC_LOCKS_MCS_H_
#define MALTHUS_SRC_LOCKS_MCS_H_

#include <atomic>

#include "src/locks/lock_base.h"
#include "src/metrics/admission_log.h"
#include "src/waiting/policy.h"

namespace malthus {

template <typename WaitPolicy>
class McsLock {
 public:
  McsLock() : spin_budget_(ResolveSpinBudget(kAutoSpinBudget)) {}
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      WaitPolicy::Await(me->status, kWaiting, self.parker, spin_budget_);
    }
    owner_ = me;
    if (recorder_ != nullptr) {
      recorder_->Record(self.id);
    }
  }

  bool try_lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* expected = nullptr;
    if (tail_.compare_exchange_strong(expected, me, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      owner_ = me;
      if (recorder_ != nullptr) {
        recorder_->Record(self.id);
      }
      return true;
    }
    ReleaseQNode(me);
    return false;
  }

  void unlock() {
    QNode* me = owner_;
    QNode* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      QNode* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        ReleaseQNode(me);
        return;
      }
      next = SpinForSuccessor(me);
    }
    Grant(next);
    ReleaseQNode(me);
  }

  void set_recorder(AdmissionLog* recorder) { recorder_ = recorder; }
  void set_spin_budget(std::uint32_t budget) { spin_budget_ = budget; }

 private:
  void Grant(QNode* next) {
    owner_ = next;  // Published by the release store below.
    next->status.store(kGranted, std::memory_order_release);
    WaitPolicy::Wake(*next->parker);
  }

  std::atomic<QNode*> tail_{nullptr};
  // The owner's queue node. Written by the granter before the releasing
  // store of the grant flag; read only by the owner at unlock.
  QNode* owner_ = nullptr;
  AdmissionLog* recorder_ = nullptr;
  std::uint32_t spin_budget_;
};

using McsSpinLock = McsLock<SpinPolicy>;
using McsStpLock = McsLock<SpinThenParkPolicy>;

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_MCS_H_
