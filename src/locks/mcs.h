// Classic MCS queue lock (Mellor-Crummey & Scott, 1991), templated on the
// waiting policy: McsLock<SpinPolicy> is the paper's MCS-S, and
// McsLock<SpinThenParkPolicy> is MCS-STP.
//
// Properties (Figure 2 of the paper): strict FIFO admission, succession by
// direct handoff, local spinning (each waiter spins only on its own node),
// no tuning parameters. FIFO + direct handoff interacts poorly with parking:
// the next thread granted is the one that has waited longest and is thus the
// most likely to have exhausted its spin budget and parked — which is
// exactly the pathology MCSCR's mostly-LIFO admission avoids, and which
// PrepareHandover() (wake-ahead) mitigates by starting the heir's kernel
// wakeup before the release.
#ifndef MALTHUS_SRC_LOCKS_MCS_H_
#define MALTHUS_SRC_LOCKS_MCS_H_

#include <atomic>

#include "src/locks/lock_base.h"
#include "src/metrics/admission_log.h"
#include "src/waiting/policy.h"
#include "src/waiting/spin_budget.h"

namespace malthus {

template <typename WaitPolicy>
class McsLock {
 public:
  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    // acq_rel: acquire so the predecessor's node fields (published by its
    // own enqueue) are visible before we store through prev; release so the
    // successor that swaps us out sees our PrepareForWait() stores.
    QNode* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      WaitPolicy::Await(me->status, kWaiting, self.parker, spin_budget_);
    }
    owner_ = me;
    if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
      recorder->Record(self.id);
    }
  }

  bool try_lock() {
    ThreadCtx& self = Self();
    QNode* me = AcquireQNode();
    me->PrepareForWait(self);
    QNode* expected = nullptr;
    if (tail_.compare_exchange_strong(expected, me, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      owner_ = me;
      if (AdmissionLog* recorder = recorder_.load(std::memory_order_relaxed)) {
        recorder->Record(self.id);
      }
      return true;
    }
    ReleaseQNode(me);
    return false;
  }

  // Anticipatory handover (wake-ahead, §5.2): called by the owner near the
  // end of its critical section, before unlock(). If a successor is already
  // queued, post its wake permit now: a parked heir overlaps its kernel
  // wakeup with the tail of the critical section, and a spinning heir's
  // eventual grant collapses into a zero-syscall permit post. MCS is strict
  // FIFO, so the successor observed here is exactly the node unlock() will
  // grant; even were it not, a stale permit only degrades the heir to
  // spinning (the parking litmus test).
  void PrepareHandover() {
    if constexpr (WaitPolicy::kParks) {
      QNode* next = owner_->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        // The chain pins `next` (its thread is blocked in Await until we
        // grant), so its Parker is safe to poke.
        next->parker->WakeAhead();
      }
    }
  }

  void unlock() {
    QNode* me = owner_;
    QNode* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      QNode* expected = me;
      // Release on success: the next arriving thread's acq_rel tail swap
      // must observe our critical section.
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        ReleaseQNode(me);
        return;
      }
      next = SpinForSuccessor(me);
    }
    Grant(next);
    ReleaseQNode(me);
  }

  // Safe to call while other threads are locking (tests attach recorders
  // mid-run to skip warmup); hence the atomic pointer.
  void set_recorder(AdmissionLog* recorder) {
    recorder_.store(recorder, std::memory_order_relaxed);
  }
  void set_spin_budget(std::uint32_t budget) { spin_budget_.Pin(budget); }

  AdaptiveSpinBudget& spin_budget() { return spin_budget_; }

 private:
  void Grant(QNode* next) {
    // The waiter may recycle (or, at thread exit, free) its node as soon as
    // it observes the grant, so the wake channel is read before the store.
    // The Parker itself stays valid even past thread exit: ThreadCtx is
    // intentionally leaked (see thread_registry.cc), so the post-release
    // Wake below can never dangle.
    Parker* parker = next->parker;
    owner_ = next;  // Published by the release store below.
    // Release pairs with the acquire load in the waiter's Await: it
    // transfers both the critical section and the owner_ handoff above.
    next->status.store(kGranted, std::memory_order_release);
    WaitPolicy::Wake(*parker);
  }

  std::atomic<QNode*> tail_{nullptr};
  // The owner's queue node. Written by the granter before the releasing
  // store of the grant flag; read only by the owner at unlock.
  QNode* owner_ = nullptr;
  std::atomic<AdmissionLog*> recorder_{nullptr};
  AdaptiveSpinBudget spin_budget_;
};

// MCS-S uses the yield-aware pure-spin policy: identical to SpinPolicy
// while spinners fit the effective CPU count, bounded sched_yield pacing
// once they do not (see waiting/policy.h).
using McsSpinLock = McsLock<YieldingSpinPolicy>;
using McsStpLock = McsLock<SpinThenParkPolicy>;

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_MCS_H_
