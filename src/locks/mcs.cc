#include "src/locks/mcs.h"

#include <new>
#include <vector>

namespace malthus {
namespace {

// Thread-local slab arena backing QNodes. Nodes are carved out of
// cache-line-aligned slabs of kSlabNodes contiguous nodes, owned by the
// arena; they are recycled across locks but never cross threads (a node is
// always released by the thread that acquired it, so no synchronization).
//
// Compared to one heap allocation per node, slabs (a) guarantee the
// alignas(kCacheLineSize) on QNode is honored without per-node allocator
// padding waste, and (b) keep one thread's nodes densely packed: since
// sizeof(QNode) == one interference region, adjacent waiters' grant flags
// never share a line, while a single thread's working set of nodes spans
// the fewest possible pages.
struct NodeArena {
  static constexpr std::size_t kSlabNodes = 16;

  std::vector<QNode*> free_list;
  std::vector<void*> slabs;

  ~NodeArena() {
    // Nodes are quiescent at thread exit (the thread cannot be waiting on a
    // lock while running its TLS destructors) and QNode is trivially
    // destructible, so the raw slabs can simply be returned.
    for (void* slab : slabs) {
      ::operator delete(slab, std::align_val_t{alignof(QNode)});
    }
  }

  void Refill() {
    void* raw = ::operator new(kSlabNodes * sizeof(QNode), std::align_val_t{alignof(QNode)});
    slabs.push_back(raw);
    auto* nodes = static_cast<QNode*>(raw);
    free_list.reserve(free_list.size() + kSlabNodes);
    for (std::size_t i = kSlabNodes; i-- > 0;) {
      free_list.push_back(new (&nodes[i]) QNode());
    }
  }
};

NodeArena& Arena() {
  thread_local NodeArena arena;
  return arena;
}

}  // namespace

QNode* AcquireQNode() {
  NodeArena& arena = Arena();
  if (arena.free_list.empty()) {
    arena.Refill();
  }
  QNode* n = arena.free_list.back();
  arena.free_list.pop_back();
  return n;
}

void ReleaseQNode(QNode* node) { Arena().free_list.push_back(node); }

// Instantiation anchors so template code is compiled (and its warnings
// surfaced) as part of the library build.
template class McsLock<SpinPolicy>;
template class McsLock<YieldingSpinPolicy>;
template class McsLock<SpinThenParkPolicy>;
template class McsLock<ParkPolicy>;

}  // namespace malthus
