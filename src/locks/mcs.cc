#include "src/locks/mcs.h"

#include <vector>

namespace malthus {
namespace {

// Thread-local node pool. Nodes are heap-allocated on demand and owned by
// the pool; they are recycled across locks but never cross threads.
struct NodePool {
  std::vector<QNode*> free_list;

  ~NodePool() {
    for (QNode* n : free_list) {
      delete n;
    }
  }
};

NodePool& Pool() {
  thread_local NodePool pool;
  return pool;
}

}  // namespace

QNode* AcquireQNode() {
  NodePool& pool = Pool();
  if (!pool.free_list.empty()) {
    QNode* n = pool.free_list.back();
    pool.free_list.pop_back();
    return n;
  }
  return new QNode();
}

void ReleaseQNode(QNode* node) { Pool().free_list.push_back(node); }

// Instantiation anchors so template code is compiled (and its warnings
// surfaced) as part of the library build.
template class McsLock<SpinPolicy>;
template class McsLock<SpinThenParkPolicy>;
template class McsLock<ParkPolicy>;

}  // namespace malthus
