#include "src/locks/mcs.h"

#include <vector>

#include "src/alloc/slab.h"

namespace malthus {
namespace {

// Process-wide gauge of zombied (cancelled, not yet reclaimed-and-reaped)
// nodes. Leak tests drain lock activity and assert it returns to zero.
std::atomic<std::uint64_t> g_outstanding_zombies{0};

// Zombie nodes whose owning thread exited while a granter still held the
// reclaim pin. The exiting arena parks them here instead of leaking its
// slab (the old behavior); any thread can later scavenge the ones whose
// status has reached kReclaimed back into the slab. Guarded by a TinyLock —
// the orphanage is touched only on thread exit and in drain loops, never
// on a lock fast path.
struct QNodeOrphanage {
  slab_detail::TinyLock lock;
  std::vector<QNode*> nodes;
};

QNodeOrphanage& Orphanage() {
  static QNodeOrphanage orphanage;
  return orphanage;
}

// Thread-local pool of QNodes checked out of the process-wide slab
// (QNodeSlab). Nodes are recycled across locks but never cross threads
// while checked out (a node is always released by the thread that acquired
// it, so the free list needs no synchronization); the slab underneath
// keeps each node cache-line aligned and densely packed, so adjacent
// waiters' grant flags never share a line while one thread's working set
// spans the fewest possible pages.
struct NodeArena {
  static constexpr std::size_t kRefillBatch = 16;

  std::vector<QNode*> free_list;
  // Cancelled nodes a granter may still touch; reaped (status ==
  // kReclaimed, acquire) back into free_list on the next AcquireQNode.
  std::vector<QNode*> zombies;

  // Thread exit: every node this thread checked out goes back to the slab.
  // Free nodes return directly. Zombies are reaped one last time; any still
  // pinned by an in-flight granter move to the orphanage (their gauge count
  // rides along) so the memory is reclaimed as soon as the granter's
  // kReclaimed store lands and someone scavenges — nothing is leaked.
  ~NodeArena() {
    Reap();
    for (QNode* n : free_list) {
      QNodeSlab().Return(n);
    }
    if (!zombies.empty()) {
      QNodeOrphanage& o = Orphanage();
      o.lock.lock();
      o.nodes.insert(o.nodes.end(), zombies.begin(), zombies.end());
      o.lock.unlock();
    }
  }

  void Refill() {
    free_list.reserve(free_list.size() + kRefillBatch);
    for (std::size_t i = 0; i < kRefillBatch; ++i) {
      free_list.push_back(QNodeSlab().Checkout().obj);
    }
  }

  // Moves reclaimed zombies back to the free list. The acquire load pairs
  // with the granter's release store of kReclaimed, ordering the granter's
  // last accesses to the node before its reuse.
  void Reap() {
    std::size_t kept = 0;
    for (QNode* z : zombies) {
      if (z->status.load(std::memory_order_acquire) == kReclaimed) {
        free_list.push_back(z);
        g_outstanding_zombies.fetch_sub(1, std::memory_order_relaxed);
      } else {
        zombies[kept++] = z;
      }
    }
    zombies.resize(kept);
  }
};

NodeArena& Arena() {
  thread_local NodeArena arena;
  return arena;
}

}  // namespace

QNode* AcquireQNode() {
  NodeArena& arena = Arena();
  if (!arena.zombies.empty()) {
    arena.Reap();
  }
  if (arena.free_list.empty()) {
    arena.Refill();
  }
  QNode* n = arena.free_list.back();
  arena.free_list.pop_back();
  return n;
}

void ReleaseQNode(QNode* node) { Arena().free_list.push_back(node); }

void ZombieQNode(QNode* node) {
  g_outstanding_zombies.fetch_add(1, std::memory_order_relaxed);
  Arena().zombies.push_back(node);
}

std::uint64_t OutstandingZombieQNodes() {
  return g_outstanding_zombies.load(std::memory_order_relaxed);
}

std::size_t ReapZombieQNodes() {
  NodeArena& arena = Arena();
  arena.Reap();
  return arena.zombies.size();
}

std::size_t ScavengeOrphanQNodes() {
  QNodeOrphanage& o = Orphanage();
  o.lock.lock();
  std::size_t kept = 0;
  std::size_t reclaimed = 0;
  for (QNode* n : o.nodes) {
    if (n->status.load(std::memory_order_acquire) == kReclaimed) {
      QNodeSlab().Return(n);
      g_outstanding_zombies.fetch_sub(1, std::memory_order_relaxed);
      ++reclaimed;
    } else {
      o.nodes[kept++] = n;
    }
  }
  o.nodes.resize(kept);
  o.lock.unlock();
  return reclaimed;
}

std::size_t OrphanedQNodes() {
  QNodeOrphanage& o = Orphanage();
  o.lock.lock();
  const std::size_t n = o.nodes.size();
  o.lock.unlock();
  return n;
}

SlabAllocator<QNode>& QNodeSlab() {
  static SlabAllocator<QNode> slab;
  return slab;
}

// Instantiation anchors so template code is compiled (and its warnings
// surfaced) as part of the library build.
template class McsLock<SpinPolicy>;
template class McsLock<YieldingSpinPolicy>;
template class McsLock<SpinThenParkPolicy>;
template class McsLock<ParkPolicy>;

}  // namespace malthus
