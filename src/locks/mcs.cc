#include "src/locks/mcs.h"

#include <new>
#include <vector>

namespace malthus {
namespace {

// Thread-local slab arena backing QNodes. Nodes are carved out of
// cache-line-aligned slabs of kSlabNodes contiguous nodes, owned by the
// arena; they are recycled across locks but never cross threads (a node is
// always released by the thread that acquired it, so no synchronization).
//
// Compared to one heap allocation per node, slabs (a) guarantee the
// alignas(kCacheLineSize) on QNode is honored without per-node allocator
// padding waste, and (b) keep one thread's nodes densely packed: since
// sizeof(QNode) == one interference region, adjacent waiters' grant flags
// never share a line, while a single thread's working set of nodes spans
// the fewest possible pages.
// Process-wide gauge of zombied (cancelled, not yet reclaimed-and-reaped)
// nodes. Leak tests drain lock activity and assert it returns to zero.
std::atomic<std::uint64_t> g_outstanding_zombies{0};

struct NodeArena {
  static constexpr std::size_t kSlabNodes = 16;

  std::vector<QNode*> free_list;
  // Cancelled nodes a granter may still touch; reaped (status ==
  // kReclaimed, acquire) back into free_list on the next AcquireQNode.
  std::vector<QNode*> zombies;
  std::vector<void*> slabs;

  ~NodeArena() {
    Reap();
    if (!zombies.empty()) {
      // A granter somewhere may still write kReclaimed into one of these
      // nodes; freeing the slabs would be use-after-free. Leak them — the
      // leak is bounded by cancelled-but-unreclaimed nodes at thread exit
      // and stays visible through OutstandingZombieQNodes(). (The gauge is
      // deliberately NOT decremented: these nodes are gone for good.)
      return;
    }
    // Nodes are quiescent at thread exit (the thread cannot be waiting on a
    // lock while running its TLS destructors) and QNode is trivially
    // destructible, so the raw slabs can simply be returned.
    for (void* slab : slabs) {
      ::operator delete(slab, std::align_val_t{alignof(QNode)});
    }
  }

  void Refill() {
    void* raw = ::operator new(kSlabNodes * sizeof(QNode), std::align_val_t{alignof(QNode)});
    slabs.push_back(raw);
    auto* nodes = static_cast<QNode*>(raw);
    free_list.reserve(free_list.size() + kSlabNodes);
    for (std::size_t i = kSlabNodes; i-- > 0;) {
      free_list.push_back(new (&nodes[i]) QNode());
    }
  }

  // Moves reclaimed zombies back to the free list. The acquire load pairs
  // with the granter's release store of kReclaimed, ordering the granter's
  // last accesses to the node before its reuse.
  void Reap() {
    std::size_t kept = 0;
    for (QNode* z : zombies) {
      if (z->status.load(std::memory_order_acquire) == kReclaimed) {
        free_list.push_back(z);
        g_outstanding_zombies.fetch_sub(1, std::memory_order_relaxed);
      } else {
        zombies[kept++] = z;
      }
    }
    zombies.resize(kept);
  }
};

NodeArena& Arena() {
  thread_local NodeArena arena;
  return arena;
}

}  // namespace

QNode* AcquireQNode() {
  NodeArena& arena = Arena();
  if (!arena.zombies.empty()) {
    arena.Reap();
  }
  if (arena.free_list.empty()) {
    arena.Refill();
  }
  QNode* n = arena.free_list.back();
  arena.free_list.pop_back();
  return n;
}

void ReleaseQNode(QNode* node) { Arena().free_list.push_back(node); }

void ZombieQNode(QNode* node) {
  g_outstanding_zombies.fetch_add(1, std::memory_order_relaxed);
  Arena().zombies.push_back(node);
}

std::uint64_t OutstandingZombieQNodes() {
  return g_outstanding_zombies.load(std::memory_order_relaxed);
}

std::size_t ReapZombieQNodes() {
  NodeArena& arena = Arena();
  arena.Reap();
  return arena.zombies.size();
}

// Instantiation anchors so template code is compiled (and its warnings
// surfaced) as part of the library build.
template class McsLock<SpinPolicy>;
template class McsLock<YieldingSpinPolicy>;
template class McsLock<SpinThenParkPolicy>;
template class McsLock<ParkPolicy>;

}  // namespace malthus
