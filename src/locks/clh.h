// CLH queue lock (Craig; Landin & Hagersten), spin-waiting variant.
//
// Arriving threads enqueue implicitly by swapping the tail and spin on their
// *predecessor's* node. Nodes migrate between threads (a releasing thread
// adopts its predecessor's node for its next acquisition), so per-thread
// node slots are kept inside the lock, indexed by dense thread id. Strict
// FIFO, direct handoff, local spinning on a remote-allocated line.
#ifndef MALTHUS_SRC_LOCKS_CLH_H_
#define MALTHUS_SRC_LOCKS_CLH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/metrics/admission_log.h"
#include "src/platform/align.h"
#include "src/platform/cpu.h"
#include "src/platform/thread_registry.h"

namespace malthus {

class ClhLock {
 public:
  // Maximum distinct threads that may ever touch one ClhLock instance.
  static constexpr std::size_t kMaxThreads = 1024;

  ClhLock();
  ~ClhLock();
  ClhLock(const ClhLock&) = delete;
  ClhLock& operator=(const ClhLock&) = delete;

  void lock();
  void unlock();

  void set_recorder(AdmissionLog* recorder) { recorder_ = recorder; }

 private:
  struct alignas(kCacheLineSize) Node {
    std::atomic<bool> locked{false};
  };

  Node* MyNode(ThreadId tid);

  std::atomic<Node*> tail_;
  // Current owner's enqueued node and adopted predecessor node; only the
  // owner (or its granter, via the locked-flag release chain) touches these.
  Node* owner_node_ = nullptr;
  Node* owner_pred_ = nullptr;
  ThreadId owner_tid_ = kInvalidThreadId;
  std::vector<std::atomic<Node*>> slots_;
  AdmissionLog* recorder_ = nullptr;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_LOCKS_CLH_H_
