#include "src/harness/fixed_time.h"

#include <sched.h>

#include <algorithm>
#include <cstdlib>

#include "src/platform/sysinfo.h"

namespace malthus {
namespace {

long EnvLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  return (end != value && parsed > 0) ? parsed : fallback;
}

}  // namespace

std::chrono::milliseconds DefaultBenchDuration() {
  return std::chrono::milliseconds(EnvLong("MALTHUS_BENCH_MS", 100));
}

int DefaultBenchRepetitions() { return static_cast<int>(EnvLong("MALTHUS_BENCH_REPS", 1)); }

bool BenchPinningEnabled() {
  const char* value = std::getenv("MALTHUS_BENCH_PIN");
  return value == nullptr || *value == '\0' || *value != '0';
}

void PinThreadToCpuIndex(int index) {
  cpu_set_t allowed;
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
    return;
  }
  const int allowed_count = CPU_COUNT(&allowed);
  if (allowed_count <= 0) {
    return;
  }
  // Find the (index % allowed_count)-th set bit of the affinity mask.
  int target = index % allowed_count;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &allowed) && target-- == 0) {
      cpu_set_t pin;
      CPU_ZERO(&pin);
      CPU_SET(cpu, &pin);
      (void)sched_setaffinity(0, sizeof(pin), &pin);
      return;
    }
  }
}

int MaxSweepThreads() {
  return static_cast<int>(EnvLong("MALTHUS_BENCH_MAXTHREADS", 2L * LogicalCpuCount()));
}

std::vector<int> SweepThreadCounts(int cap) {
  // Log-spaced like the paper's X axis, clipped to cap, with the CPU count
  // and the cap itself always present (that is where the interesting
  // inflections live).
  static constexpr int kBase[] = {1, 2, 3, 5, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256};
  std::vector<int> counts;
  for (const int c : kBase) {
    if (c <= cap) {
      counts.push_back(c);
    }
  }
  const int cpus = LogicalCpuCount();
  if (cpus <= cap && std::find(counts.begin(), counts.end(), cpus) == counts.end()) {
    counts.push_back(cpus);
  }
  if (std::find(counts.begin(), counts.end(), cap) == counts.end()) {
    counts.push_back(cap);
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

}  // namespace malthus
