// Minimal fixed-width table renderer for paper-style console output
// (Figure-4-like in-depth tables and throughput-vs-threads series).
#ifndef MALTHUS_SRC_HARNESS_TABLE_H_
#define MALTHUS_SRC_HARNESS_TABLE_H_

#include <string>
#include <vector>

namespace malthus {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with column-aligned padding and a header underline.
  std::string Render() const;

  // Formats a double compactly: integers without decimals, otherwise 3
  // significant decimals; large values with k/M suffixes when `human`.
  static std::string Num(double v, bool human = false);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_HARNESS_TABLE_H_
