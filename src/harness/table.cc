#include "src/harness/table.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace malthus {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TextTable::Num(double v, bool human) {
  char buf[64];
  if (human && std::fabs(v) >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (human && std::fabs(v) >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace malthus
