// Fixed-time-report-work benchmark driver (the paper's §6 methodology):
// spawn N concurrent threads, release them through a start barrier, run for
// a fixed measurement interval, and report the aggregate iterations
// completed — plus rusage deltas (voluntary context switches, CPU
// utilization) and the energy proxy for the Figure-4-style tables.
//
// The body callable is invoked once per iteration as body(thread_index);
// per-thread state lives in closures indexed by thread_index. Counters are
// cache-line padded. Median-of-K is provided by RunMedianOfK; dispersion
// (p10/p50/p90 across repetitions) by RunWithDispersion — on small hosts a
// single median hides scheduler-induced spread larger than the effects the
// benches exist to measure, so the tracked snapshots report all three.
//
// Worker threads are pinned round-robin over the allowed CPUs by default
// (MALTHUS_BENCH_PIN=0 disables): unpinned runs let the scheduler migrate
// spinners onto the owner's core mid-interval, which is the dominant
// variance source ROADMAP flagged for bench_fig02/bench_abl_*.
//
// Environment knobs (all optional):
//   MALTHUS_BENCH_MS          — measurement interval per point (default 100)
//   MALTHUS_BENCH_REPS        — repetitions for median/dispersion (default 1)
//   MALTHUS_BENCH_MAXTHREADS  — cap on sweep thread counts (default 2×CPUs)
//   MALTHUS_BENCH_PIN         — pin worker threads to CPUs (default 1)
#ifndef MALTHUS_SRC_HARNESS_FIXED_TIME_H_
#define MALTHUS_SRC_HARNESS_FIXED_TIME_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "src/platform/align.h"
#include "src/platform/rusage.h"

namespace malthus {

// Whether RunFixedTime pins worker threads (MALTHUS_BENCH_PIN, default on).
bool BenchPinningEnabled();

// Pins the calling thread to the `index`-th allowed CPU (round-robin over
// the process affinity mask). Best effort; a no-op on failure.
void PinThreadToCpuIndex(int index);

struct BenchConfig {
  int threads = 1;
  std::chrono::milliseconds duration{100};
  bool pin_threads = BenchPinningEnabled();
};

struct BenchResult {
  std::uint64_t total_iterations = 0;
  double wall_seconds = 0.0;
  UsageDelta usage;
  std::vector<std::uint64_t> per_thread_iterations;

  double Throughput() const {
    return wall_seconds > 0 ? static_cast<double>(total_iterations) / wall_seconds : 0.0;
  }
};

// Sweep-direction helpers driven by environment variables.
std::chrono::milliseconds DefaultBenchDuration();
int DefaultBenchRepetitions();
int MaxSweepThreads();
// The paper's log-spaced X axis (1 2 5 10 20 50 100 200), clipped to `cap`
// and always including `cap` itself so the oversubscription cliff is
// visible at 2x the CPU count.
std::vector<int> SweepThreadCounts(int cap);

template <typename Body>
BenchResult RunFixedTime(const BenchConfig& config, Body&& body) {
  const int n = config.threads;
  std::vector<CacheAligned<std::uint64_t>> counters(static_cast<std::size_t>(n));
  std::atomic<int> ready{0};
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      if (config.pin_threads) {
        PinThreadToCpuIndex(t);
      }
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        body(t);
        ++local;
      }
      *counters[static_cast<std::size_t>(t)] = local;
    });
  }

  while (ready.load(std::memory_order_acquire) != n) {
    std::this_thread::yield();
  }
  const UsageSnapshot usage_begin = CaptureUsage();
  const auto wall_begin = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(config.duration);
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  const auto wall_end = std::chrono::steady_clock::now();
  const UsageSnapshot usage_end = CaptureUsage();

  BenchResult result;
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_begin).count();
  result.usage = DiffUsage(usage_begin, usage_end, result.wall_seconds);
  result.per_thread_iterations.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const std::uint64_t c = *counters[static_cast<std::size_t>(t)];
    result.per_thread_iterations.push_back(c);
    result.total_iterations += c;
  }
  return result;
}

// Throughput dispersion across repetitions of one benchmark point.
// Medians alone are misleading exactly where this library operates: on an
// oversubscribed host the same point can legitimately run 2-5x apart
// depending on where the scheduler lands the owner, and a reader comparing
// two medians cannot tell a real regression from that spread.
struct DispersionStats {
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  int reps = 0;
};

// Runs `make_result()` `reps` times; returns the median-throughput run and
// fills `stats` with the nearest-rank p10/p50/p90 of throughput across the
// repetitions.
template <typename MakeResult>
BenchResult RunWithDispersion(int reps, MakeResult&& make_result, DispersionStats* stats) {
  reps = std::max(reps, 1);
  std::vector<BenchResult> results;
  results.reserve(static_cast<std::size_t>(reps));
  std::vector<double> throughputs;
  throughputs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    results.push_back(make_result());
    throughputs.push_back(results.back().Throughput());
  }
  std::vector<std::size_t> order(results.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return throughputs[a] < throughputs[b]; });
  if (stats != nullptr) {
    const auto at_percentile = [&](double p) {
      const auto rank = static_cast<std::size_t>(p * static_cast<double>(order.size() - 1) + 0.5);
      return throughputs[order[rank]];
    };
    stats->p10 = at_percentile(0.10);
    stats->p50 = at_percentile(0.50);
    stats->p90 = at_percentile(0.90);
    stats->reps = reps;
  }
  return results[order[order.size() / 2]];
}

// Runs `make_result()` `reps` times and returns the run with the median
// throughput.
template <typename MakeResult>
BenchResult RunMedianOfK(int reps, MakeResult&& make_result) {
  return RunWithDispersion(reps, std::forward<MakeResult>(make_result), nullptr);
}

}  // namespace malthus

#endif  // MALTHUS_SRC_HARNESS_FIXED_TIME_H_
