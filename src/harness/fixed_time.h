// Fixed-time-report-work benchmark driver (the paper's §6 methodology):
// spawn N concurrent threads, release them through a start barrier, run for
// a fixed measurement interval, and report the aggregate iterations
// completed — plus rusage deltas (voluntary context switches, CPU
// utilization) and the energy proxy for the Figure-4-style tables.
//
// The body callable is invoked once per iteration as body(thread_index);
// per-thread state lives in closures indexed by thread_index. Counters are
// cache-line padded. Median-of-K is provided by RunMedianOfK.
//
// Environment knobs (all optional):
//   MALTHUS_BENCH_MS          — measurement interval per point (default 100)
//   MALTHUS_BENCH_REPS        — repetitions for the median (default 1)
//   MALTHUS_BENCH_MAXTHREADS  — cap on sweep thread counts (default 2×CPUs)
#ifndef MALTHUS_SRC_HARNESS_FIXED_TIME_H_
#define MALTHUS_SRC_HARNESS_FIXED_TIME_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/platform/align.h"
#include "src/platform/rusage.h"

namespace malthus {

struct BenchConfig {
  int threads = 1;
  std::chrono::milliseconds duration{100};
};

struct BenchResult {
  std::uint64_t total_iterations = 0;
  double wall_seconds = 0.0;
  UsageDelta usage;
  std::vector<std::uint64_t> per_thread_iterations;

  double Throughput() const {
    return wall_seconds > 0 ? static_cast<double>(total_iterations) / wall_seconds : 0.0;
  }
};

// Sweep-direction helpers driven by environment variables.
std::chrono::milliseconds DefaultBenchDuration();
int DefaultBenchRepetitions();
int MaxSweepThreads();
// The paper's log-spaced X axis (1 2 5 10 20 50 100 200), clipped to `cap`
// and always including `cap` itself so the oversubscription cliff is
// visible at 2x the CPU count.
std::vector<int> SweepThreadCounts(int cap);

template <typename Body>
BenchResult RunFixedTime(const BenchConfig& config, Body&& body) {
  const int n = config.threads;
  std::vector<CacheAligned<std::uint64_t>> counters(static_cast<std::size_t>(n));
  std::atomic<int> ready{0};
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        body(t);
        ++local;
      }
      *counters[static_cast<std::size_t>(t)] = local;
    });
  }

  while (ready.load(std::memory_order_acquire) != n) {
    std::this_thread::yield();
  }
  const UsageSnapshot usage_begin = CaptureUsage();
  const auto wall_begin = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(config.duration);
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  const auto wall_end = std::chrono::steady_clock::now();
  const UsageSnapshot usage_end = CaptureUsage();

  BenchResult result;
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_begin).count();
  result.usage = DiffUsage(usage_begin, usage_end, result.wall_seconds);
  result.per_thread_iterations.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const std::uint64_t c = *counters[static_cast<std::size_t>(t)];
    result.per_thread_iterations.push_back(c);
    result.total_iterations += c;
  }
  return result;
}

// Runs `make_result()` `reps` times and returns the run with the median
// throughput (ties broken toward the earlier run).
template <typename MakeResult>
BenchResult RunMedianOfK(int reps, MakeResult&& make_result) {
  std::vector<BenchResult> results;
  results.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    results.push_back(make_result());
  }
  std::size_t best = 0;
  std::vector<std::size_t> order(results.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return results[a].Throughput() < results[b].Throughput();
  });
  best = order[order.size() / 2];
  return results[best];
}

}  // namespace malthus

#endif  // MALTHUS_SRC_HARNESS_FIXED_TIME_H_
