// Admission-history recorder.
//
// Lock algorithms call Record(tid) immediately after acquisition (i.e. while
// holding the lock, so writes are naturally serialized — no synchronization
// beyond a release publish of the length). The recorder keeps a bounded
// history; when full it keeps recording statistics (per-thread counts) but
// stops extending the ordered history.
//
// From the history we derive the paper's short-term fairness metrics
// (average LWSS, MTTR) and from per-thread counts the long-term metrics
// (Gini, RSTDDEV). See metrics/fairness.h.
#ifndef MALTHUS_SRC_METRICS_ADMISSION_LOG_H_
#define MALTHUS_SRC_METRICS_ADMISSION_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace malthus {

struct FairnessReport {
  double average_lwss = 0.0;
  double mttr = 0.0;
  double gini = 0.0;
  double rstddev = 0.0;
  std::uint64_t admissions = 0;
  std::uint32_t participants = 0;

  std::string ToString() const;
};

class AdmissionLog {
 public:
  // `capacity` bounds the ordered history (not the counters).
  explicit AdmissionLog(std::size_t capacity = 1u << 20);

  // Must be called while holding the lock being instrumented.
  void Record(std::uint32_t tid);

  // Clears history and counters. Not thread-safe against Record.
  void Reset();

  // Snapshot of the ordered history recorded so far.
  std::vector<std::uint32_t> History() const;

  // Per-thread acquisition counts (index = dense thread id).
  std::vector<double> CountsPerThread() const;

  std::uint64_t TotalAdmissions() const { return total_.load(std::memory_order_acquire); }

  // Computes all paper metrics over the recorded history & counters.
  FairnessReport Report(std::size_t lwss_window = 1000) const;

 private:
  std::vector<std::uint32_t> history_;
  std::atomic<std::size_t> length_{0};  // valid prefix of history_
  std::atomic<std::uint64_t> total_{0};
  // Per-thread counts; grown under the lock, read racily by reporters after
  // the run (benign: reporting happens after threads quiesce).
  std::vector<std::uint64_t> counts_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_METRICS_ADMISSION_LOG_H_
