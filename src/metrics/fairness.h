// Fairness metrics from the paper (§1, §6):
//
//   * LWSS — lock working set size: the number of distinct threads that
//     acquired a lock in a window of the admission history. The *average
//     LWSS* partitions the history into disjoint abutting W-sized windows
//     (W = 1000 in the paper) and averages the per-window LWSS. Short-term
//     fairness, in units of threads.
//   * MTTR — median time to reacquire, measured in admissions: for every
//     acquisition after a thread's first, the number of admissions since
//     that thread last held the lock. Analogous to reuse distance.
//   * Gini coefficient over per-thread acquisition (or work) counts —
//     long-term fairness; 0 is perfectly fair, →1 maximally unfair.
//   * RSTDDEV — relative standard deviation (coefficient of variation) of
//     per-thread counts; the paper's second long-term metric.
#ifndef MALTHUS_SRC_METRICS_FAIRNESS_H_
#define MALTHUS_SRC_METRICS_FAIRNESS_H_

#include <cstdint>
#include <vector>

namespace malthus {

// Average LWSS over disjoint abutting windows of `window` admissions.
// A trailing partial window is included (its LWSS weighted like the others)
// only if it is at least half the window size; the paper's 10-second runs
// make the tail negligible either way. Returns 0 for an empty history.
double AverageLwss(const std::vector<std::uint32_t>& admissions, std::size_t window = 1000);

// LWSS of a single [begin, end) slice of the admission history.
std::size_t WindowLwss(const std::vector<std::uint32_t>& admissions, std::size_t begin,
                       std::size_t end);

// Median time-to-reacquire in admissions. Returns 0 if no thread reacquired.
double MedianTimeToReacquire(const std::vector<std::uint32_t>& admissions);

// Gini coefficient of a non-negative sample (per-thread counts).
// 0 for perfect equality; (n-1)/n when one participant holds everything.
double GiniCoefficient(const std::vector<double>& values);

// Relative standard deviation (population stddev / mean). 0 if mean == 0.
double RelativeStdDev(const std::vector<double>& values);

}  // namespace malthus

#endif  // MALTHUS_SRC_METRICS_FAIRNESS_H_
