#include "src/metrics/admission_log.h"

#include <sstream>

#include "src/metrics/fairness.h"

namespace malthus {

AdmissionLog::AdmissionLog(std::size_t capacity) {
  history_.resize(capacity);
  counts_.resize(256, 0);
}

void AdmissionLog::Record(std::uint32_t tid) {
  const std::size_t len = length_.load(std::memory_order_relaxed);
  if (len < history_.size()) {
    history_[len] = tid;
    length_.store(len + 1, std::memory_order_release);
  }
  if (tid >= counts_.size()) {
    counts_.resize(static_cast<std::size_t>(tid) * 2 + 1, 0);
  }
  ++counts_[tid];
  total_.fetch_add(1, std::memory_order_relaxed);
}

void AdmissionLog::Reset() {
  length_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  for (auto& c : counts_) {
    c = 0;
  }
}

std::vector<std::uint32_t> AdmissionLog::History() const {
  const std::size_t len = length_.load(std::memory_order_acquire);
  return std::vector<std::uint32_t>(history_.begin(),
                                    history_.begin() + static_cast<std::ptrdiff_t>(len));
}

std::vector<double> AdmissionLog::CountsPerThread() const {
  std::vector<double> out;
  out.reserve(counts_.size());
  for (const auto c : counts_) {
    if (c > 0) {
      out.push_back(static_cast<double>(c));
    }
  }
  return out;
}

FairnessReport AdmissionLog::Report(std::size_t lwss_window) const {
  FairnessReport r;
  const auto history = History();
  const auto counts = CountsPerThread();
  r.average_lwss = AverageLwss(history, lwss_window);
  r.mttr = MedianTimeToReacquire(history);
  r.gini = GiniCoefficient(counts);
  r.rstddev = RelativeStdDev(counts);
  r.admissions = TotalAdmissions();
  r.participants = static_cast<std::uint32_t>(counts.size());
  return r;
}

std::string FairnessReport::ToString() const {
  std::ostringstream os;
  os << "admissions=" << admissions << " participants=" << participants
     << " avgLWSS=" << average_lwss << " MTTR=" << mttr << " gini=" << gini
     << " rstddev=" << rstddev;
  return os.str();
}

}  // namespace malthus
