#include "src/metrics/histogram.h"

#include <bit>
#include <cmath>

namespace malthus {

std::size_t LatencyHistogram::BucketIndex(std::uint64_t value) {
  if (value < kSubBucketCount) {
    return static_cast<std::size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const std::size_t octave = static_cast<std::size_t>(msb - kSubBucketBits + 1);
  return octave * kSubBucketCount +
         static_cast<std::size_t>((value >> shift) & (kSubBucketCount - 1));
}

std::uint64_t LatencyHistogram::BucketLowerBound(std::size_t index) {
  const std::size_t octave = index >> kSubBucketBits;
  const std::uint64_t offset = index & (kSubBucketCount - 1);
  if (octave == 0) {
    return offset;
  }
  return (kSubBucketCount + offset) << (octave - 1);
}

std::uint64_t LatencyHistogram::BucketUpperBound(std::size_t index) {
  if (index >= kBucketCount - 1) {
    return UINT64_MAX;
  }
  return BucketLowerBound(index + 1) - 1;
}

std::uint64_t LatencyHistogram::Percentile(double p) const {
  const std::uint64_t total = Count();
  if (total == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  // Rank of the requested percentile, 1-based; p=0 maps to the first value.
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  if (target == 0) {
    target = 1;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Clamp to the observed max so sparse top buckets do not overstate.
      const std::uint64_t upper = BucketUpperBound(i);
      const std::uint64_t max = Max();
      return upper < max ? upper : max;
    }
  }
  return Max();
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = other.counts_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      counts_[i].fetch_add(c, std::memory_order_relaxed);
    }
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const std::uint64_t omin = other.min_.load(std::memory_order_relaxed);
  if (omin != UINT64_MAX) {
    UpdateMin(omin);
  }
  UpdateMax(other.max_.load(std::memory_order_relaxed));
}

void LatencyHistogram::Reset() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace malthus
