// HDR-style log-bucket latency histogram (the BESS histogram / HdrHistogram
// construction): values are binned into octaves of 2, each octave split into
// 2^kSubBucketBits linear sub-buckets, so relative quantization error is
// bounded by 2^-kSubBucketBits (~3.1%) across the whole 64-bit range while
// the table stays a fixed ~15 KB.
//
// The server records nanosecond latencies here on every completed request:
// Record() is two relaxed fetch_adds plus a CAS-free min/max update, safe to
// call concurrently from every worker; readers take percentile snapshots
// (racy-but-monotone, fine for reporting) or Merge() per-thread instances.
//
// Percentile() returns the *upper bound* of the bucket containing the
// requested rank (HdrHistogram's "highest equivalent value"), so reported
// percentiles never understate the latency a request actually saw.
#ifndef MALTHUS_SRC_METRICS_HISTOGRAM_H_
#define MALTHUS_SRC_METRICS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace malthus {

class LatencyHistogram {
 public:
  // 32 sub-buckets per octave: values are recorded to within 1/32 = 3.125%
  // of their magnitude (exact below 32).
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  // Octave 0 is the exact linear region [0, 32); each further octave
  // [2^k, 2^(k+1)) for k in [kSubBucketBits, 63] contributes 32 buckets —
  // 59 shifted octaves (msb 5..63) plus the linear region.
  static constexpr std::size_t kBucketCount =
      kSubBucketCount * (64 - kSubBucketBits + 1);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Thread-safe; relaxed atomics only.
  void Record(std::uint64_t value) {
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateMin(value);
    UpdateMax(value);
  }

  // Adds `other`'s counts into this histogram. Safe against concurrent
  // Record() on either side (the merged snapshot is racy but consistent
  // enough for reporting, like any concurrent read).
  void Merge(const LatencyHistogram& other);

  // Value at the p-th percentile, p in [0, 100]. Returns 0 for an empty
  // histogram. The result is the upper bound of the containing bucket:
  // exact for values < 32, within +3.2% above.
  std::uint64_t Percentile(double p) const;

  std::uint64_t Count() const { return total_.load(std::memory_order_relaxed); }
  std::uint64_t Min() const {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    const std::uint64_t n = Count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  // Zeroes all state (not thread-safe against concurrent Record()).
  void Reset();

  // Bucket mapping, exposed for tests.
  static std::size_t BucketIndex(std::uint64_t value);
  // Inclusive value bounds of bucket `index`.
  static std::uint64_t BucketLowerBound(std::size_t index);
  static std::uint64_t BucketUpperBound(std::size_t index);

 private:
  void UpdateMin(std::uint64_t v) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_METRICS_HISTOGRAM_H_
