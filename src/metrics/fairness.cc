#include "src/metrics/fairness.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace malthus {

std::size_t WindowLwss(const std::vector<std::uint32_t>& admissions, std::size_t begin,
                       std::size_t end) {
  std::unordered_set<std::uint32_t> distinct;
  for (std::size_t i = begin; i < end && i < admissions.size(); ++i) {
    distinct.insert(admissions[i]);
  }
  return distinct.size();
}

double AverageLwss(const std::vector<std::uint32_t>& admissions, std::size_t window) {
  if (admissions.empty() || window == 0) {
    return 0.0;
  }
  double sum = 0.0;
  std::size_t windows = 0;
  for (std::size_t begin = 0; begin < admissions.size(); begin += window) {
    const std::size_t end = std::min(begin + window, admissions.size());
    const std::size_t span = end - begin;
    if (span < window / 2 && windows > 0) {
      break;  // Drop a small trailing fragment; it would be noise.
    }
    sum += static_cast<double>(WindowLwss(admissions, begin, end));
    ++windows;
  }
  return windows > 0 ? sum / static_cast<double>(windows) : 0.0;
}

double MedianTimeToReacquire(const std::vector<std::uint32_t>& admissions) {
  std::unordered_map<std::uint32_t, std::size_t> last_seen;
  std::vector<std::uint64_t> ttrs;
  ttrs.reserve(admissions.size());
  for (std::size_t i = 0; i < admissions.size(); ++i) {
    const auto it = last_seen.find(admissions[i]);
    if (it != last_seen.end()) {
      ttrs.push_back(static_cast<std::uint64_t>(i - it->second));
      it->second = i;
    } else {
      last_seen.emplace(admissions[i], i);
    }
  }
  if (ttrs.empty()) {
    return 0.0;
  }
  const std::size_t mid = ttrs.size() / 2;
  std::nth_element(ttrs.begin(), ttrs.begin() + mid, ttrs.end());
  double median = static_cast<double>(ttrs[mid]);
  if (ttrs.size() % 2 == 0) {
    std::nth_element(ttrs.begin(), ttrs.begin() + mid - 1, ttrs.begin() + mid);
    median = (median + static_cast<double>(ttrs[mid - 1])) / 2.0;
  }
  return median;
}

double GiniCoefficient(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cum_weighted += (static_cast<double>(i) + 1.0) * sorted[i];
    total += sorted[i];
  }
  if (total <= 0.0) {
    return 0.0;
  }
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

double RelativeStdDev(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (const double v : values) {
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  if (mean == 0.0) {
    return 0.0;
  }
  double var = 0.0;
  for (const double v : values) {
    var += (v - mean) * (v - mean);
  }
  var /= static_cast<double>(values.size());
  return std::sqrt(var) / mean;
}

}  // namespace malthus
