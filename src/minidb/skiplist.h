// Skiplist-backed ordered map<uint64 -> string> — the memtable substrate of
// minidb (our leveldb stand-in; DESIGN.md §2). Deterministic tower heights
// come from a caller-owned xorshift generator. The structure itself is not
// thread-safe; minidb guards it with the central database mutex, which is
// precisely the contended lock the Figure-8 experiment exercises.
#ifndef MALTHUS_SRC_MINIDB_SKIPLIST_H_
#define MALTHUS_SRC_MINIDB_SKIPLIST_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/rng/xorshift.h"

namespace malthus {

class SkipList {
 public:
  static constexpr int kMaxHeight = 16;

  explicit SkipList(std::uint64_t seed = 7);
  ~SkipList();
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Inserts or overwrites.
  void Put(std::uint64_t key, std::string value);

  // Returns the value or nullopt.
  std::optional<std::string> Get(std::uint64_t key) const;

  // Returns true if the key existed.
  bool Delete(std::uint64_t key);

  std::size_t Size() const { return size_; }

  // Smallest key >= `key`, or nullopt — used by scans.
  std::optional<std::uint64_t> LowerBoundKey(std::uint64_t key) const;

  // Test hook: verifies level-0 ordering and tower consistency.
  bool CheckInvariants() const;

 private:
  struct Node;

  Node* FindGreaterOrEqual(std::uint64_t key, std::array<Node*, kMaxHeight>* prev) const;
  int RandomHeight();

  Node* head_;
  int height_ = 1;
  std::size_t size_ = 0;
  XorShift64 rng_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_MINIDB_SKIPLIST_H_
