// minidb — a small embedded key-value store standing in for leveldb 1.18 in
// the Figure-8 readwhilewriting experiment (DESIGN.md §2).
//
// Architecture mirrors the contention structure the paper identifies:
//   * a central database mutex guarding the skiplist memtable (leveldb's
//     DBImpl::mutex_), taken by every write and by read-path block fills;
//   * a block cache — SimpleLru over "blocks" of kBlockSpan adjacent keys —
//     with its own single mutex (leveldb's LRUCache locks).
// Both locks are highly contended under readwhilewriting and are the locks
// the benchmark swaps between MCS and MCSCR variants.
#ifndef MALTHUS_SRC_MINIDB_MINIDB_H_
#define MALTHUS_SRC_MINIDB_MINIDB_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/minidb/simple_lru.h"
#include "src/minidb/skiplist.h"

namespace malthus {

template <typename Lock>
class MiniDb {
 public:
  static constexpr std::uint64_t kBlockSpan = 16;  // keys per cached block

  explicit MiniDb(std::size_t cache_blocks = 4096) : block_cache_(cache_blocks) {}
  MiniDb(const MiniDb&) = delete;
  MiniDb& operator=(const MiniDb&) = delete;

  void Put(std::uint64_t key, std::string value) {
    db_mutex_.lock();
    memtable_.Put(key, std::move(value));
    // Invalidate-by-overwrite: bump the block generation so stale cached
    // fills for this block are detectable. (A full block invalidation is
    // modelled by reinstalling on next fill.)
    db_mutex_.unlock();
    writes_.fetch_add(1, std::memory_order_relaxed);
  }

  std::optional<std::string> Get(std::uint64_t key) {
    // Fast path: block cache hit means the key's block has been "read from
    // disk" recently; we still fetch the authoritative value under the DB
    // mutex only on a cache miss, as leveldb does for table blocks.
    const std::uint64_t block = key / kBlockSpan;
    if (block_cache_.Lookup(block).has_value()) {
      db_mutex_.lock();
      auto value = memtable_.Get(key);
      db_mutex_.unlock();
      reads_.fetch_add(1, std::memory_order_relaxed);
      return value;
    }
    // Miss: fill the block under the DB mutex (models reading the table
    // file), then install it in the cache.
    db_mutex_.lock();
    auto value = memtable_.Get(key);
    db_mutex_.unlock();
    block_cache_.Insert(block, 1);
    reads_.fetch_add(1, std::memory_order_relaxed);
    return value;
  }

  bool Delete(std::uint64_t key) {
    db_mutex_.lock();
    const bool existed = memtable_.Delete(key);
    db_mutex_.unlock();
    return existed;
  }

  std::size_t Size() {
    db_mutex_.lock();
    const std::size_t s = memtable_.Size();
    db_mutex_.unlock();
    return s;
  }

  std::uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  std::uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  double CacheMissRate() const { return block_cache_.MissRate(); }

  Lock& db_mutex() { return db_mutex_; }
  SimpleLru<Lock>& block_cache() { return block_cache_; }

 private:
  Lock db_mutex_;
  SkipList memtable_;
  SimpleLru<Lock> block_cache_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_MINIDB_MINIDB_H_
