// minidb — a small embedded key-value store standing in for leveldb 1.18 in
// the Figure-8 readwhilewriting experiment (DESIGN.md §2).
//
// Architecture mirrors the contention structure the paper identifies:
//   * a central database mutex guarding the skiplist memtable (leveldb's
//     DBImpl::mutex_), taken by every write and by read-path block fills;
//   * a block cache — an LRU over "blocks" of kBlockSpan adjacent keys —
//     with its own lock(s) (leveldb's LRUCache locks).
//
// Read path: a cached block carries the *values* of its kBlockSpan keys,
// stamped with the block's write generation at fill time. A cache hit whose
// generation still matches serves the value without touching the DB mutex
// at all — leveldb's actual behavior, where table blocks are immutable and
// DBImpl::mutex_ guards only memtable/version state. Only fills (and every
// write) take the DB mutex, so under readwhilewriting the DB mutex carries
// the writer + the miss stream while the block-cache locks carry the hit
// stream — both still CR-amenable, which is what Figure 8 measures.
// (Earlier revisions locked the DB mutex on hits too, contradicting the
// stated "only on a cache miss" design; the generation stamp is what makes
// the bypass safe.)
//
// The block cache is a ShardedLru: cache_shards=1 (the default) reproduces
// the single-mutex LRUCache the paper benchmarks; higher shard counts are
// the PR 8 ablation axis (docs/sharding.md).
#ifndef MALTHUS_SRC_MINIDB_MINIDB_H_
#define MALTHUS_SRC_MINIDB_MINIDB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/minidb/simple_lru.h"
#include "src/minidb/skiplist.h"
#include "src/sharded/sharded_lru.h"

namespace malthus {

template <typename Lock>
class MiniDb {
 public:
  static constexpr std::uint64_t kBlockSpan = 16;  // keys per cached block

  explicit MiniDb(std::size_t cache_blocks = 4096, std::size_t cache_shards = 1)
      : block_cache_(cache_blocks, cache_shards, /*track_displacement=*/true) {}
  MiniDb(const MiniDb&) = delete;
  MiniDb& operator=(const MiniDb&) = delete;

  void Put(std::uint64_t key, std::string value) {
    db_mutex_.lock();
    memtable_.Put(key, std::move(value));
    // Invalidate-by-generation: cached fills for this block become stale
    // and the next Get refills. Bumped inside the mutex so a fill's
    // generation read and memtable snapshot are mutually consistent.
    BumpGeneration(key / kBlockSpan);
    db_mutex_.unlock();
    writes_.fetch_add(1, std::memory_order_relaxed);
  }

  std::optional<std::string> Get(std::uint64_t key, std::uint32_t tid = 0) {
    const std::uint64_t block = key / kBlockSpan;
    // Fast path: a fresh cached block serves the value with NO DB mutex
    // acquisition — the cached fill carries the values and its generation
    // proves no write to the block committed since.
    auto cached = block_cache_.Lookup(block, tid);
    if (cached.has_value()) {
      const BlockPtr& b = *cached;
      if (b->generation ==
          GenerationOf(block).load(std::memory_order_acquire)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        reads_.fetch_add(1, std::memory_order_relaxed);
        return b->values[key % kBlockSpan];
      }
      stale_refills_.fetch_add(1, std::memory_order_relaxed);
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    // Miss (or stale): fill the whole block under the DB mutex — models
    // reading the table block from disk — then install it in the cache.
    auto filled = std::make_shared<CachedBlock>();
    const std::uint64_t base = block * kBlockSpan;
    db_mutex_.lock();
    filled->generation = GenerationOf(block).load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < kBlockSpan; ++i) {
      filled->values[i] = memtable_.Get(base + i);
    }
    db_mutex_.unlock();
    auto value = filled->values[key % kBlockSpan];
    block_cache_.Insert(block, std::move(filled), tid);
    reads_.fetch_add(1, std::memory_order_relaxed);
    return value;
  }

  bool Delete(std::uint64_t key) {
    db_mutex_.lock();
    const bool existed = memtable_.Delete(key);
    BumpGeneration(key / kBlockSpan);
    db_mutex_.unlock();
    return existed;
  }

  std::size_t Size() {
    db_mutex_.lock();
    const std::size_t s = memtable_.Size();
    db_mutex_.unlock();
    return s;
  }

  std::uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  std::uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  // Hits whose block generation no longer matched (a write intervened);
  // counted as misses because they pay the full fill path.
  std::uint64_t stale_refills() const {
    return stale_refills_.load(std::memory_order_relaxed);
  }
  // Miss rate over the DB's own accounting: a stale hit is a miss (it takes
  // the DB mutex and refills), regardless of what the LRU layer saw.
  double CacheMissRate() const {
    const double total = static_cast<double>(cache_hits() + cache_misses());
    return total == 0 ? 0.0
                      : static_cast<double>(cache_misses()) / total;
  }

  // A cached block: the values of kBlockSpan adjacent keys snapshotted
  // under the DB mutex, stamped with the block's write generation.
  struct CachedBlock {
    std::uint64_t generation = 0;
    std::array<std::optional<std::string>, kBlockSpan> values;
  };
  using BlockPtr = std::shared_ptr<const CachedBlock>;
  using BlockCache = ShardedLru<Lock, BlockPtr>;

  Lock& db_mutex() { return db_mutex_; }
  BlockCache& block_cache() { return block_cache_; }
  const BlockCache& block_cache() const { return block_cache_; }

 private:
  // Block write generations, folded into a fixed array by the shard mix.
  // Collisions only cause spurious refills (false staleness), never a stale
  // hit. Bumps happen inside the DB mutex; release pairs with the hit
  // path's acquire so a matching generation proves the snapshot covers
  // every committed write to the block.
  static constexpr std::size_t kGenSlots = 4096;  // power of two
  std::atomic<std::uint64_t>& GenerationOf(std::uint64_t block) {
    return block_gens_[static_cast<std::size_t>(MixShardHash(block)) &
                       (kGenSlots - 1)];
  }
  void BumpGeneration(std::uint64_t block) {
    GenerationOf(block).fetch_add(1, std::memory_order_release);
  }

  Lock db_mutex_;
  SkipList memtable_;
  BlockCache block_cache_;
  std::array<std::atomic<std::uint64_t>, kGenSlots> block_gens_{};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> stale_refills_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_MINIDB_MINIDB_H_
