#include "src/minidb/simple_lru.h"

#include "src/core/mcscr.h"
#include "src/locks/mcs.h"

namespace malthus {

template class LruCoreT<std::uint64_t>;
template class SimpleLru<McsSpinLock>;
template class SimpleLru<McscrStpLock>;

}  // namespace malthus
