#include "src/minidb/minidb.h"

#include "src/core/mcscr.h"
#include "src/locks/mcs.h"

namespace malthus {

template class MiniDb<McsSpinLock>;
template class MiniDb<McscrStpLock>;

}  // namespace malthus
