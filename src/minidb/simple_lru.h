// SimpleLRU — a reimplementation of the CEPH SimpleLRU class the paper's
// LRUCache benchmark uses (§6.9): a std::map (red-black tree) from key to
// value plus an intrusive recency list, protected by a single mutex.
// Recently accessed elements move to the front; inserts beyond capacity
// trim from the tail. On a miss the benchmark installs the key itself as
// the value, so miss overheads are exactly one erase + one insert.
//
// The class doubles as a *software shared cache*: displacement statistics
// distinguish self-displacement from displacement by other threads
// (footnote 33 — "conceptually equivalent to a small shared hardware cache
// having perfect associativity").
//
// The unsynchronized recency machinery lives in LruCoreT so the sharded
// variant (src/sharded/sharded_lru.h) runs one core per partition;
// SimpleLru<Lock> is the original single-lock wrapper over one core — the
// shards=1 degenerate case the paper-figure benches keep using.
#ifndef MALTHUS_SRC_MINIDB_SIMPLE_LRU_H_
#define MALTHUS_SRC_MINIDB_SIMPLE_LRU_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <utility>

namespace malthus {

// Single-threaded LRU core: map + intrusive recency list, no lock, no
// atomic hit/miss counters (the synchronized wrappers own those; callers
// derive hit/miss from Lookup's return). Displacement and eviction counters
// are relaxed atomics written only under the owning wrapper's lock, so
// cross-shard stats reads need no lock.
template <typename Value>
class LruCoreT {
 public:
  explicit LruCoreT(std::size_t max_size, bool track_displacement = false)
      : max_size_(max_size), track_displacement_(track_displacement) {}
  LruCoreT(const LruCoreT&) = delete;
  LruCoreT& operator=(const LruCoreT&) = delete;

  // Returns the cached value, promoting the entry; nullopt on miss.
  std::optional<Value> Lookup(std::uint64_t key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.value;
  }

  // Inserts/overwrites, trimming the tail beyond capacity.
  void Insert(std::uint64_t key, Value value, std::uint32_t tid = 0) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return;
    }
    lru_.push_front(Entry{key, tid});
    map_.emplace(key, Mapped{std::move(value), lru_.begin()});
    while (map_.size() > max_size_) {
      const Entry& victim = lru_.back();
      if (track_displacement_) {
        if (victim.installer_tid == tid) {
          self_displacements_.fetch_add(1, std::memory_order_relaxed);
        } else {
          extrinsic_displacements_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      evictions_.fetch_add(1, std::memory_order_relaxed);
      map_.erase(victim.key);
      lru_.pop_back();
    }
  }

  std::size_t Size() const { return map_.size(); }
  std::size_t capacity() const { return max_size_; }

  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  std::uint64_t self_displacements() const {
    return self_displacements_.load(std::memory_order_relaxed);
  }
  std::uint64_t extrinsic_displacements() const {
    return extrinsic_displacements_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::uint32_t installer_tid;
  };
  struct Mapped {
    Value value;
    typename std::list<Entry>::iterator lru_it;
  };

  const std::size_t max_size_;
  const bool track_displacement_;
  std::map<std::uint64_t, Mapped> map_;
  std::list<Entry> lru_;
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> self_displacements_{0};
  std::atomic<std::uint64_t> extrinsic_displacements_{0};
};

using LruCore = LruCoreT<std::uint64_t>;

template <typename Lock>
class SimpleLru {
 public:
  explicit SimpleLru(std::size_t max_size, bool track_displacement = false)
      : core_(max_size, track_displacement) {}
  SimpleLru(const SimpleLru&) = delete;
  SimpleLru& operator=(const SimpleLru&) = delete;

  // Returns the cached value, promoting the entry; nullopt on miss.
  std::optional<std::uint64_t> Lookup(std::uint64_t key, std::uint32_t /*tid*/ = 0) {
    lock_.lock();
    const auto value = core_.Lookup(key);
    lock_.unlock();
    if (value.has_value()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return value;
  }

  // Inserts/overwrites, trimming the tail beyond capacity.
  void Insert(std::uint64_t key, std::uint64_t value, std::uint32_t tid = 0) {
    lock_.lock();
    core_.Insert(key, value, tid);
    lock_.unlock();
  }

  std::size_t Size() {
    lock_.lock();
    const std::size_t s = core_.Size();
    lock_.unlock();
    return s;
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const { return core_.evictions(); }
  std::uint64_t self_displacements() const { return core_.self_displacements(); }
  std::uint64_t extrinsic_displacements() const {
    return core_.extrinsic_displacements();
  }
  double MissRate() const {
    const double total = static_cast<double>(hits() + misses());
    return total == 0 ? 0.0 : static_cast<double>(misses()) / total;
  }

  Lock& lock() { return lock_; }

 private:
  Lock lock_;
  LruCore core_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace malthus

#endif  // MALTHUS_SRC_MINIDB_SIMPLE_LRU_H_
