#include "src/minidb/skiplist.h"

#include <cassert>

namespace malthus {

struct SkipList::Node {
  std::uint64_t key;
  std::string value;
  int height;
  std::array<Node*, kMaxHeight> next;  // only [0, height) are meaningful

  Node(std::uint64_t k, std::string v, int h) : key(k), value(std::move(v)), height(h) {
    next.fill(nullptr);
  }
};

SkipList::SkipList(std::uint64_t seed) : rng_(seed) {
  head_ = new Node(0, std::string(), kMaxHeight);
}

SkipList::~SkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    delete n;
    n = next;
  }
}

int SkipList::RandomHeight() {
  // Geometric with p = 1/4, as in leveldb.
  int h = 1;
  while (h < kMaxHeight && rng_.NextBelow(4) == 0) {
    ++h;
  }
  return h;
}

SkipList::Node* SkipList::FindGreaterOrEqual(std::uint64_t key,
                                             std::array<Node*, kMaxHeight>* prev) const {
  Node* x = head_;
  for (int level = height_ - 1; level >= 0; --level) {
    while (x->next[level] != nullptr && x->next[level]->key < key) {
      x = x->next[level];
    }
    if (prev != nullptr) {
      (*prev)[level] = x;
    }
  }
  return x->next[0];
}

void SkipList::Put(std::uint64_t key, std::string value) {
  std::array<Node*, kMaxHeight> prev;
  prev.fill(head_);
  Node* hit = FindGreaterOrEqual(key, &prev);
  if (hit != nullptr && hit->key == key) {
    hit->value = std::move(value);
    return;
  }
  const int h = RandomHeight();
  if (h > height_) {
    height_ = h;
  }
  Node* node = new Node(key, std::move(value), h);
  for (int level = 0; level < h; ++level) {
    node->next[level] = prev[level]->next[level];
    prev[level]->next[level] = node;
  }
  ++size_;
}

std::optional<std::string> SkipList::Get(std::uint64_t key) const {
  Node* n = FindGreaterOrEqual(key, nullptr);
  if (n != nullptr && n->key == key) {
    return n->value;
  }
  return std::nullopt;
}

bool SkipList::Delete(std::uint64_t key) {
  std::array<Node*, kMaxHeight> prev;
  prev.fill(head_);
  Node* n = FindGreaterOrEqual(key, &prev);
  if (n == nullptr || n->key != key) {
    return false;
  }
  for (int level = 0; level < n->height; ++level) {
    if (prev[level]->next[level] == n) {
      prev[level]->next[level] = n->next[level];
    }
  }
  delete n;
  --size_;
  return true;
}

std::optional<std::uint64_t> SkipList::LowerBoundKey(std::uint64_t key) const {
  Node* n = FindGreaterOrEqual(key, nullptr);
  if (n == nullptr) {
    return std::nullopt;
  }
  return n->key;
}

bool SkipList::CheckInvariants() const {
  // Level-0 strictly ascending.
  const Node* n = head_->next[0];
  std::size_t count = 0;
  std::uint64_t last = 0;
  bool first = true;
  while (n != nullptr) {
    if (!first && n->key <= last) {
      return false;
    }
    last = n->key;
    first = false;
    ++count;
    n = n->next[0];
  }
  if (count != size_) {
    return false;
  }
  // Every higher level must be a subsequence of level 0.
  for (int level = 1; level < height_; ++level) {
    const Node* upper = head_->next[level];
    const Node* lower = head_->next[0];
    while (upper != nullptr) {
      while (lower != nullptr && lower != upper) {
        lower = lower->next[0];
      }
      if (lower == nullptr) {
        return false;
      }
      upper = upper->next[level];
    }
  }
  return true;
}

}  // namespace malthus
