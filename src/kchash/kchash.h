// kchash — an in-memory hash cache database standing in for Kyoto Cabinet's
// CacheDB in the Figure-9 kccachetest experiment (DESIGN.md §2).
//
// Open-chaining hash buckets hold records {key, value}; a global intrusive
// LRU list enforces a capacity bound by evicting the coldest record on
// insert. The whole structure sits behind ONE pthread-style mutex (template
// parameter), reproducing the contention profile the paper reports as
// "known to be sensitive to the choice of lock algorithm": a hot central
// lock whose critical sections walk sizeable in-memory state (the LLC-
// resident working set).
//
// The Wicked() helper runs kccachetest's mixed workload: random set / get /
// remove over a fixed key range.
#ifndef MALTHUS_SRC_KCHASH_KCHASH_H_
#define MALTHUS_SRC_KCHASH_KCHASH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/rng/xorshift.h"

namespace malthus {

// Single-threaded core; see LockedKcHash below for the benchmarked form.
class KcHashCore {
 public:
  KcHashCore(std::size_t bucket_count, std::size_t capacity);
  ~KcHashCore();
  KcHashCore(const KcHashCore&) = delete;
  KcHashCore& operator=(const KcHashCore&) = delete;

  void Set(std::uint64_t key, std::string value);
  std::optional<std::string> Get(std::uint64_t key);
  bool Remove(std::uint64_t key);
  std::size_t Size() const { return size_; }
  std::uint64_t evictions() const { return evictions_; }

  // Test hook: bucket chains consistent with the LRU list.
  bool CheckInvariants() const;

 private:
  struct Record {
    std::uint64_t key;
    std::string value;
    Record* bucket_next = nullptr;
    Record* lru_prev = nullptr;
    Record* lru_next = nullptr;
  };

  std::size_t BucketOf(std::uint64_t key) const;
  Record* FindInBucket(std::uint64_t key) const;
  void LruUnlink(Record* r);
  void LruPushFront(Record* r);
  void EvictColdest();
  void RemoveRecord(Record* r);

  std::vector<Record*> buckets_;
  Record* lru_head_ = nullptr;  // most recently used
  Record* lru_tail_ = nullptr;  // eviction end
  std::size_t size_ = 0;
  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
};

template <typename Lock>
class LockedKcHash {
 public:
  LockedKcHash(std::size_t bucket_count, std::size_t capacity) : core_(bucket_count, capacity) {}

  void Set(std::uint64_t key, std::string value) {
    lock_.lock();
    core_.Set(key, std::move(value));
    lock_.unlock();
  }

  std::optional<std::string> Get(std::uint64_t key) {
    lock_.lock();
    auto v = core_.Get(key);
    lock_.unlock();
    return v;
  }

  bool Remove(std::uint64_t key) {
    lock_.lock();
    const bool removed = core_.Remove(key);
    lock_.unlock();
    return removed;
  }

  // One kccachetest "wicked" step: randomized op over [0, key_range).
  void WickedStep(XorShift64& rng, std::uint64_t key_range) {
    const std::uint64_t key = rng.NextBelow(key_range);
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2:
        Set(key, std::string(reinterpret_cast<const char*>(&key), sizeof(key)));
        break;
      case 3:
        Remove(key);
        break;
      default:
        Get(key);
        break;
    }
  }

  Lock& lock() { return lock_; }
  KcHashCore& core() { return core_; }

 private:
  Lock lock_;
  KcHashCore core_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_KCHASH_KCHASH_H_
