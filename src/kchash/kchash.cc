#include "src/kchash/kchash.h"

namespace malthus {

KcHashCore::KcHashCore(std::size_t bucket_count, std::size_t capacity)
    : buckets_(bucket_count == 0 ? 1 : bucket_count, nullptr),
      capacity_(capacity == 0 ? 1 : capacity) {}

KcHashCore::~KcHashCore() {
  Record* r = lru_head_;
  while (r != nullptr) {
    Record* next = r->lru_next;
    delete r;
    r = next;
  }
}

std::size_t KcHashCore::BucketOf(std::uint64_t key) const {
  // Fibonacci hashing spreads sequential keys across buckets.
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) % buckets_.size();
}

KcHashCore::Record* KcHashCore::FindInBucket(std::uint64_t key) const {
  Record* r = buckets_[BucketOf(key)];
  while (r != nullptr && r->key != key) {
    r = r->bucket_next;
  }
  return r;
}

void KcHashCore::LruUnlink(Record* r) {
  if (r->lru_prev != nullptr) {
    r->lru_prev->lru_next = r->lru_next;
  } else {
    lru_head_ = r->lru_next;
  }
  if (r->lru_next != nullptr) {
    r->lru_next->lru_prev = r->lru_prev;
  } else {
    lru_tail_ = r->lru_prev;
  }
  r->lru_prev = r->lru_next = nullptr;
}

void KcHashCore::LruPushFront(Record* r) {
  r->lru_prev = nullptr;
  r->lru_next = lru_head_;
  if (lru_head_ != nullptr) {
    lru_head_->lru_prev = r;
  } else {
    lru_tail_ = r;
  }
  lru_head_ = r;
}

void KcHashCore::RemoveRecord(Record* r) {
  Record** link = &buckets_[BucketOf(r->key)];
  while (*link != r) {
    link = &(*link)->bucket_next;
  }
  *link = r->bucket_next;
  LruUnlink(r);
  delete r;
  --size_;
}

void KcHashCore::EvictColdest() {
  if (lru_tail_ != nullptr) {
    ++evictions_;
    RemoveRecord(lru_tail_);
  }
}

void KcHashCore::Set(std::uint64_t key, std::string value) {
  Record* r = FindInBucket(key);
  if (r != nullptr) {
    r->value = std::move(value);
    LruUnlink(r);
    LruPushFront(r);
    return;
  }
  while (size_ >= capacity_) {
    EvictColdest();
  }
  r = new Record{key, std::move(value)};
  r->bucket_next = buckets_[BucketOf(key)];
  buckets_[BucketOf(key)] = r;
  LruPushFront(r);
  ++size_;
}

std::optional<std::string> KcHashCore::Get(std::uint64_t key) {
  Record* r = FindInBucket(key);
  if (r == nullptr) {
    return std::nullopt;
  }
  LruUnlink(r);
  LruPushFront(r);
  return r->value;
}

bool KcHashCore::Remove(std::uint64_t key) {
  Record* r = FindInBucket(key);
  if (r == nullptr) {
    return false;
  }
  RemoveRecord(r);
  return true;
}

bool KcHashCore::CheckInvariants() const {
  // Every bucket record appears in the LRU list exactly once, and sizes
  // agree.
  std::size_t bucket_records = 0;
  for (const Record* r : buckets_) {
    while (r != nullptr) {
      ++bucket_records;
      r = r->bucket_next;
    }
  }
  std::size_t lru_records = 0;
  const Record* prev = nullptr;
  const Record* r = lru_head_;
  while (r != nullptr) {
    if (r->lru_prev != prev) {
      return false;
    }
    ++lru_records;
    prev = r;
    r = r->lru_next;
  }
  if (lru_tail_ != prev) {
    return false;
  }
  return bucket_records == size_ && lru_records == size_ && size_ <= capacity_;
}

}  // namespace malthus
