#include "src/sharded/sharded_table.h"

#include "src/platform/sysinfo.h"

namespace malthus {

std::size_t NormalizeShardCount(std::size_t requested) {
  if (requested <= 1) {
    return 1;
  }
  std::size_t n = 1;
  while (n < requested) {
    n <<= 1;
  }
  return n;
}

std::size_t DefaultShardCount() {
  const int cpus = EffectiveCpuCount();
  std::size_t n = NormalizeShardCount(cpus > 0 ? static_cast<std::size_t>(cpus) : 1);
  return n > 64 ? 64 : n;
}

}  // namespace malthus
