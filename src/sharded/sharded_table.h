// ShardedTable — the generic sharding layer under the repo's hot data
// structures (minidb's block cache, kchash, SimpleLRU, and the KV server
// backends built from them).
//
// The paper attributes throughput collapse to contention on a single hot
// lock; the single-global-lock structures bake that in. ShardedTable spreads
// the *structure* contention across N power-of-two partitions — one
// unsynchronized core structure plus one registry-pluggable Malthusian lock
// per shard — so the ablation "shards × lock type × oversubscription" can
// ask whether concurrency-restricting succession still pays once contention
// is diluted (docs/sharding.md). shards=1 is the degenerate case and
// behaves exactly like the original single-lock wrapper, which is why the
// paper-figure benches keep using the original classes.
//
// Design points:
//   * Shard selection is a full-avalanche mix (splitmix64 finalizer) of the
//     key, masked to the shard count. The cores' own bucket hashes use a
//     different mix (Fibonacci), so shard choice and in-shard bucket choice
//     stay uncorrelated.
//   * Each shard slot is cache-line-aligned (kCacheLineSize = two 64-byte
//     lines, defeating adjacent-line prefetchers) so shard locks and hot
//     core headers never false-share.
//   * Aggregate stats (size/hits/misses/evictions) are sums over relaxed
//     per-shard counters maintained *under* the shard lock but readable by
//     anyone without it — cross-shard reads are best-effort snapshots, not
//     a consistent cut (the same semantics a sharded production cache
//     offers its stats endpoint).
//   * ForEachShard locks one shard at a time: iteration observes each shard
//     atomically but not the table as a whole. Callers needing a fixed
//     point-in-time view must stop writers first.
#ifndef MALTHUS_SRC_SHARDED_SHARDED_TABLE_H_
#define MALTHUS_SRC_SHARDED_SHARDED_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/platform/align.h"

namespace malthus {

// Rounds `requested` up to a power of two (minimum 1) so shard selection is
// a mask, not a modulo.
std::size_t NormalizeShardCount(std::size_t requested);

// Default shard count for "just shard it for this host": the smallest power
// of two >= EffectiveCpuCount(), capped at 64.
std::size_t DefaultShardCount();

// splitmix64 finalizer: full-avalanche 64-bit mix. Low bits of the result
// are safe to mask for shard selection even for sequential keys.
inline std::uint64_t MixShardHash(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Per-shard relaxed counters. Written only while holding the shard lock;
// read lock-free by the aggregate accessors. size/evictions mirror the core
// (stored after each mutating op); hits/misses are bumped by the wrapper.
struct ShardCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::size_t> size{0};
};

template <typename Core, typename Lock>
class ShardedTable {
 public:
  struct Stats {
    std::size_t size = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  // Constructs NormalizeShardCount(shards) shards, each core built from a
  // copy of `args` (callers pre-divide capacities: per-shard capacity =
  // total/N).
  template <typename... Args>
  explicit ShardedTable(std::size_t shards, Args&&... args) {
    const std::size_t n = NormalizeShardCount(shards);
    mask_ = n - 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>(args...));
    }
  }
  ShardedTable(const ShardedTable&) = delete;
  ShardedTable& operator=(const ShardedTable&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t ShardIndex(std::uint64_t key) const {
    return static_cast<std::size_t>(MixShardHash(key)) & mask_;
  }

  // Runs `fn(core, counters)` under the owning shard's lock and returns its
  // result. The single-lock critical-section shape of the unsharded
  // structures, narrowed to one partition.
  template <typename Fn>
  decltype(auto) WithShard(std::uint64_t key, Fn&& fn) {
    return WithShardAt(ShardIndex(key), std::forward<Fn>(fn));
  }

  template <typename Fn>
  decltype(auto) WithShardAt(std::size_t index, Fn&& fn) {
    Shard& s = *shards_[index];
    s.lock.lock();
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&, Core&, ShardCounters&>>) {
      fn(s.core, s.counters);
      s.lock.unlock();
    } else {
      auto result = fn(s.core, s.counters);
      s.lock.unlock();
      return result;
    }
  }

  // Best-effort cross-shard iteration: visits each shard under its own lock
  // in index order. Each shard is seen atomically; the table is not.
  template <typename Fn>
  void ForEachShard(Fn&& fn) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = *shards_[i];
      s.lock.lock();
      fn(i, s.core, s.counters);
      s.lock.unlock();
    }
  }

  // Lock-free aggregate: sums of the relaxed per-shard counters. Best
  // effort under concurrent writers (never tears a single counter, may mix
  // counters from different instants).
  Stats AggregateStats() const {
    Stats out;
    for (const auto& s : shards_) {
      out.size += s->counters.size.load(std::memory_order_relaxed);
      out.hits += s->counters.hits.load(std::memory_order_relaxed);
      out.misses += s->counters.misses.load(std::memory_order_relaxed);
      out.evictions += s->counters.evictions.load(std::memory_order_relaxed);
    }
    return out;
  }

  // Direct shard access for tests and lock-level instrumentation (spin
  // budgets, admission recorders, timed-acquisition experiments).
  Lock& shard_lock(std::size_t index) { return shards_[index]->lock; }
  const ShardCounters& shard_counters(std::size_t index) const {
    return shards_[index]->counters;
  }
  // Lock-free core peek: the caller may only touch the core's relaxed
  // atomic counters unless it also holds shard_lock(index).
  const Core& shard_core(std::size_t index) const { return shards_[index]->core; }

 private:
  // One partition: lock + core + stats in a single aligned slot. Separate
  // heap allocations (each alignas(kCacheLineSize)) keep neighbouring
  // shards off each other's cache lines.
  struct alignas(kCacheLineSize) Shard {
    template <typename... Args>
    explicit Shard(Args&&... args) : core(std::forward<Args>(args)...) {}
    Lock lock;
    Core core;
    ShardCounters counters;
  };

  std::size_t mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Splits a whole-table capacity (or bucket count) into the per-shard share:
// ceil(total / shards), minimum 1, so N shards jointly cover at least the
// requested total.
inline std::size_t PerShardShare(std::size_t total, std::size_t shards) {
  if (shards == 0) {
    shards = 1;
  }
  const std::size_t share = (total + shards - 1) / shards;
  return share == 0 ? 1 : share;
}

}  // namespace malthus

#endif  // MALTHUS_SRC_SHARDED_SHARDED_TABLE_H_
