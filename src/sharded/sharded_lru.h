// ShardedLru — SimpleLru's recency semantics spread over N partitions.
//
// Each shard runs its own LruCoreT (recency list + map) behind its own
// registry-pluggable lock, with per-shard capacity = total/N: the recency
// order is per-shard, so an entry can only displace entries that hash to
// its own partition. That is the standard sharded-cache approximation of
// global LRU (memcached, leveldb's ShardedLRUCache): hot keys spread across
// shards, and the aggregate hit rate converges to the global-LRU rate as
// long as per-shard capacity stays well above the hot set per shard.
// shards=1 degenerates to exactly SimpleLru's behavior.
//
// Displacement statistics (footnote 33) remain meaningful per shard: the
// installer tid rides with each entry, so self- vs extrinsic-displacement
// is attributed within the partition where the displacement happened.
#ifndef MALTHUS_SRC_SHARDED_SHARDED_LRU_H_
#define MALTHUS_SRC_SHARDED_SHARDED_LRU_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "src/minidb/simple_lru.h"
#include "src/sharded/sharded_table.h"

namespace malthus {

template <typename Lock, typename Value = std::uint64_t>
class ShardedLru {
 public:
  using Core = LruCoreT<Value>;

  // `max_size` is the whole-table capacity; each of the (power-of-two
  // normalized) shards holds ceil(max_size / shards).
  ShardedLru(std::size_t max_size, std::size_t shards,
             bool track_displacement = false)
      : table_(shards, PerShardShare(max_size, NormalizeShardCount(shards)),
               track_displacement) {}

  std::optional<Value> Lookup(std::uint64_t key, std::uint32_t /*tid*/ = 0) {
    return table_.WithShard(key, [&](Core& core, ShardCounters& c) {
      auto value = core.Lookup(key);
      if (value.has_value()) {
        c.hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        c.misses.fetch_add(1, std::memory_order_relaxed);
      }
      return value;
    });
  }

  void Insert(std::uint64_t key, Value value, std::uint32_t tid = 0) {
    table_.WithShard(key, [&](Core& core, ShardCounters& c) {
      core.Insert(key, std::move(value), tid);
      c.size.store(core.Size(), std::memory_order_relaxed);
      c.evictions.store(core.evictions(), std::memory_order_relaxed);
    });
  }

  // Best-effort aggregate size (sum of relaxed per-shard counters).
  std::size_t Size() const { return table_.AggregateStats().size; }

  std::uint64_t hits() const { return table_.AggregateStats().hits; }
  std::uint64_t misses() const { return table_.AggregateStats().misses; }
  std::uint64_t evictions() const { return table_.AggregateStats().evictions; }
  double MissRate() const {
    const auto stats = table_.AggregateStats();
    const double total = static_cast<double>(stats.hits + stats.misses);
    return total == 0 ? 0.0 : static_cast<double>(stats.misses) / total;
  }

  // Displacement counters are relaxed atomics in the cores, so the sums
  // need no locks (best-effort snapshot, like the other aggregates).
  std::uint64_t self_displacements() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < table_.shard_count(); ++i) {
      total += table_.shard_core(i).self_displacements();
    }
    return total;
  }
  std::uint64_t extrinsic_displacements() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < table_.shard_count(); ++i) {
      total += table_.shard_core(i).extrinsic_displacements();
    }
    return total;
  }

  std::size_t shard_count() const { return table_.shard_count(); }
  std::size_t ShardIndex(std::uint64_t key) const { return table_.ShardIndex(key); }
  Lock& shard_lock(std::size_t index) { return table_.shard_lock(index); }

  ShardedTable<Core, Lock>& table() { return table_; }

 private:
  ShardedTable<Core, Lock> table_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SHARDED_SHARDED_LRU_H_
