// ShardedKcHash — the Figure-9 Kyoto-style hash cache spread over N
// partitions: each shard owns its slice of the bucket array AND its own
// intrusive LRU eviction list behind its own lock, so both the bucket walk
// and the eviction pass contend only within a partition. Capacity and
// bucket count are divided per shard (capacity/N each), which makes
// eviction per-partition LRU — the standard sharded approximation of the
// global coldest-first order (see docs/sharding.md). shards=1 degenerates
// to LockedKcHash's behavior exactly.
#ifndef MALTHUS_SRC_SHARDED_SHARDED_KCHASH_H_
#define MALTHUS_SRC_SHARDED_SHARDED_KCHASH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "src/kchash/kchash.h"
#include "src/rng/xorshift.h"
#include "src/sharded/sharded_table.h"

namespace malthus {

template <typename Lock>
class ShardedKcHash {
 public:
  // `bucket_count` and `capacity` are whole-table totals, divided across
  // the (power-of-two normalized) shards.
  ShardedKcHash(std::size_t bucket_count, std::size_t capacity, std::size_t shards)
      : table_(shards, PerShardShare(bucket_count, NormalizeShardCount(shards)),
               PerShardShare(capacity, NormalizeShardCount(shards))) {}

  void Set(std::uint64_t key, std::string value) {
    table_.WithShard(key, [&](KcHashCore& core, ShardCounters& c) {
      core.Set(key, std::move(value));
      c.size.store(core.Size(), std::memory_order_relaxed);
      c.evictions.store(core.evictions(), std::memory_order_relaxed);
    });
  }

  std::optional<std::string> Get(std::uint64_t key) {
    return table_.WithShard(key, [&](KcHashCore& core, ShardCounters& c) {
      auto value = core.Get(key);
      if (value.has_value()) {
        c.hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        c.misses.fetch_add(1, std::memory_order_relaxed);
      }
      return value;
    });
  }

  bool Remove(std::uint64_t key) {
    return table_.WithShard(key, [&](KcHashCore& core, ShardCounters& c) {
      const bool removed = core.Remove(key);
      c.size.store(core.Size(), std::memory_order_relaxed);
      return removed;
    });
  }

  // One kccachetest "wicked" step: randomized op over [0, key_range) —
  // the same op mix as LockedKcHash::WickedStep.
  void WickedStep(XorShift64& rng, std::uint64_t key_range) {
    const std::uint64_t key = rng.NextBelow(key_range);
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2:
        Set(key, std::string(reinterpret_cast<const char*>(&key), sizeof(key)));
        break;
      case 3:
        Remove(key);
        break;
      default:
        Get(key);
        break;
    }
  }

  // Best-effort aggregates (sums of relaxed per-shard counters).
  std::size_t Size() const { return table_.AggregateStats().size; }
  std::uint64_t hits() const { return table_.AggregateStats().hits; }
  std::uint64_t misses() const { return table_.AggregateStats().misses; }
  std::uint64_t evictions() const { return table_.AggregateStats().evictions; }

  // Quiescent-state check: every shard's bucket chains consistent with its
  // LRU list. Locks one shard at a time (not a global cut — run with
  // writers stopped for an exact answer).
  bool CheckInvariants() {
    bool ok = true;
    table_.ForEachShard([&](std::size_t, KcHashCore& core, ShardCounters&) {
      ok = ok && core.CheckInvariants();
    });
    return ok;
  }

  std::size_t shard_count() const { return table_.shard_count(); }
  std::size_t ShardIndex(std::uint64_t key) const { return table_.ShardIndex(key); }
  Lock& shard_lock(std::size_t index) { return table_.shard_lock(index); }

  ShardedTable<KcHashCore, Lock>& table() { return table_; }

 private:
  ShardedTable<KcHashCore, Lock> table_;
};

}  // namespace malthus

#endif  // MALTHUS_SRC_SHARDED_SHARDED_KCHASH_H_
