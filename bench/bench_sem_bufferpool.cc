// §6.11 semaphore variant of the buffer pool: threads waiting for a buffer
// block on a CR semaphore instead of a condition variable. The paper
// reports results "effectively identical" to Figure 14; this bench runs the
// P sweep's endpoints plus the mostly-LIFO point so the equivalence can be
// eyeballed against Fig14's rows.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.h"
#include "src/sync/buffer_pool.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::size_t kBufferBytes = 1u << 20;
constexpr std::size_t kPoolBuffers = 5;

void RunSemPool(benchmark::State& state, double append_p, int threads) {
  for (auto _ : state) {
    SemaphoreBufferPool pool(kPoolBuffers, kBufferBytes,
                             CrSemaphoreOptions{.append_probability = append_p});
    const std::size_t slots = kBufferBytes / sizeof(std::uint32_t);
    std::vector<std::vector<std::uint32_t>> privates(
        static_cast<std::size_t>(threads), std::vector<std::uint32_t>(slots, 1));
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      XorShift64& rng = ThreadLocalRng();
      auto& mine = privates[static_cast<std::size_t>(t)];
      PoolBuffer* buffer = pool.Acquire();
      for (int i = 0; i < 500; ++i) {
        std::swap(buffer->data[rng.NextBelow(slots)], mine[rng.NextBelow(slots)]);
      }
      pool.Release(buffer);
      for (int i = 0; i < 5000; ++i) {
        mine[rng.NextBelow(slots)] += 1;
      }
    });
    ReportResult(state, result);
  }
}

void RegisterAll() {
  struct Series {
    const char* name;
    double p;
  };
  // Sweep past the CPU count: the pool saturates only near
  // threads * CS/(CS+NCS) ~= buffer count (see bench_fig14_bufferpool.cc).
  const auto thread_counts = SweepThreadCounts(2 * MaxSweepThreads());
  for (const Series series :
       {Series{"fifo", 1.0}, Series{"mostly-lifo", 1.0 / 1000}, Series{"lifo", 0.0}}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          (std::string("SemPool/") + series.name + "/threads:" + std::to_string(threads)).c_str(),
          [series, threads](benchmark::State& s) { RunSemPool(s, series.p, threads); })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
