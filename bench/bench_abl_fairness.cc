// Ablation — the fairness-throughput trade-off (§4: "The probability
// parameter is tunable and reflects the trade-off between fairness and
// throughput"). Sweeps MCSCR's fairness_one_in over {0 (pure CR), 10, 100,
// 1000 (paper default), 10000} at a fixed thread count and reports
// throughput, average LWSS, MTTR and Gini.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/common.h"
#include "bench/randarray.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

void FairnessPoint(benchmark::State& state, std::uint64_t one_in) {
  const int threads = std::min(16, MaxSweepThreads());
  for (auto _ : state) {
    McscrOptions opts;
    opts.fairness_one_in = one_in;
    McscrStpLock lock(opts);
    AdmissionLog log(1 << 21);
    lock.set_recorder(&log);
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    std::vector<std::vector<std::uint32_t>> privates(
        static_cast<std::size_t>(threads), std::vector<std::uint32_t>(64 * 1024, 1));
    std::vector<std::uint32_t> shared(64 * 1024, 1);
    std::atomic<std::uint64_t> sink{0};
    const BenchResult result = RunFixedTime(config, [&](int t) {
      XorShift64& rng = ThreadLocalRng();
      std::uint64_t sum = 0;
      lock.lock();
      for (int i = 0; i < 50; ++i) {
        sum += shared[rng.NextBelow(shared.size())];
      }
      lock.unlock();
      auto& mine = privates[static_cast<std::size_t>(t)];
      for (int i = 0; i < 200; ++i) {
        sum += mine[rng.NextBelow(mine.size())];
      }
      sink.fetch_add(sum, std::memory_order_relaxed);
    });
    ReportResult(state, result);
    ReportFairness(state, log.Report());
    state.counters["fairness_grants"] = static_cast<double>(lock.fairness_grants());
  }
}

void RegisterAll() {
  for (const std::uint64_t one_in : {0ull, 10ull, 100ull, 1000ull, 10000ull}) {
    benchmark::RegisterBenchmark(
        ("AblFairness/one_in:" + std::to_string(one_in)).c_str(),
        [one_in](benchmark::State& s) { FairnessPoint(s, one_in); })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
