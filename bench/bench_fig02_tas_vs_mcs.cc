// Figure 2 — "Comparison of TAS and MCS locks". The paper's table is
// qualitative; this bench backs each row with a measurement:
//   * latency            — uncontended lock+unlock round trip,
//   * high-contention    — throughput at 8 threads,
//   * preemption         — throughput at 2x logical CPUs (lock-waiter
//                          preemption punishes MCS's direct handoff),
//   * fairness           — Gini over per-thread acquisition counts under
//                          contention (TAS barges; MCS is FIFO-fair).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/common.h"
#include "src/platform/sysinfo.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

void UncontendedLatency(benchmark::State& state, const std::string& lock_name) {
  auto lock = MakeLock(lock_name);
  for (auto _ : state) {
    lock->lock();
    lock->unlock();
  }
}

void ContendedThroughput(benchmark::State& state, const std::string& lock_name, int threads) {
  auto lock = MakeLock(lock_name);
  AdmissionLog log(1 << 20);
  lock->set_recorder(&log);
  BenchConfig config;
  config.threads = threads;
  config.duration = DefaultBenchDuration();
  for (auto _ : state) {
    // Median-of-K with dispersion: the median is the tracked number; the
    // p10/p90 spread says whether a delta against it means anything. The
    // admission log accumulates across ALL repetitions so the fairness
    // figures describe the same set of runs the dispersion does (resetting
    // per rep would pair the median rep's throughput with the last rep's
    // fairness).
    log.Reset();
    DispersionStats dispersion;
    const BenchResult result = RunWithDispersion(
        DefaultBenchRepetitions(),
        [&] {
          return RunFixedTime(config, [&](int) {
            lock->lock();
            lock->unlock();
          });
        },
        &dispersion);
    ReportResult(state, result);
    ReportDispersion(state, dispersion);
    ReportFairness(state, log.Report());
  }
}

void RegisterAll() {
  for (const std::string name : {"tas", "mcs-s", "mcs-stp"}) {
    benchmark::RegisterBenchmark(("Fig2/latency/" + name).c_str(),
                                 [name](benchmark::State& s) { UncontendedLatency(s, name); });
    benchmark::RegisterBenchmark(
        ("Fig2/contended8/" + name).c_str(),
        [name](benchmark::State& s) { ContendedThroughput(s, name, 8); })
        ->Iterations(1)
        ->UseManualTime();
    benchmark::RegisterBenchmark(
        ("Fig2/oversubscribed/" + name).c_str(),
        [name](benchmark::State& s) {
          ContendedThroughput(s, name, 2 * LogicalCpuCount());
        })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
