// Server SLO sweep — the PR 7 tentpole figure: open-loop Zipf load against
// the KV server at fixed fractions of measured capacity, with admission
// control (CR gate + CoDel) on vs off, across lock types and worker-pool
// oversubscription.
//
// The story the numbers must tell (the paper's overload claim recast as an
// SLO): with admission ON, the p99 of *served* requests stays bounded as
// offered load sweeps past capacity — excess arrivals are shed, the lock's
// admission stays restricted. With admission OFF (plain deep FIFO, every
// worker diving at the lock), the same offered load turns into unbounded
// queueing delay: served-p99 inflates by orders of magnitude and/or
// throughput regresses.
//
// Method: capacity per lock is measured once by saturating the server
// (admission on, huge offered rate) and taking the served rate; sweep
// points then offer {0.5, 1.0, 1.5, 2.0}× that. Latency percentiles are
// end-to-end from the request's *scheduled* arrival (coordinated-omission
// safe — generator lag counts against the server, not the clock).
//
// Counters per point: offered/served/shed rates, e2e p50/p90/p99/p99.9 and
// service-only p50/p99 (µs), gen_lag_ms. Keep each point's duration a few
// CoDel intervals long or the controller never engages (see kMinTrial).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/platform/sysinfo.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"

namespace {

using namespace malthus;
using namespace malthus::bench;
using namespace std::chrono_literals;

// CoDel needs several 100 ms intervals above target before it sheds; a
// shorter trial would benchmark the FIFO warmup, not the controller.
constexpr auto kMinTrial = 600ms;

std::chrono::milliseconds TrialDuration() {
  return std::max<std::chrono::milliseconds>(kMinTrial,
                                             3 * DefaultBenchDuration());
}

KvServerOptions ServerConfig(const std::string& lock, bool admission,
                             std::size_t workers,
                             const std::string& structure = "lru",
                             std::size_t shards = 0) {
  KvServerOptions opts;
  opts.lock_name = lock;
  opts.structure = structure;  // default: the paper's LRU-cache workload shape
  opts.backend_shards = shards;
  opts.workers = workers;
  opts.tenants = 2;
  opts.admission_enabled = admission;
  opts.codel_enabled = admission;
  // The no-admission arm models the common naive deployment: a deep FIFO
  // in front of an ungated worker pool. Overload becomes queueing delay.
  opts.queue_capacity = admission ? 4096 : (1u << 16);
  return opts;
}

LoadGenOptions LoadConfig(double rate) {
  LoadGenOptions opts;
  opts.rate_per_sec = rate;
  opts.duration = TrialDuration();
  opts.tenants = 2;
  opts.tenant_weights = {3.0, 1.0};
  opts.keys_per_tenant = 1 << 14;
  opts.zipf_theta = 0.99;
  opts.put_fraction = 0.1;
  return opts;
}

// Measured once per lock (admission on, baseline workers) and cached: all
// arms of one lock's sweep offer multiples of the same capacity so their
// points are comparable. Median of three saturation bursts (single bursts
// on noisy shared hosts scatter by 5x), clamped to half of the generator's
// own achieved rate: the generator shares the CPUs with the workers, and a
// sweep schedule it cannot sustain would measure generator backlog — the
// scheduled-arrival stamps lag reality — instead of server queueing, in
// BOTH admission arms.
double MeasuredCapacity(const std::string& lock) {
  static std::map<std::string, double> cache;
  auto it = cache.find(lock);
  if (it != cache.end()) {
    return it->second;
  }
  std::vector<double> served_rates, gen_rates;
  for (int burst = 0; burst < 3; ++burst) {
    KvServer server(ServerConfig(lock, /*admission=*/true,
                                 std::max(2, EffectiveCpuCount())));
    if (!server.Start()) {
      return 0.0;
    }
    LoadGenOptions load = LoadConfig(500000.0);  // beyond any 1-lock rate
    load.duration = 400ms;
    load.seed = 100 + burst;
    LoadGenerator gen(load);
    const LoadGenStats stats = gen.Run(server);
    server.Stop();
    const double seconds =
        std::chrono::duration<double>(stats.actual_duration).count();
    if (seconds <= 0) {
      continue;
    }
    served_rates.push_back(
        static_cast<double>(server.Aggregate().served) / seconds);
    gen_rates.push_back(static_cast<double>(stats.offered) / seconds);
  }
  if (served_rates.empty()) {
    return 0.0;
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double capacity =
      std::min(median(served_rates), 0.5 * median(gen_rates));
  cache[lock] = capacity;
  return capacity;
}

double Us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void RunSweepPoint(benchmark::State& state, const std::string& lock,
                   bool admission, std::size_t workers, double rate_multiple,
                   const std::string& structure = "lru",
                   std::size_t shards = 0) {
  // Capacity is always the unsharded-lru measurement: the sharded arm's
  // points face the same offered rate as the baseline arm, so served rates
  // are directly comparable (the full shards axis lives in
  // bench_abl_sharding).
  const double capacity = MeasuredCapacity(lock);
  if (capacity <= 0.0) {
    state.SkipWithError("capacity calibration failed");
    return;
  }
  for (auto _ : state) {
    KvServer server(ServerConfig(lock, admission, workers, structure, shards));
    if (!server.Start()) {
      state.SkipWithError("server failed to start");
      return;
    }
    LoadGenerator gen(LoadConfig(capacity * rate_multiple));
    const LoadGenStats stats = gen.Run(server);
    // Let queued work drain (bounded): the no-admission arm's deep FIFO is
    // the point of the experiment — requests shed at Stop() would hide the
    // latency they were accruing.
    const auto drain_deadline = std::chrono::steady_clock::now() + 2s;
    while (server.QueueDepth() > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(1ms);
    }
    server.Stop();
    const TenantStats agg = server.Aggregate();
    const double seconds =
        std::chrono::duration<double>(stats.actual_duration).count();

    state.SetIterationTime(seconds);
    state.counters["capacity_per_sec"] = capacity;
    state.counters["offered_per_sec"] =
        static_cast<double>(agg.offered) / seconds;
    state.counters["served_per_sec"] =
        static_cast<double>(agg.served) / seconds;
    state.counters["shed_frac"] =
        agg.offered ? static_cast<double>(agg.shed_total()) /
                          static_cast<double>(agg.offered)
                    : 0.0;
    state.counters["e2e_p50_us"] = Us(agg.e2e_p50);
    state.counters["e2e_p90_us"] = Us(agg.e2e_p90);
    state.counters["e2e_p99_us"] = Us(agg.e2e_p99);
    state.counters["e2e_p999_us"] = Us(agg.e2e_p999);
    state.counters["svc_p50_us"] = Us(agg.svc_p50);
    state.counters["svc_p99_us"] = Us(agg.svc_p99);
    state.counters["gen_lag_ms"] =
        std::chrono::duration<double, std::milli>(stats.max_lag).count();
  }
}

void RegisterAll() {
  const int cpus = EffectiveCpuCount();
  const std::size_t base_workers = static_cast<std::size_t>(std::max(2, cpus));
  // Oversubscription axis: the paper's excess-thread regime. 8× the
  // effective CPU count guarantees surplus workers even on 1-CPU CI hosts.
  const std::size_t over_workers = base_workers * 8;

  for (const std::string lock : {"mcs-stp", "mcscr-stp"}) {
    for (const bool admission : {true, false}) {
      for (const std::size_t workers : {base_workers, over_workers}) {
        for (const double mult : {0.5, 1.0, 1.5, 2.0}) {
          const std::string name =
              "ServerSweep/" + lock + "/admission:" +
              (admission ? "on" : "off") +
              "/workers:" + std::to_string(workers) + "/rate:" +
              std::to_string(mult).substr(0, 3) + "x";
          benchmark::RegisterBenchmark(
              name.c_str(),
              [lock, admission, workers, mult](benchmark::State& s) {
                RunSweepPoint(s, lock, admission, workers, mult);
              })
              ->Iterations(1)
              ->UseManualTime();
        }
      }
    }
  }

  // Sharded arm: same pipeline, backend swapped for sharded-lru at 4
  // partitions, admission on. Offered rates reuse the unsharded capacity so
  // these points overlay directly on the baseline curves above.
  for (const std::string lock : {"mcs-stp", "mcscr-stp"}) {
    for (const std::size_t workers : {base_workers, over_workers}) {
      for (const double mult : {1.0, 1.5}) {
        const std::string name =
            "ServerSweep/sharded-lru/" + lock + "/shards:4/workers:" +
            std::to_string(workers) + "/rate:" +
            std::to_string(mult).substr(0, 3) + "x";
        benchmark::RegisterBenchmark(
            name.c_str(), [lock, workers, mult](benchmark::State& s) {
              RunSweepPoint(s, lock, /*admission=*/true, workers, mult,
                            "sharded-lru", /*shards=*/4);
            })
            ->Iterations(1)
            ->UseManualTime();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
