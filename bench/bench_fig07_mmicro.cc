// Figure 7 — mmicro: malloc-free scalability against a central-lock
// splay-tree allocator (the default-Solaris-allocator stand-in). Each outer
// iteration allocates and zeroes a batch of 1000-byte blocks and then frees
// them; every malloc/free takes the central lock. The reported rate is
// malloc-free pairs per millisecond, as in the paper.
//
// The paper's batch is 1000 blocks; the default here is 100 (env
// MALTHUS_MMICRO_BATCH overrides) so the full-suite run stays fast — the
// contention structure is identical, only the iteration granularity
// changes.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "src/alloc/splay_heap.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

int BatchSize() {
  const char* env = std::getenv("MALTHUS_MMICRO_BATCH");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return 100;
}

template <typename Lock>
void RunMmicro(benchmark::State& state, int threads) {
  const int batch = BatchSize();
  for (auto _ : state) {
    // Arena sized for the worst case live set plus slack.
    LockedHeap<Lock> heap((static_cast<std::size_t>(threads) * static_cast<std::size_t>(batch) *
                           1200) + (64u << 20));
    std::vector<std::vector<void*>> slots(static_cast<std::size_t>(threads),
                                          std::vector<void*>(static_cast<std::size_t>(batch)));
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      auto& mine = slots[static_cast<std::size_t>(t)];
      for (int i = 0; i < batch; ++i) {
        void* p = heap.Allocate(1000);
        if (p != nullptr) {
          std::memset(p, 0, 1000);
        }
        mine[static_cast<std::size_t>(i)] = p;
      }
      for (int i = 0; i < batch; ++i) {
        heap.Free(mine[static_cast<std::size_t>(i)]);
      }
    });
    ReportResult(state, result);
    // Pairs per millisecond, the paper's Y axis (one iteration = batch pairs).
    state.counters["pairs_per_ms"] =
        result.Throughput() * static_cast<double>(batch) / 1000.0;
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          ("Fig7/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) {
            WithLockType(lock_name, [&]<typename L>() { RunMmicro<L>(s, threads); });
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
