// Figure 14 — Buffer Pool sensitivity sweep over the condition variable's
// append probability P. Pool of 5 x 1MB buffers, LIFO allocation; per
// iteration a thread acquires a buffer, exchanges 500 random slots with a
// private buffer, returns it, and updates 5000 random slots of its private
// buffer (§6.11). P = 1 is FIFO, P = 0 pure LIFO; mostly-prepend values in
// between trade fairness for throughput. Expected shape: throughput rises
// monotonically as P drops, with P = 1/1000 capturing most of pure LIFO's
// win.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/sync/buffer_pool.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::size_t kBufferBytes = 1u << 20;
constexpr std::size_t kPoolBuffers = 5;
constexpr int kCsSlots = 500;
constexpr int kNcsSlots = 5000;

void RunBufferPool(benchmark::State& state, double append_p, int threads) {
  for (auto _ : state) {
    // The paper's mutex here is a classic MCS lock.
    BufferPool<McsStpLock> pool(kPoolBuffers, kBufferBytes,
                                CrCondVarOptions{.append_probability = append_p});
    const std::size_t slots = kBufferBytes / sizeof(std::uint32_t);
    std::vector<std::vector<std::uint32_t>> privates(
        static_cast<std::size_t>(threads), std::vector<std::uint32_t>(slots, 1));

    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      XorShift64& rng = ThreadLocalRng();
      auto& mine = privates[static_cast<std::size_t>(t)];
      PoolBuffer* buffer = pool.Acquire();
      for (int i = 0; i < kCsSlots; ++i) {
        const std::size_t a = rng.NextBelow(slots);
        const std::size_t b = rng.NextBelow(slots);
        std::swap(buffer->data[a], mine[b]);
      }
      pool.Release(buffer);
      for (int i = 0; i < kNcsSlots; ++i) {
        mine[rng.NextBelow(slots)] += 1;
      }
    });
    ReportResult(state, result);
  }
}

void RegisterAll() {
  struct Series {
    const char* name;
    double p;
  };
  // The paper's sweep: append probability 1, 1/10, ..., 1/2000, and 0.
  const Series kSeries[] = {
      {"append-1", 1.0},          {"append-1e1", 1.0 / 10},   {"append-1e50", 1.0 / 50},
      {"append-1e100", 1.0 / 100}, {"append-1e200", 1.0 / 200}, {"append-1e500", 1.0 / 500},
      {"append-1e1000", 1.0 / 1000}, {"append-1e2000", 1.0 / 2000}, {"append-0", 0.0},
  };
  // The pool only saturates when threads * CS/(CS+NCS) approaches the buffer
  // count, so this figure sweeps well past the CPU count (the paper ran to
  // 256 threads on 128 CPUs); waiting threads park, so oversubscription is
  // cheap.
  const auto thread_counts = SweepThreadCounts(2 * MaxSweepThreads());
  for (const Series& series : kSeries) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          (std::string("Fig14/") + series.name + "/threads:" + std::to_string(threads)).c_str(),
          [series, threads](benchmark::State& s) { RunBufferPool(s, series.p, threads); })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
