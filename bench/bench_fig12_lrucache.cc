// Figure 12 — LRUCache: keymap's structure, but the critical section is a
// lookup in a shared SimpleLRU (std::map + recency list, capacity 10000,
// single mutex). On a miss the key itself is installed as the value. Key
// range 1M; per-thread keyset of 1000 with replacement probability 0.01
// (§6.9). Threads compete for occupancy of the *software* cache, the
// perfect-associativity analogue of the hardware LLC.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include "bench/common.h"
#include "src/minidb/simple_lru.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::uint64_t kKeyRange = 1000000;
constexpr std::size_t kCacheCapacity = 10000;

template <typename Lock>
void RunLruCache(benchmark::State& state, int threads) {
  for (auto _ : state) {
    auto cache = std::make_unique<SimpleLru<Lock>>(kCacheCapacity, /*track_displacement=*/true);
    std::vector<std::vector<std::uint64_t>> keysets(static_cast<std::size_t>(threads),
                                                    std::vector<std::uint64_t>(1000));
    std::vector<std::mt19937> ncs_rngs;
    for (int t = 0; t < threads; ++t) {
      XorShift64 init(static_cast<std::uint64_t>(t) + 11);
      for (auto& k : keysets[static_cast<std::size_t>(t)]) {
        k = init.NextBelow(kKeyRange);
      }
      ncs_rngs.emplace_back(static_cast<std::uint32_t>(t) + 13);
    }

    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      XorShift64& rng = ThreadLocalRng();
      auto& keyset = keysets[static_cast<std::size_t>(t)];
      const std::size_t slot = rng.NextBelow(keyset.size());
      if (rng.BernoulliP(0.01)) {
        keyset[slot] = rng.NextBelow(kKeyRange);
      }
      const std::uint64_t key = keyset[slot];
      if (!cache->Lookup(key, static_cast<std::uint32_t>(t)).has_value()) {
        cache->Insert(key, key, static_cast<std::uint32_t>(t));
      }
      auto& mt = ncs_rngs[static_cast<std::size_t>(t)];
      std::uint32_t sink = 0;
      for (int i = 0; i < 1000; ++i) {
        sink += mt();
      }
      benchmark::DoNotOptimize(sink);
    });
    ReportResult(state, result);
    state.counters["sw_cache_miss_rate"] = cache->MissRate();
    const double displacements = static_cast<double>(cache->self_displacements() +
                                                     cache->extrinsic_displacements());
    if (displacements > 0) {
      state.counters["extrinsic_displacement_frac"] =
          static_cast<double>(cache->extrinsic_displacements()) / displacements;
    }
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          ("Fig12/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) {
            WithLockType(lock_name, [&]<typename L>() { RunLruCache<L>(s, threads); });
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
