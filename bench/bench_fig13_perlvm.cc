// Figure 13 — RandArray transliterated to an interpreted language (perl in
// the paper; our bytecode VM here, DESIGN.md §2). The lock construct
// mirrors perl's: an MCS mutex + condition variable + owner field, so
// waiting happens on the condvar and CR is applied through the condvar's
// queue discipline. Two series: FIFO (append_probability 1) vs mostly-LIFO
// (1/1000). Arrays have 50000 elements as in the paper; CS interprets 100
// random-access iterations over the shared array, NCS 400 over the private
// one. Absolute rates are far below native RandArray — interpretation
// overhead — which is itself part of the figure's point.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/vm/program.h"
#include "src/vm/vm_lock.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::size_t kArrayLen = 50000;

void RunPerlVm(benchmark::State& state, double cv_append_p, int threads) {
  for (auto _ : state) {
    vm::VmLock lock(CrCondVarOptions{.append_probability = cv_append_p});
    std::vector<std::int64_t> shared_array(kArrayLen, 1);
    struct ThreadVm {
      std::unique_ptr<vm::Context> ctx;
      vm::Program cs;
      vm::Program ncs;
    };
    std::vector<ThreadVm> vms;
    for (int t = 0; t < threads; ++t) {
      ThreadVm tv;
      tv.ctx = std::make_unique<vm::Context>(static_cast<std::uint64_t>(t) + 21);
      const int shared_id = tv.ctx->AddSharedArray(&shared_array);
      const int private_id = tv.ctx->AddArray(kArrayLen);
      tv.cs = vm::BuildRandArrayLoop(shared_id, 100);
      tv.ncs = vm::BuildRandArrayLoop(private_id, 400);
      vms.push_back(std::move(tv));
    }

    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      ThreadVm& tv = vms[static_cast<std::size_t>(t)];
      lock.lock();
      vm::Interp::Run(tv.cs, *tv.ctx);
      lock.unlock();
      vm::Interp::Run(tv.ncs, *tv.ctx);
    });
    ReportResult(state, result);
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  struct Series {
    const char* name;
    double p;
  };
  for (const Series series : {Series{"fifo", 1.0}, Series{"mostly-lifo", 1.0 / 1000}}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          (std::string("Fig13/") + series.name + "/threads:" + std::to_string(threads)).c_str(),
          [series, threads](benchmark::State& s) { RunPerlVm(s, series.p, threads); })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
