// Timed-acquire overhead on the uncontended fast path.
//
// The cancellation protocol (locks/lock_base.h) was designed to cost
// nothing until a waiter actually waits: TryLockUntil's enqueue is the same
// tail exchange as lock(), and the deadline/clock is consulted only after
// finding a predecessor. The delta between `lock` and `timed` series is
// therefore expected to be ~one steady_clock read (the TryLockFor
// deadline computation) or less — this bench is the regression tripwire
// for anyone adding clock reads or branches to the common path.
//
// Reported per lock family: ns/op for plain lock()/unlock() vs
// TryLockFor(1s)/unlock() on an uncontended lock, single thread.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench/common.h"
#include "src/core/loiter.h"
#include "src/core/throttle.h"

namespace {

using namespace malthus;

template <typename L>
void PlainPoint(benchmark::State& state) {
  L lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}

template <typename L>
void TimedPoint(benchmark::State& state) {
  L lock;
  const auto timeout = std::chrono::seconds(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.TryLockFor(timeout));
    lock.unlock();
  }
}

template <typename L>
void RegisterPair(const char* family) {
  benchmark::RegisterBenchmark(
      (std::string("TimeoutOverhead/") + family + "/lock").c_str(),
      [](benchmark::State& s) { PlainPoint<L>(s); });
  benchmark::RegisterBenchmark(
      (std::string("TimeoutOverhead/") + family + "/timed").c_str(),
      [](benchmark::State& s) { TimedPoint<L>(s); });
}

void RegisterAll() {
  RegisterPair<TtasLock>("tas");
  RegisterPair<McsSpinLock>("mcs-s");
  RegisterPair<McsStpLock>("mcs-stp");
  RegisterPair<McscrStpLock>("mcscr-stp");
  RegisterPair<LifoCrStpLock>("lifocr-stp");
  RegisterPair<McscrnStpLock>("mcscrn-stp");
  RegisterPair<LoiterLock>("loiter");
  RegisterPair<PthreadStyleMutex>("pthread-style");
  RegisterPair<ThrottledLock<TtasLock>>("throttled-tas");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
