// Ablation — culling aggressiveness (§4: "we can unlink and excise one of
// those nodes"). cull_limit 0 disables CR (MCSCR degenerates to MCS),
// 1 is the paper's one-per-unlock policy, UINT32_MAX drains all surplus in
// a single unlock. Reported: throughput, average LWSS, culls and
// re-provisions. Expected: limit>=1 collapses the LWSS; draining converges
// marginally faster but does the same steady-state work.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/common.h"
#include "bench/randarray.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

void CullingPoint(benchmark::State& state, std::uint32_t cull_limit) {
  const int threads = std::min(16, MaxSweepThreads());
  for (auto _ : state) {
    McscrOptions opts;
    opts.cull_limit = cull_limit;
    McscrStpLock lock(opts);
    AdmissionLog log(1 << 21);
    lock.set_recorder(&log);
    std::vector<std::uint32_t> shared(256 * 1024, 1);
    std::vector<std::vector<std::uint32_t>> privates(
        static_cast<std::size_t>(threads), std::vector<std::uint32_t>(256 * 1024, 1));
    std::atomic<std::uint64_t> sink{0};
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      XorShift64& rng = ThreadLocalRng();
      std::uint64_t sum = 0;
      lock.lock();
      for (int i = 0; i < 100; ++i) {
        sum += shared[rng.NextBelow(shared.size())];
      }
      lock.unlock();
      auto& mine = privates[static_cast<std::size_t>(t)];
      for (int i = 0; i < 400; ++i) {
        sum += mine[rng.NextBelow(mine.size())];
      }
      sink.fetch_add(sum, std::memory_order_relaxed);
    });
    ReportResult(state, result);
    ReportFairness(state, log.Report());
    state.counters["culls"] = static_cast<double>(lock.culls());
    state.counters["reprovisions"] = static_cast<double>(lock.reprovisions());
  }
}

void RegisterAll() {
  benchmark::RegisterBenchmark("AblCulling/off",
                               [](benchmark::State& s) { CullingPoint(s, 0); })
      ->Iterations(1)
      ->UseManualTime();
  benchmark::RegisterBenchmark("AblCulling/one-per-unlock",
                               [](benchmark::State& s) { CullingPoint(s, 1); })
      ->Iterations(1)
      ->UseManualTime();
  benchmark::RegisterBenchmark("AblCulling/drain",
                               [](benchmark::State& s) { CullingPoint(s, UINT32_MAX); })
      ->Iterations(1)
      ->UseManualTime();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
