// §6.11 thread pools: idle workers block on a central condition variable.
// FIFO wakeup round-robins work over every worker; mostly-LIFO keeps just
// the workers needed for the offered load active (CR on worker activation).
// Reported: task throughput and the activation-concentration Gini over
// per-worker task counts (higher = smaller active set).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>

#include "bench/common.h"
#include "src/metrics/fairness.h"
#include "src/sync/thread_pool.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

void RunPool(benchmark::State& state, double append_p, int workers) {
  for (auto _ : state) {
    ThreadPool pool(static_cast<std::size_t>(workers),
                    CrCondVarOptions{.append_probability = append_p});
    const auto deadline = std::chrono::steady_clock::now() + DefaultBenchDuration();
    std::uint64_t submitted = 0;
    // A slow trickle relative to capacity: most workers are surplus.
    while (std::chrono::steady_clock::now() < deadline) {
      pool.Submit([] {
        volatile int sink = 0;
        for (int i = 0; i < 200; ++i) {
          sink = sink + i;
        }
      });
      ++submitted;
      pool.Drain();
    }
    const auto counts = pool.TaskCountsPerWorker();
    std::vector<double> values(counts.begin(), counts.end());
    state.counters["tasks"] = static_cast<double>(submitted);
    state.counters["activation_gini"] = GiniCoefficient(values);
  }
}

void RegisterAll() {
  for (const int workers : {4, 8, 16}) {
    benchmark::RegisterBenchmark(
        ("ThreadPool/fifo/workers:" + std::to_string(workers)).c_str(),
        [workers](benchmark::State& s) { RunPool(s, 1.0, workers); })
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("ThreadPool/mostly-lifo/workers:" + std::to_string(workers)).c_str(),
        [workers](benchmark::State& s) { RunPool(s, 1.0 / 1000, workers); })
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
