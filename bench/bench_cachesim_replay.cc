// §6.1 validation instrument — the "special version of RandArray" with the
// functional cache emulation: replays FIFO vs CR admission schedules and
// reports the CS miss decomposition (cold / self / extrinsic). The paper's
// claim: MCS's collapse is driven by *extrinsic* misses (other threads'
// NCS data evicting CS lines), and CR removes them once the ACS footprint
// fits the cache. Deterministic and host-independent.
#include <benchmark/benchmark.h>

#include <string>

#include "src/cachesim/replay.h"
#include "src/platform/sysinfo.h"

namespace {

using namespace malthus;

void ReplayPoint(benchmark::State& state, std::uint32_t acs_size) {
  ReplayConfig config;
  config.threads = 16;
  config.total_admissions = 6000;
  CacheConfig llc;
  llc.size_bytes = 8u << 20;
  llc.ways = 16;
  for (auto _ : state) {
    const AdmissionSchedule schedule =
        acs_size == 0 ? MakeFifoSchedule(config.threads, config.total_admissions)
                      : MakeCrSchedule(config.threads, acs_size, config.total_admissions, 1000);
    const ReplayResult result = ReplaySchedule(config, llc, schedule);
    state.counters["cs_miss_rate"] = result.cs_miss_rate;
    state.counters["cs_extrinsic_rate"] = result.cs_extrinsic_rate;
    state.counters["cs_self"] = static_cast<double>(result.cs_stats.self_misses);
    state.counters["cs_extrinsic"] = static_cast<double>(result.cs_stats.extrinsic_misses);
    state.counters["cs_cold"] = static_cast<double>(result.cs_stats.cold_misses);
  }
}

void RegisterAll() {
  benchmark::RegisterBenchmark("CacheReplay/fifo-16-threads",
                               [](benchmark::State& s) { ReplayPoint(s, 0); })
      ->Iterations(1);
  for (const std::uint32_t acs : {2u, 4u, 5u, 6u, 8u, 12u}) {
    benchmark::RegisterBenchmark(("CacheReplay/cr-acs-" + std::to_string(acs)).c_str(),
                                 [acs](benchmark::State& s) { ReplayPoint(s, acs); })
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
