// Figure 9 — Kyoto Cabinet kccachetest "wicked" over kchash (DESIGN.md §2):
// a mixed set/get/remove workload against an in-memory hash cache DB behind
// one central mutex, fixed key range (paper: 10M; default here 1M, env
// MALTHUS_KC_KEYRANGE overrides), fixed-time methodology.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench/common.h"
#include "src/kchash/kchash.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

std::uint64_t KeyRange() {
  const char* env = std::getenv("MALTHUS_KC_KEYRANGE");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<std::uint64_t>(v);
    }
  }
  return 1000000;
}

template <typename Lock>
void RunKcCache(benchmark::State& state, int threads) {
  const std::uint64_t key_range = KeyRange();
  for (auto _ : state) {
    auto db = std::make_unique<LockedKcHash<Lock>>(1 << 16, /*capacity=*/100000);
    // Warm the DB to its capacity point.
    XorShift64 warm(9);
    for (int i = 0; i < 100000; ++i) {
      db->Set(warm.NextBelow(key_range), "warm");
    }
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int) {
      db->WickedStep(ThreadLocalRng(), key_range);
    });
    ReportResult(state, result);
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          ("Fig9/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) {
            WithLockType(lock_name, [&]<typename L>() { RunKcCache<L>(s, threads); });
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
