#include "bench/randarray.h"

namespace malthus::bench {

RandArrayOutcome RunRandArray(const std::string& lock_name, int threads,
                              std::chrono::milliseconds duration,
                              const RandArrayParams& params) {
  auto lock = MakeLock(lock_name);
  AdmissionLog log(1 << 21);
  lock->set_recorder(&log);

  std::vector<std::uint32_t> shared(params.words, 1);
  std::vector<std::vector<std::uint32_t>> privates(
      static_cast<std::size_t>(threads), std::vector<std::uint32_t>(params.words, 1));

  std::atomic<std::uint64_t> sink{0};
  BenchConfig config;
  config.threads = threads;
  config.duration = duration;
  const std::uint64_t parks_before = TotalKernelParks();
  BenchResult result = RunFixedTime(config, [&](int t) {
    XorShift64& rng = ThreadLocalRng();
    std::uint64_t sum = 0;
    lock->lock();
    for (int i = 0; i < params.cs_accesses; ++i) {
      sum += shared[rng.NextBelow(params.words)];
    }
    lock->unlock();
    auto& mine = privates[static_cast<std::size_t>(t)];
    for (int i = 0; i < params.ncs_accesses; ++i) {
      sum += mine[rng.NextBelow(params.words)];
    }
    sink.fetch_add(sum, std::memory_order_relaxed);
  });

  RandArrayOutcome outcome;
  outcome.result = std::move(result);
  outcome.fairness = log.Report(1000);
  outcome.kernel_parks = TotalKernelParks() - parks_before;
  outcome.admission_history = log.History();
  return outcome;
}

}  // namespace malthus::bench
