// §9.1 MCSCRN — NUMA-aware CR over a simulated 2-node topology: threads are
// assigned nodes round-robin; the bench compares MCS, MCSCR and MCSCRN on
// RandArray-style work and reports throughput plus the lock-migration rate
// (grants whose new owner is on a different node). MCSCRN should show the
// lowest migration rate; throughput at least MCSCR's.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/core/topology.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::size_t kWords = 64 * 1024;

template <typename Lock>
double RunWorkload(Lock& lock, int threads, std::chrono::milliseconds duration) {
  std::vector<std::uint32_t> shared(kWords, 1);
  std::vector<std::vector<std::uint32_t>> privates(
      static_cast<std::size_t>(threads), std::vector<std::uint32_t>(kWords, 1));
  std::atomic<std::uint64_t> sink{0};
  BenchConfig config;
  config.threads = threads;
  config.duration = duration;
  const BenchResult result = RunFixedTime(config, [&](int t) {
    Self().forced_node = static_cast<std::uint32_t>(t % 2);
    XorShift64& rng = ThreadLocalRng();
    std::uint64_t sum = 0;
    lock.lock();
    for (int i = 0; i < 50; ++i) {
      sum += shared[rng.NextBelow(kWords)];
    }
    lock.unlock();
    auto& mine = privates[static_cast<std::size_t>(t)];
    for (int i = 0; i < 200; ++i) {
      sum += mine[rng.NextBelow(kWords)];
    }
    sink.fetch_add(sum, std::memory_order_relaxed);
  });
  return result.Throughput();
}

void McscrnPoint(benchmark::State& state, int threads) {
  Topology::Instance().ConfigureSimulated(2);
  for (auto _ : state) {
    McscrnStpLock lock;
    state.counters["ops_per_sec"] = RunWorkload(lock, threads, DefaultBenchDuration());
    if (lock.grants() > 0) {
      state.counters["migration_rate"] =
          static_cast<double>(lock.lock_migrations()) / static_cast<double>(lock.grants());
    }
    state.counters["home_rotations"] = static_cast<double>(lock.home_rotations());
    state.counters["remote_culls"] = static_cast<double>(lock.remote_culls());
  }
}

void McscrPoint(benchmark::State& state, int threads) {
  for (auto _ : state) {
    McscrStpLock lock;
    state.counters["ops_per_sec"] = RunWorkload(lock, threads, DefaultBenchDuration());
  }
}

void McsPoint(benchmark::State& state, int threads) {
  for (auto _ : state) {
    McsStpLock lock;
    state.counters["ops_per_sec"] = RunWorkload(lock, threads, DefaultBenchDuration());
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const int threads : thread_counts) {
    benchmark::RegisterBenchmark(("Numa/mcs-stp/threads:" + std::to_string(threads)).c_str(),
                                 [threads](benchmark::State& s) { McsPoint(s, threads); })
        ->Iterations(1);
    benchmark::RegisterBenchmark(("Numa/mcscr-stp/threads:" + std::to_string(threads)).c_str(),
                                 [threads](benchmark::State& s) { McscrPoint(s, threads); })
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Numa/mcscrn-stp/threads:" + std::to_string(threads)).c_str(),
        [threads](benchmark::State& s) { McscrnPoint(s, threads); })
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
