// Figure 10 — the COZ producer_consumer benchmark: a bounded blocking queue
// (mutex + two condvars + std::deque, capacity 10000), 3 consumer threads,
// a variable number of producers on the X axis. Reports messages conveyed
// per second, plus the lock-acquisitions-per-message diagnostic that
// explains the CR win (§6.7 "fast flow": ~2 acquisitions/message under CR
// versus ~3 under FIFO, where producers futilely acquire, find the queue
// full, and requeue through the condvar).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.h"
#include "src/sync/blocking_queue.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::size_t kQueueCap = 10000;
constexpr int kConsumers = 3;

template <typename Lock>
void RunProducerConsumer(benchmark::State& state, int producers, double cv_append_p) {
  for (auto _ : state) {
    auto queue = std::make_unique<BoundedBlockingQueue<int, Lock>>(
        kQueueCap, CrCondVarOptions{.append_probability = cv_append_p});
    std::atomic<std::uint64_t> conveyed{0};
    std::atomic<bool> stop{false};

    // Consumers run outside the harness so the fixed-time body is purely
    // the producer side (matching the paper's producer-count X axis).
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          int v;
          if (queue->TryPop(&v)) {
            conveyed.fetch_add(1, std::memory_order_relaxed);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }

    BenchConfig config;
    config.threads = producers;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      queue->Push(t);
    });
    stop.store(true);
    // Drain so consumers can exit even if blocked conditions linger.
    int v;
    while (queue->TryPop(&v)) {
    }
    for (auto& c : consumers) {
      c.join();
    }

    ReportResult(state, result);
    const double messages = static_cast<double>(conveyed.load());
    state.counters["messages_per_sec"] = messages / result.wall_seconds;
    if (messages > 0) {
      state.counters["lock_acq_per_msg"] =
          static_cast<double>(queue->lock_acquisitions()) / messages;
      state.counters["futile_waits_per_msg"] =
          static_cast<double>(queue->futile_waits()) / messages;
    }
  }
}

void RegisterAll() {
  const auto producer_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int producers : producer_counts) {
      benchmark::RegisterBenchmark(
          ("Fig10/" + lock_name + "/producers:" + std::to_string(producers)).c_str(),
          [lock_name, producers](benchmark::State& s) {
            WithLockType(lock_name, [&]<typename L>() {
              RunProducerConsumer<L>(s, producers, /*cv_append_p=*/1.0);
            });
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
  // CR applied through the condition variable as well (mostly-LIFO).
  for (const int producers : producer_counts) {
    benchmark::RegisterBenchmark(
        ("Fig10/mcscr-stp+lifo-cv/producers:" + std::to_string(producers)).c_str(),
        [producers](benchmark::State& s) {
          RunProducerConsumer<McscrStpLock>(s, producers, /*cv_append_p=*/1.0 / 1000);
        })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
