// Slab-layer churn costs: what the generation-stamped allocator charges
// for the memory hygiene it buys.
//
// Three series:
//   * SlabCheckoutReturn — raw slot round trip against a warm local
//     allocator (the per-CPU magazine fast path: two TinyLock sections and
//     two generation bumps);
//   * ThreadAttachDetach — full thread lifecycle through the registry:
//     spawn, ThreadCtx checkout + id allocation, one lock/unlock (QNode
//     arena refill), exit with slot return. This is the path a server's
//     worker churn pays per thread — it used to leak instead of pay;
//   * ParkerRefValidate — the generation check a granter pays on every
//     post-grant wake (one acquire load + compare against the hot path's
//     previous raw pointer deref).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "bench/common.h"
#include "src/alloc/slab.h"
#include "src/platform/thread_registry.h"

namespace {

using namespace malthus;

struct BenchSlot {
  std::atomic<std::uint64_t> slot_gen{0};
  std::uint64_t payload = 0;
};

void SlabCheckoutReturn(benchmark::State& state) {
  SlabAllocator<BenchSlot> alloc;
  // Warm one magazine so the loop measures the steady-state fast path.
  auto h = alloc.Checkout();
  alloc.Return(h.obj);
  for (auto _ : state) {
    auto handle = alloc.Checkout();
    benchmark::DoNotOptimize(handle.obj);
    alloc.Return(handle.obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(SlabCheckoutReturn);

void ThreadAttachDetach(benchmark::State& state) {
  McsStpLock lock;
  for (auto _ : state) {
    std::thread t([&] {
      benchmark::DoNotOptimize(Self().id);
      lock.lock();
      lock.unlock();
    });
    t.join();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["slab_bytes"] =
      static_cast<double>(TotalSlabBytesReserved());
}
BENCHMARK(ThreadAttachDetach)->Unit(benchmark::kMicrosecond);

void ParkerRefValidate(benchmark::State& state) {
  ThreadCtx& self = Self();
  const ParkerRef ref = SelfWakeRef(self);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Current());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(ParkerRefValidate);

}  // namespace

BENCHMARK_MAIN();
