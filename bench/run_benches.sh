#!/usr/bin/env bash
# Runs the perf-tracked benchmark subset and merges the results into one
# JSON snapshot so the per-PR perf trajectory accumulates in-repo
# (BENCH_PR<N>.json at the repo root, or wherever $2 points).
#
# Usage: bench/run_benches.sh [build_dir] [out.json]
#   build_dir  default: build
#   out.json   default: bench_snapshot.json
#
# Knobs:
#   MALTHUS_BENCH_MS    measurement interval per point (default 100)
#   MALTHUS_BENCH_REPS  repetitions per point; the snapshot records the
#                       median plus p10/p50/p90 dispersion (default 5 here —
#                       single-rep medians on small hosts scatter more than
#                       the effects being tracked)
#   MALTHUS_BENCH_PIN   pin worker threads round-robin over allowed CPUs
#                       (default 1; set 0 to let the scheduler migrate)
set -euo pipefail

build_dir="${1:-build}"
out="${2:-bench_snapshot.json}"

export MALTHUS_BENCH_REPS="${MALTHUS_BENCH_REPS:-5}"
export MALTHUS_BENCH_PIN="${MALTHUS_BENCH_PIN:-1}"

benches=(
  bench_handover_latency
  bench_fig02_tas_vs_mcs
  bench_abl_spin_budget
  bench_timeout_overhead
  bench_server_sweep
  bench_abl_sharding
)

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for b in "${benches[@]}"; do
  bin="$build_dir/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build_dir --target $b)" >&2
    exit 1
  fi
  echo "== $b" >&2
  "$bin" --benchmark_format=json >"$tmpdir/$b.json"
done

python3 - "$out" "$tmpdir" "${benches[@]}" <<'EOF'
import json, os, platform, re, subprocess, sys

out, tmpdir, names = sys.argv[1], sys.argv[2], sys.argv[3:]

def git(*args):
    try:
        return subprocess.check_output(("git", *args), text=True).strip()
    except Exception:
        return None

def read(path):
    try:
        with open(path) as f:
            return f.read().strip()
    except Exception:
        return None

def effective_cpus(allowed):
    # Affinity mask ∩ cgroup CPU quota — what EffectiveCpuCount() in
    # src/platform/sysinfo.h computes. cpus_allowed alone overstates the
    # budget inside quota-limited containers (e.g. cpu.max "50000 100000"
    # on an 8-wide mask is half a CPU, not 8).
    quota_cpus = None
    v2 = read("/sys/fs/cgroup/cpu.max")
    if v2:
        parts = v2.split()
        if len(parts) == 2 and parts[0] != "max":
            try:
                quota_cpus = max(1, -(-int(parts[0]) // int(parts[1])))
            except ValueError:
                pass
    else:
        q = read("/sys/fs/cgroup/cpu/cpu.cfs_quota_us")
        p = read("/sys/fs/cgroup/cpu/cpu.cfs_period_us")
        if q and p:
            try:
                if int(q) > 0:
                    quota_cpus = max(1, -(-int(q) // int(p)))
            except ValueError:
                pass
    if allowed is None:
        return quota_cpus
    return min(allowed, quota_cpus) if quota_cpus else allowed

def machine_profile():
    # Numbers within a snapshot are only comparable to numbers from the
    # same machine shape; record enough topology to tell snapshots apart.
    allowed = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None
    prof = {
        "kernel": platform.release(),
        "arch": platform.machine(),
        "cpus_online": os.cpu_count(),
        "cpus_allowed": allowed,
        "cpus_effective": effective_cpus(allowed),
    }
    cpuinfo = read("/proc/cpuinfo") or ""
    m = re.search(r"^model name\s*:\s*(.+)$", cpuinfo, re.M)
    if m:
        prof["cpu_model"] = m.group(1)
    try:
        nodes = [d for d in os.listdir("/sys/devices/system/node") if re.fullmatch(r"node\d+", d)]
        prof["numa_nodes"] = len(nodes) or 1
    except Exception:
        prof["numa_nodes"] = None
    meminfo = read("/proc/meminfo") or ""
    m = re.search(r"^MemTotal:\s*(\d+) kB$", meminfo, re.M)
    if m:
        prof["mem_total_mb"] = int(m.group(1)) // 1024
    for cache in ("index2", "index3"):
        size = read(f"/sys/devices/system/cpu/cpu0/cache/{cache}/size")
        level = read(f"/sys/devices/system/cpu/cpu0/cache/{cache}/level")
        if size and level:
            prof[f"l{level}_cache"] = size
    gov = read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")
    if gov:
        prof["cpufreq_governor"] = gov
    # Shard counts the PR 8 sharding ablation sweeps (bench_abl_sharding);
    # recorded here so a snapshot is self-describing about its axes.
    prof["ablation_shard_counts"] = [1, 4, 16]
    return prof

snapshot = {
    "commit": git("rev-parse", "HEAD"),
    "machine": machine_profile(),
    "benchmarks": {},
}
for name in names:
    with open(f"{tmpdir}/{name}.json") as f:
        data = json.load(f)
    snapshot["context"] = data.get("context", {})
    snapshot["benchmarks"][name] = [
        {k: v for k, v in b.items() if not k.startswith("cpu_")}
        for b in data.get("benchmarks", [])
    ]

with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
print(f"wrote {out}")
EOF
