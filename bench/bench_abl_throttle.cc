// Ablation — CR imposed outside the lock (§A.1's throttling transformation)
// versus CR built into the lock (MCSCR). ThrottledLock<MCS> with a static
// K gates circulation through a mostly-LIFO K-exclusion semaphore; MCSCR
// sizes its ACS emergently. Sweeping K shows the cost of getting the static
// guess wrong in either direction, which is the argument for MCSCR's
// parameter parsimony.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/core/throttle.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::size_t kWords = 256 * 1024;

template <typename Lock>
double RunWorkload(Lock& lock, int threads) {
  std::vector<std::uint32_t> shared(kWords, 1);
  std::vector<std::vector<std::uint32_t>> privates(
      static_cast<std::size_t>(threads), std::vector<std::uint32_t>(kWords, 1));
  std::atomic<std::uint64_t> sink{0};
  BenchConfig config;
  config.threads = threads;
  config.duration = DefaultBenchDuration();
  const BenchResult result = RunFixedTime(config, [&](int t) {
    XorShift64& rng = ThreadLocalRng();
    std::uint64_t sum = 0;
    lock.lock();
    for (int i = 0; i < 100; ++i) {
      sum += shared[rng.NextBelow(kWords)];
    }
    lock.unlock();
    auto& mine = privates[static_cast<std::size_t>(t)];
    for (int i = 0; i < 400; ++i) {
      sum += mine[rng.NextBelow(kWords)];
    }
    sink.fetch_add(sum, std::memory_order_relaxed);
  });
  return result.Throughput();
}

void ThrottlePoint(benchmark::State& state, std::uint32_t k, int threads) {
  for (auto _ : state) {
    ThrottleOptions opts;
    opts.max_circulating = k;
    ThrottledLock<McsStpLock> lock(opts);
    state.counters["ops_per_sec"] = RunWorkload(lock, threads);
    state.counters["throttled"] = static_cast<double>(lock.throttled());
  }
}

void McscrPoint(benchmark::State& state, int threads) {
  for (auto _ : state) {
    McscrStpLock lock;
    state.counters["ops_per_sec"] = RunWorkload(lock, threads);
  }
}

void RegisterAll() {
  const int threads = 16;
  benchmark::RegisterBenchmark("AblThrottle/mcscr-emergent",
                               [threads](benchmark::State& s) { McscrPoint(s, threads); })
      ->Iterations(1);
  for (const std::uint32_t k : {2u, 4u, 6u, 8u, 12u}) {
    benchmark::RegisterBenchmark(("AblThrottle/static-k:" + std::to_string(k)).c_str(),
                                 [k, threads](benchmark::State& s) {
                                   ThrottlePoint(s, k, threads);
                                 })
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
