// The RandArray workload (paper §6.1), shared by the Figure-3 and Figure-4
// benches and the ablations.
//
// Per iteration: acquire the central lock; perform `cs_accesses` uniformly
// random 32-bit loads from a shared array; release; perform `ncs_accesses`
// random loads from a thread-private array. Loads only (no stores) to avoid
// confounding coherence traffic. Arrays are sized so the aggregate
// footprint crosses the host LLC capacity partway through the thread sweep,
// exactly as the paper's 1 MB-vs-8 MB layout does on the T5.
#ifndef MALTHUS_BENCH_RANDARRAY_H_
#define MALTHUS_BENCH_RANDARRAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/fixed_time.h"
#include "src/locks/any_lock.h"
#include "src/metrics/admission_log.h"
#include "src/platform/park.h"
#include "src/platform/sysinfo.h"
#include "src/rng/xorshift.h"

namespace malthus::bench {

struct RandArrayParams {
  // Words per array; the paper uses 256K 32-bit ints (1 MB).
  std::size_t words = 256 * 1024;
  int cs_accesses = 100;
  int ncs_accesses = 400;
};

struct RandArrayOutcome {
  BenchResult result;
  FairnessReport fairness;
  std::uint64_t kernel_parks = 0;  // Voluntary context switches (lock-induced).
  std::vector<std::uint32_t> admission_history;
};

// Runs RandArray under the named lock. Thread-private arrays are allocated
// fresh per call so residual cache state from previous points is cold.
RandArrayOutcome RunRandArray(const std::string& lock_name, int threads,
                              std::chrono::milliseconds duration,
                              const RandArrayParams& params = RandArrayParams{});

}  // namespace malthus::bench

#endif  // MALTHUS_BENCH_RANDARRAY_H_
