// Figure 8 — leveldb db_bench readwhilewriting, reproduced over minidb
// (DESIGN.md §2): one writer continuously Put()s random keys while N-1
// readers Get() random keys. The central DB mutex carries the writer plus
// the reader miss/refill stream (cache hits bypass it, as in leveldb where
// table blocks are immutable); the block-cache mutex carries every reader.
// Both locks are contended — the two locks the paper identifies as the
// CR-amenable path. Reported rate is total operations/second.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.h"
#include "src/minidb/minidb.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::uint64_t kKeyRange = 200000;

template <typename Lock>
void RunReadWhileWriting(benchmark::State& state, int threads) {
  for (auto _ : state) {
    auto db = std::make_unique<MiniDb<Lock>>(/*cache_blocks=*/4096);
    for (std::uint64_t k = 0; k < kKeyRange; k += 4) {
      db->Put(k, "seed-value");
    }
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      XorShift64& rng = ThreadLocalRng();
      const std::uint64_t key = rng.NextBelow(kKeyRange);
      if (t == 0) {
        db->Put(key, "fresh-value");  // The single writer.
      } else {
        // Readers pass their worker id so block-cache displacement stats
        // (footnote 33) attribute evictions to the right thread.
        benchmark::DoNotOptimize(db->Get(key, static_cast<std::uint32_t>(t)));
      }
    });
    ReportResult(state, result);
    state.counters["cache_miss_rate"] = db->CacheMissRate();
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int threads : thread_counts) {
      if (threads < 2) {
        continue;  // readwhilewriting needs at least one reader.
      }
      benchmark::RegisterBenchmark(
          ("Fig8/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) {
            WithLockType(lock_name, [&]<typename L>() { RunReadWhileWriting<L>(s, threads); });
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
