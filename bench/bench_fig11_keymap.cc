// Figure 11 — keymap: threads update a central std::unordered_map under
// the lock. Each thread owns a 1000-entry keyset; with probability 0.9 the
// CS updates the map with an existing keyset key, else it generates a new
// random key, replaces a keyset slot, and updates the map. The NCS advances
// a std::mt19937 1000 times. The map is pre-populated over the whole key
// range so the measurement interval performs no allocation (§6.8).
//
// Paper key range: 10M; default here 1M (env MALTHUS_KEYMAP_RANGE) to keep
// the default suite light — the map still dwarfs the LLC either way.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

#include "bench/common.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

std::uint64_t KeyRange() {
  const char* env = std::getenv("MALTHUS_KEYMAP_RANGE");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<std::uint64_t>(v);
    }
  }
  return 1000000;
}

void Fig11Point(benchmark::State& state, const std::string& lock_name, int threads) {
  const std::uint64_t key_range = KeyRange();
  for (auto _ : state) {
    auto lock = MakeLock(lock_name);
    auto map = std::make_unique<std::unordered_map<int, int>>();
    map->reserve(key_range);
    for (std::uint64_t k = 0; k < key_range; ++k) {
      (*map)[static_cast<int>(k)] = 0;
    }
    std::vector<std::vector<int>> keysets(static_cast<std::size_t>(threads),
                                          std::vector<int>(1000));
    std::vector<std::mt19937> ncs_rngs;
    for (int t = 0; t < threads; ++t) {
      XorShift64 init(static_cast<std::uint64_t>(t) + 5);
      for (auto& k : keysets[static_cast<std::size_t>(t)]) {
        k = static_cast<int>(init.NextBelow(key_range));
      }
      ncs_rngs.emplace_back(static_cast<std::uint32_t>(t) + 7);
    }

    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      XorShift64& rng = ThreadLocalRng();
      auto& keyset = keysets[static_cast<std::size_t>(t)];
      const std::size_t slot = rng.NextBelow(keyset.size());
      int key;
      if (rng.BernoulliP(0.9)) {
        key = keyset[slot];
      } else {
        key = static_cast<int>(rng.NextBelow(key_range));
        keyset[slot] = key;
      }
      lock->lock();
      (*map)[key] = static_cast<int>(slot);
      lock->unlock();
      auto& mt = ncs_rngs[static_cast<std::size_t>(t)];
      std::uint32_t sink = 0;
      for (int i = 0; i < 1000; ++i) {
        sink += mt();
      }
      benchmark::DoNotOptimize(sink);
    });
    ReportResult(state, result);
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          ("Fig11/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) { Fig11Point(s, lock_name, threads); })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
