// Figure 3 — "Random Access Array": aggregate throughput vs thread count
// for MCS-S, MCS-STP, MCSCR-S, MCSCR-STP and the degenerate null lock.
//
// Expected shape (paper): all locks track each other to ~5 threads; the MCS
// forms collapse once the aggregate footprint crosses the LLC; MCSCR-S
// fades at the core count (spinning PS competes for pipelines); MCS-S and
// MCSCR-S cliff at the logical CPU count; MCSCR-STP holds its plateau
// everywhere and dominates at high thread counts.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "bench/randarray.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

void Fig3Point(benchmark::State& state, const std::string& lock_name, int threads) {
  for (auto _ : state) {
    const RandArrayOutcome outcome =
        RunRandArray(lock_name, threads, DefaultBenchDuration());
    ReportResult(state, outcome.result);
    ReportFairness(state, outcome.fairness);
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  const std::vector<std::string> locks = {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp", "null"};
  for (const auto& lock_name : locks) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          ("Fig3/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) { Fig3Point(s, lock_name, threads); })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
