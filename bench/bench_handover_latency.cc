// §5.2 lock handover latency: the time from thread A's unlock() entry to
// waiting thread B's return from lock(). The paper's design discussion
// turns on this number: handoff to a *spinning* successor costs ~100 ns;
// handoff to a *parked* successor costs a kernel wake (the paper quotes
// 30000+ cycles best case), and those cycles accrue while the lock is
// logically held — which is why FIFO+parking collapses and why CR keeps
// the heir spinning.
//
// Method: two threads ping-pong over the lock; the releasing side
// timestamps immediately before unlock() and the acquiring side immediately
// after lock() returns; the median gap over many handovers is reported.
// `parked` variants force the waiter to park (spin budget 0) to expose the
// kernel-wake cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/common.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

using Clock = std::chrono::steady_clock;

template <typename Lock>
double MedianHandoverNs(Lock& lock, int rounds) {
  std::atomic<std::int64_t> release_stamp{0};
  std::vector<double> gaps;
  gaps.reserve(static_cast<std::size_t>(rounds));
  std::atomic<bool> done{false};

  std::thread partner([&] {
    while (!done.load(std::memory_order_acquire)) {
      lock.lock();
      const std::int64_t sent = release_stamp.load(std::memory_order_acquire);
      benchmark::DoNotOptimize(sent);
      // Hold briefly so the main thread queues up behind us.
      for (int i = 0; i < 2000; ++i) {
        CpuRelax();
      }
      release_stamp.store(Clock::now().time_since_epoch().count(), std::memory_order_release);
      lock.unlock();
    }
  });

  for (int r = 0; r < rounds; ++r) {
    lock.lock();
    const auto now = Clock::now().time_since_epoch().count();
    const std::int64_t sent = release_stamp.load(std::memory_order_acquire);
    if (sent != 0 && now > sent) {
      gaps.push_back(static_cast<double>(now - sent));
    }
    for (int i = 0; i < 2000; ++i) {
      CpuRelax();
    }
    release_stamp.store(0, std::memory_order_relaxed);
    lock.unlock();
    // Brief pause so the partner (not us) is the next owner.
    for (int i = 0; i < 4000; ++i) {
      CpuRelax();
    }
  }
  done.store(true, std::memory_order_release);
  partner.join();

  if (gaps.empty()) {
    return 0.0;
  }
  const std::size_t mid = gaps.size() / 2;
  std::nth_element(gaps.begin(), gaps.begin() + static_cast<std::ptrdiff_t>(mid), gaps.end());
  return gaps[mid];
}

template <typename Lock>
void HandoverPoint(benchmark::State& state, std::uint32_t spin_budget, int rounds = 2000) {
  for (auto _ : state) {
    Lock lock;
    if constexpr (requires(Lock& l, std::uint32_t b) { l.set_spin_budget(b); }) {
      if (spin_budget != kAutoSpinBudget) {
        lock.set_spin_budget(spin_budget);
      }
    }
    state.counters["median_handover_ns"] = MedianHandoverNs(lock, rounds);
  }
}

void RegisterAll() {
  // TAS handover under competitive succession interacts with randomized
  // backoff, making individual rounds slow; fewer rounds keep the suite
  // quick while the median stays stable.
  benchmark::RegisterBenchmark(
      "Handover/tas", [](benchmark::State& s) { HandoverPoint<TtasLock>(s, kAutoSpinBudget, 100); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcs-s", [](benchmark::State& s) { HandoverPoint<McsSpinLock>(s, kAutoSpinBudget); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcs-stp-spinning",
      [](benchmark::State& s) { HandoverPoint<McsStpLock>(s, kAutoSpinBudget); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcs-stp-parked",
      [](benchmark::State& s) { HandoverPoint<McsStpLock>(s, 0); })  // Forced park.
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcscr-stp",
      [](benchmark::State& s) { HandoverPoint<McscrStpLock>(s, kAutoSpinBudget); })
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
