// §5.2 lock handover latency: the time from thread A's unlock() entry to
// waiting thread B's return from lock(). The paper's design discussion
// turns on this number: handoff to a *spinning* successor costs ~100 ns;
// handoff to a *parked* successor costs a kernel wake (the paper quotes
// 30000+ cycles best case), and those cycles accrue while the lock is
// logically held — which is why FIFO+parking collapses and why CR keeps
// the heir spinning.
//
// Method: two threads ping-pong over the lock; the releasing side
// timestamps immediately before unlock() and the acquiring side immediately
// after lock() returns; the median gap over many handovers is reported,
// along with the median cost of the unlock() call itself (the portion of
// the handover accrued while the lock is logically held). `parked` variants
// force the waiter to park (spin budget 0) to expose the kernel-wake cost.
//
// `wakeahead` variants call PrepareHandover() from inside the hold: for the
// queue locks (MCS family) at the *top* of the hold — their waiters stay
// enqueued across handovers, so the heir is already predictable there and
// the overlap is maximal; for the competitive-succession locks (LOITER,
// pthread-style) *immediately before unlock* — their waiters only enqueue
// after failing against the held lock, so a top-of-hold hint fires into an
// empty queue (this is also exactly where HandoverLockGuard fires). Either
// way the kernel wake overlaps the critical section and the grant itself
// needs no syscall. The per-variant futex-traffic counters (kernel_wakes /
// elided_wakes / wake_aheads / kernel_parks, as deltas per round and per
// *parked* round) show the mechanism working; the per-parked-round wake
// figure is the §5.2 quantity wake-ahead exists to drive to ~0 beyond the
// single in-hold hint wake.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/loiter.h"
#include "src/locks/handover_guard.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

using Clock = std::chrono::steady_clock;

// When and whether the owner posts the heir's wake permit during the hold.
enum class Hint { kNone, kTopOfHold, kBeforeUnlock };

struct HandoverStats {
  double median_handover_ns = 0.0;
  double p10_handover_ns = 0.0;
  double p90_handover_ns = 0.0;
  double median_unlock_ns = 0.0;
  double gap_samples = 0.0;
  // Main-side rounds whose acquisition went through the park phase (kernel
  // block or consumed permit) — the denominator for per-parked-round rates.
  double parked_rounds = 0.0;
};

// Nearest-rank percentile; p in [0, 1]. Sorts in place.
double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[rank];
}

double Median(std::vector<double>& v) { return Percentile(v, 0.5); }

// When `require_parked` is set, a round contributes samples only if the
// acquiring side actually entered the park phase of its wait (it consumed a
// permit or blocked in the kernel). The ping-pong is scheduler-coupled: on
// small machines it can slip into a decoupled mode where most acquisitions
// are uncontended, and unfiltered medians would then measure re-acquisition
// of a free lock rather than §5.2 handover.
template <typename Lock>
HandoverStats MeasureHandover(Lock& lock, int rounds, Hint hint, bool require_parked) {
  std::atomic<std::int64_t> release_stamp{0};
  std::vector<double> gaps;
  std::vector<double> unlock_costs;
  gaps.reserve(static_cast<std::size_t>(rounds));
  unlock_costs.reserve(static_cast<std::size_t>(rounds));
  std::atomic<bool> done{false};
  std::uint64_t parked_rounds = 0;

  std::thread partner([&] {
    while (!done.load(std::memory_order_acquire)) {
      lock.lock();
      const std::int64_t sent = release_stamp.load(std::memory_order_acquire);
      benchmark::DoNotOptimize(sent);
      if (hint == Hint::kTopOfHold) {
        // Maximal overlap between the heir's kernel wakeup and our
        // remaining critical section.
        PrepareHandoverIfSupported(lock);
      }
      // Hold briefly so the main thread queues up behind us.
      for (int i = 0; i < 2000; ++i) {
        CpuRelax();
      }
      if (hint == Hint::kBeforeUnlock) {
        // Guard placement: for competitive-succession locks the heir only
        // enqueues after failing against the held lock, so this is the
        // earliest point at which it is reliably predictable.
        PrepareHandoverIfSupported(lock);
      }
      release_stamp.store(Clock::now().time_since_epoch().count(), std::memory_order_release);
      lock.unlock();
    }
  });

  Parker& self_parker = Self().parker;
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t parks_before = self_parker.kernel_waits() + self_parker.fast_path_parks();
    lock.lock();
    const auto now = Clock::now().time_since_epoch().count();
    // Did this acquisition go through the park phase (kernel block or
    // consumed permit)? Distinguishes real parked handovers from grabs of a
    // momentarily free lock.
    const bool parked_round =
        self_parker.kernel_waits() + self_parker.fast_path_parks() > parks_before;
    parked_rounds += parked_round ? 1 : 0;
    const std::int64_t sent = release_stamp.load(std::memory_order_acquire);
    if (sent != 0 && now > sent && (!require_parked || parked_round)) {
      gaps.push_back(static_cast<double>(now - sent));
    }
    if (hint == Hint::kTopOfHold) {
      PrepareHandoverIfSupported(lock);
    }
    for (int i = 0; i < 2000; ++i) {
      CpuRelax();
    }
    if (hint == Hint::kBeforeUnlock) {
      PrepareHandoverIfSupported(lock);
    }
    release_stamp.store(0, std::memory_order_relaxed);
    const auto unlock_begin = Clock::now();
    lock.unlock();
    const auto unlock_end = Clock::now();
    if (!require_parked || parked_round) {
      unlock_costs.push_back(
          static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  unlock_end - unlock_begin)
                                  .count()));
    }
    // Brief pause so the partner (not us) is the next owner.
    for (int i = 0; i < 4000; ++i) {
      CpuRelax();
    }
  }
  done.store(true, std::memory_order_release);
  partner.join();

  // Dispersion, not just the median: on small hosts the handover-gap p90
  // can sit orders of magnitude above the p10 (a preempted wake costs a
  // scheduling quantum), and the spread is itself the phenomenon §5.2 is
  // about.
  return HandoverStats{Median(gaps),
                       Percentile(gaps, 0.10),
                       Percentile(gaps, 0.90),
                       Median(unlock_costs),
                       static_cast<double>(gaps.size()),
                       static_cast<double>(parked_rounds)};
}

template <typename Lock>
void HandoverPoint(benchmark::State& state, std::uint32_t spin_budget, Hint hint,
                   int rounds = 2000, void (*configure)(Lock&) = nullptr) {
  for (auto _ : state) {
    Lock lock;
    if constexpr (requires(Lock& l, std::uint32_t b) { l.set_spin_budget(b); }) {
      if (spin_budget != kAutoSpinBudget) {
        lock.set_spin_budget(spin_budget);
      }
    }
    if (configure != nullptr) {
      configure(lock);
    }
    // Forced-park variants measure §5.2 parked handover; only rounds with a
    // real parked wait count.
    const bool require_parked = spin_budget == 0;
    const std::uint64_t parks_before = TotalKernelParks();
    const std::uint64_t wakes_before = TotalKernelWakes();
    const std::uint64_t elided_before = TotalElidedKernelWakes();
    const std::uint64_t aheads_before = TotalWakeAheads();
    const HandoverStats stats = MeasureHandover(lock, rounds, hint, require_parked);
    const double per_round = 1.0 / static_cast<double>(rounds);
    state.counters["median_handover_ns"] = stats.median_handover_ns;
    state.counters["handover_ns_p10"] = stats.p10_handover_ns;
    state.counters["handover_ns_p90"] = stats.p90_handover_ns;
    state.counters["median_unlock_ns"] = stats.median_unlock_ns;
    state.counters["gap_samples"] = stats.gap_samples;
    state.counters["parked_rounds"] = stats.parked_rounds;
    state.counters["kernel_parks_per_round"] =
        static_cast<double>(TotalKernelParks() - parks_before) * per_round;
    state.counters["kernel_wakes_per_round"] =
        static_cast<double>(TotalKernelWakes() - wakes_before) * per_round;
    state.counters["elided_wakes_per_round"] =
        static_cast<double>(TotalElidedKernelWakes() - elided_before) * per_round;
    state.counters["wake_aheads_per_round"] =
        static_cast<double>(TotalWakeAheads() - aheads_before) * per_round;
    // The §5.2 figure of merit: kernel wakes per handover that actually
    // went through the park phase. A wake-at-release design pays ~1 here;
    // a coupled wake-ahead steady state pays ~0 (the hint's wake either
    // collapses into a pending permit or lands inside the hold).
    const double per_parked = 1.0 / std::max(stats.parked_rounds, 1.0);
    state.counters["kernel_wakes_per_parked_round"] =
        static_cast<double>(TotalKernelWakes() - wakes_before) * per_parked;
  }
}

void RegisterAll() {
  const Hint kPlain = Hint::kNone;
  const Hint kWakeAhead = Hint::kTopOfHold;       // Queue locks: heir known early.
  const Hint kWakeAheadLate = Hint::kBeforeUnlock;  // Competitive locks.
  // TAS handover under competitive succession interacts with randomized
  // backoff, making individual rounds slow; fewer rounds keep the suite
  // quick while the median stays stable.
  benchmark::RegisterBenchmark(
      "Handover/tas",
      [=](benchmark::State& s) { HandoverPoint<TtasLock>(s, kAutoSpinBudget, kPlain, 100); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcs-s",
      [=](benchmark::State& s) { HandoverPoint<McsSpinLock>(s, kAutoSpinBudget, kPlain); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcs-stp-spinning",
      [=](benchmark::State& s) { HandoverPoint<McsStpLock>(s, kAutoSpinBudget, kPlain); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcs-stp-spinning-wakeahead",
      [=](benchmark::State& s) { HandoverPoint<McsStpLock>(s, kAutoSpinBudget, kWakeAhead); })
      ->Iterations(1);
  // Forced-park variants keep only genuinely parked rounds; extra rounds
  // buy enough samples when the ping-pong drifts into its decoupled mode.
  benchmark::RegisterBenchmark(
      "Handover/mcs-stp-parked",
      [=](benchmark::State& s) { HandoverPoint<McsStpLock>(s, 0, kPlain, 6000); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcs-stp-parked-wakeahead",
      [=](benchmark::State& s) { HandoverPoint<McsStpLock>(s, 0, kWakeAhead, 6000); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcscr-stp",
      [=](benchmark::State& s) { HandoverPoint<McscrStpLock>(s, kAutoSpinBudget, kPlain); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/mcscr-stp-wakeahead",
      [=](benchmark::State& s) { HandoverPoint<McscrStpLock>(s, kAutoSpinBudget, kWakeAhead); })
      ->Iterations(1);
  // LOITER: the partner is forced down the slow path (one fast-spin
  // attempt), so every round is a standby park/wake cycle — the §5.2 grant
  // path PR "handover everywhere" moved onto wake-ahead.
  const auto loiter_standby = +[](LoiterLock& l) {
    LoiterOptions opts;
    opts.fast_spin_attempts = 1;
    opts.max_fast_spinners = 1;
    l.set_options(opts);
  };
  benchmark::RegisterBenchmark("Handover/loiter-parked",
                               [=](benchmark::State& s) {
                                 HandoverPoint<LoiterLock>(s, 0, kPlain, 6000, loiter_standby);
                               })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/loiter-parked-wakeahead",
      [=](benchmark::State& s) {
        HandoverPoint<LoiterLock>(s, 0, kWakeAheadLate, 6000, loiter_standby);
      })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/pthread-style-parked",
      [=](benchmark::State& s) { HandoverPoint<PthreadStyleMutex>(s, 0, kPlain, 6000); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "Handover/pthread-style-parked-wakeahead",
      [=](benchmark::State& s) { HandoverPoint<PthreadStyleMutex>(s, 0, kWakeAheadLate, 6000); })
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
