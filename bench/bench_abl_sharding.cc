// Sharding ablation — the PR 8 tentpole figure: how partition count
// interacts with lock choice and oversubscription.
//
// Two families:
//
//   AblSharding/kchash/<lock>/shards:S/threads:T
//     The Figure-9 wicked mix run directly against ShardedKcHash at
//     shards ∈ {1, 4, 16}. shards=1 is the paper-faithful single-lock
//     baseline (one Malthusian lock carrying everything); higher counts
//     split the contention. The interesting read is the oversubscribed
//     column: sharding divides the arrival rate per lock, but each shard
//     lock still needs CR to survive preemption — shards and CR compose,
//     they don't substitute.
//
//   AblShardingServer/<lock>/shards:S/workers:W/rate:1.5x
//     The PR 7 server sweep's overload point (1.5x measured capacity,
//     admission on) with the backend swapped for sharded-kchash. Capacity
//     is measured once per lock at shards=1, so every shard count faces the
//     SAME offered rate and served_per_sec is directly comparable: the
//     sharded backend's extra headroom shows up as a higher served fraction
//     at identical load.
//
// run_benches.sh records both families into the BENCH_PR8.json ablation
// block; CI smoke-runs the sharded-kchash × {mcs-stp, mcscr-stp} pair.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/platform/sysinfo.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"
#include "src/sharded/sharded_kchash.h"

namespace {

using namespace malthus;
using namespace malthus::bench;
using namespace std::chrono_literals;

constexpr std::uint64_t kKeyRange = 1 << 16;
constexpr std::size_t kBuckets = 1 << 16;
constexpr std::size_t kCapacity = 1 << 15;

// ---------------------------------------------------------------------------
// Family 1: the wicked mix directly against ShardedKcHash.

template <typename Lock>
void RunWickedSharded(benchmark::State& state, std::size_t shards, int threads) {
  for (auto _ : state) {
    auto table = std::make_unique<ShardedKcHash<Lock>>(kBuckets, kCapacity, shards);
    // Pre-fill with kCapacity distinct keys so every point measures the
    // eviction-active steady state rather than warmup: the mix hash spreads
    // sequential keys evenly, so each shard starts at its capacity share.
    for (std::uint64_t k = 0; k < kCapacity; ++k) {
      table->Set(k, "prefill");
    }
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int) {
      table->WickedStep(ThreadLocalRng(), kKeyRange);
    });
    ReportResult(state, result);
    state.counters["shards"] = static_cast<double>(table->shard_count());
    state.counters["evictions"] = static_cast<double>(table->evictions());
  }
}

// ---------------------------------------------------------------------------
// Family 2: the server overload point over the sharded backend.

KvServerOptions ShardedServerConfig(const std::string& lock, std::size_t shards,
                                    std::size_t workers) {
  KvServerOptions opts;
  opts.lock_name = lock;
  opts.structure = "sharded-kchash";
  opts.backend_shards = shards;
  opts.workers = workers;
  opts.tenants = 2;
  opts.admission_enabled = true;
  opts.codel_enabled = true;
  opts.queue_capacity = 4096;
  return opts;
}

LoadGenOptions ShardedLoadConfig(double rate) {
  LoadGenOptions opts;
  opts.rate_per_sec = rate;
  // A few CoDel intervals, as in bench_server_sweep's kMinTrial.
  opts.duration = std::max<std::chrono::milliseconds>(
      600ms, 3 * DefaultBenchDuration());
  opts.tenants = 2;
  opts.tenant_weights = {3.0, 1.0};
  opts.keys_per_tenant = 1 << 14;
  opts.zipf_theta = 0.99;
  opts.put_fraction = 0.1;
  return opts;
}

// Capacity per lock, measured at the shards=1 baseline and cached: all
// shard counts of one lock offer multiples of the SAME number, so their
// served rates are comparable (same clamp rationale as bench_server_sweep).
double BaselineCapacity(const std::string& lock) {
  static std::map<std::string, double> cache;
  auto it = cache.find(lock);
  if (it != cache.end()) {
    return it->second;
  }
  std::vector<double> served_rates, gen_rates;
  for (int burst = 0; burst < 3; ++burst) {
    KvServer server(ShardedServerConfig(
        lock, /*shards=*/1,
        static_cast<std::size_t>(std::max(2, EffectiveCpuCount()))));
    if (!server.Start()) {
      return 0.0;
    }
    LoadGenOptions load = ShardedLoadConfig(500000.0);
    load.duration = 400ms;
    load.seed = 300 + burst;
    LoadGenerator gen(load);
    const LoadGenStats stats = gen.Run(server);
    server.Stop();
    const double seconds =
        std::chrono::duration<double>(stats.actual_duration).count();
    if (seconds <= 0) {
      continue;
    }
    served_rates.push_back(
        static_cast<double>(server.Aggregate().served) / seconds);
    gen_rates.push_back(static_cast<double>(stats.offered) / seconds);
  }
  if (served_rates.empty()) {
    return 0.0;
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double capacity =
      std::min(median(served_rates), 0.5 * median(gen_rates));
  cache[lock] = capacity;
  return capacity;
}

double Us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void RunServerPoint(benchmark::State& state, const std::string& lock,
                    std::size_t shards, std::size_t workers,
                    double rate_multiple) {
  const double capacity = BaselineCapacity(lock);
  if (capacity <= 0.0) {
    state.SkipWithError("capacity calibration failed");
    return;
  }
  for (auto _ : state) {
    KvServer server(ShardedServerConfig(lock, shards, workers));
    if (!server.Start()) {
      state.SkipWithError("server failed to start");
      return;
    }
    LoadGenerator gen(ShardedLoadConfig(capacity * rate_multiple));
    const LoadGenStats stats = gen.Run(server);
    const auto drain_deadline = std::chrono::steady_clock::now() + 2s;
    while (server.QueueDepth() > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(1ms);
    }
    server.Stop();
    const TenantStats agg = server.Aggregate();
    const double seconds =
        std::chrono::duration<double>(stats.actual_duration).count();

    state.SetIterationTime(seconds);
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["capacity_per_sec"] = capacity;
    state.counters["offered_per_sec"] =
        static_cast<double>(agg.offered) / seconds;
    state.counters["served_per_sec"] =
        static_cast<double>(agg.served) / seconds;
    state.counters["shed_frac"] =
        agg.offered ? static_cast<double>(agg.shed_total()) /
                          static_cast<double>(agg.offered)
                    : 0.0;
    state.counters["e2e_p50_us"] = Us(agg.e2e_p50);
    state.counters["e2e_p99_us"] = Us(agg.e2e_p99);
    state.counters["svc_p99_us"] = Us(agg.svc_p99);
    state.counters["gen_lag_ms"] =
        std::chrono::duration<double, std::milli>(stats.max_lag).count();
  }
}

void RegisterAll() {
  const int cpus = EffectiveCpuCount();
  const int base_threads = std::max(2, cpus);
  const int over_threads = base_threads * 8;  // the paper's surplus regime
  const std::vector<std::size_t> shard_counts = {1, 4, 16};
  const std::vector<std::string> locks = {"mcs-stp", "mcscr-stp"};

  for (const std::string& lock : locks) {
    for (const std::size_t shards : shard_counts) {
      for (const int threads : {base_threads, over_threads}) {
        const std::string name = "AblSharding/kchash/" + lock +
                                 "/shards:" + std::to_string(shards) +
                                 "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(), [lock, shards, threads](benchmark::State& s) {
              WithLockType(lock, [&]<typename L>() {
                RunWickedSharded<L>(s, shards, threads);
              });
            })
            ->Iterations(1)
            ->UseManualTime();
      }
    }
  }

  const auto base_workers = static_cast<std::size_t>(base_threads);
  for (const std::string& lock : locks) {
    for (const std::size_t shards : shard_counts) {
      for (const std::size_t workers : {base_workers, base_workers * 8}) {
        const std::string name = "AblShardingServer/" + lock +
                                 "/shards:" + std::to_string(shards) +
                                 "/workers:" + std::to_string(workers) +
                                 "/rate:1.5x";
        benchmark::RegisterBenchmark(
            name.c_str(), [lock, shards, workers](benchmark::State& s) {
              RunServerPoint(s, lock, shards, workers, 1.5);
            })
            ->Iterations(1)
            ->UseManualTime();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
