// Figure 5 — RingWalker: core-level DTLB pressure. Each thread owns a
// private circularly-linked ring of 50 elements, one element per page; a
// shared ring serves the critical section. The NCS walks 50 private
// elements; the CS advances 10 shared elements. Walk state persists across
// iterations. Element offsets within their pages are randomly colored to
// avoid cache index conflicts (paper §6.2).
//
// On the T5 the inflection lands where two ACS members share a 128-entry
// TLB; on x86 the shape reproduces against the (typically smaller) L1 DTLB.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/rng/xorshift.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr std::size_t kPageBytes = 4096;
constexpr int kRingElements = 50;
constexpr int kNcsSteps = 50;
constexpr int kCsSteps = 10;

// A ring of pointers, one element per page, at a random offset in its page.
class PageRing {
 public:
  explicit PageRing(std::uint64_t seed) {
    XorShift64 rng(seed);
    pages_ = std::make_unique<std::byte[]>(kPageBytes * (kRingElements + 1));
    // Align to page granularity inside the slab.
    auto base = reinterpret_cast<std::uintptr_t>(pages_.get());
    const std::uintptr_t aligned = (base + kPageBytes - 1) & ~(kPageBytes - 1);
    std::vector<void**> nodes;
    nodes.reserve(kRingElements);
    for (int i = 0; i < kRingElements; ++i) {
      // Random color: offset in [0, kPageBytes - 64), 8-byte aligned.
      const std::uintptr_t offset = (rng.NextBelow((kPageBytes - 64) / 8)) * 8;
      nodes.push_back(
          reinterpret_cast<void**>(aligned + static_cast<std::uintptr_t>(i) * kPageBytes + offset));
    }
    for (int i = 0; i < kRingElements; ++i) {
      *nodes[static_cast<std::size_t>(i)] = nodes[static_cast<std::size_t>((i + 1) % kRingElements)];
    }
    cursor_ = nodes[0];
  }

  // Advances `steps` elements, returning the new cursor.
  void Walk(int steps) {
    void** p = cursor_;
    for (int i = 0; i < steps; ++i) {
      p = reinterpret_cast<void**>(*p);
    }
    cursor_ = p;
  }

 private:
  std::unique_ptr<std::byte[]> pages_;
  void** cursor_;
};

void Fig5Point(benchmark::State& state, const std::string& lock_name, int threads) {
  for (auto _ : state) {
    auto lock = MakeLock(lock_name);
    PageRing shared_ring(1);
    std::vector<std::unique_ptr<PageRing>> private_rings;
    for (int t = 0; t < threads; ++t) {
      private_rings.push_back(std::make_unique<PageRing>(100 + static_cast<std::uint64_t>(t)));
    }
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int t) {
      lock->lock();
      shared_ring.Walk(kCsSteps);
      lock->unlock();
      private_rings[static_cast<std::size_t>(t)]->Walk(kNcsSteps);
    });
    ReportResult(state, result);
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          ("Fig5/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) { Fig5Point(s, lock_name, threads); })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
