// Shared infrastructure for the per-figure benchmark binaries.
//
// Each binary registers one google-benchmark entry per (variant, thread
// count) point and reports the paper's series through custom counters
// (items_per_second for throughput; avgLWSS / MTTR / gini where the figure
// calls for them). Measurement interval and sweep ceilings follow the env
// knobs documented in harness/fixed_time.h, so the default full-suite run
// stays fast while EXPERIMENTS.md runs use longer intervals.
#ifndef MALTHUS_BENCH_COMMON_H_
#define MALTHUS_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <string>

#include "src/core/lifocr.h"
#include "src/core/mcscr.h"
#include "src/core/mcscrn.h"
#include "src/harness/fixed_time.h"
#include "src/locks/any_lock.h"
#include "src/locks/mcs.h"
#include "src/locks/pthread_style.h"
#include "src/locks/tas.h"
#include "src/locks/ticket.h"
#include "src/metrics/admission_log.h"

namespace malthus::bench {

// Publishes the standard counters for a fixed-time run.
inline void ReportResult(benchmark::State& state, const BenchResult& result) {
  state.counters["ops_per_sec"] =
      benchmark::Counter(result.Throughput(), benchmark::Counter::kDefaults);
  state.counters["cpu_util_x"] = result.usage.CpuUtilization();
  state.SetIterationTime(result.wall_seconds);
}

inline void ReportFairness(benchmark::State& state, const FairnessReport& report) {
  state.counters["avgLWSS"] = report.average_lwss;
  state.counters["MTTR"] = report.mttr;
  state.counters["gini"] = report.gini;
}

// Publishes throughput dispersion across repetitions (see RunWithDispersion
// in harness/fixed_time.h). On small hosts the p10-p90 spread routinely
// dwarfs the effect under test; snapshot readers need it next to the median
// to judge significance.
inline void ReportDispersion(benchmark::State& state, const DispersionStats& stats) {
  state.counters["ops_p10"] = stats.p10;
  state.counters["ops_p50"] = stats.p50;
  state.counters["ops_p90"] = stats.p90;
  state.counters["reps"] = static_cast<double>(stats.reps);
}

// Compile-time dispatch from a registry name to the lock type, for
// constructs that take the lock as a template parameter. `f` is a generic
// callable invoked as f.template operator()<LockType>().
template <typename F>
void WithLockType(const std::string& name, F&& f) {
  if (name == "mcs-s") {
    f.template operator()<McsSpinLock>();
  } else if (name == "mcs-stp") {
    f.template operator()<McsStpLock>();
  } else if (name == "mcscr-s") {
    f.template operator()<McscrSpinLock>();
  } else if (name == "mcscr-stp") {
    f.template operator()<McscrStpLock>();
  } else if (name == "tas") {
    f.template operator()<TtasLock>();
  } else if (name == "ticket") {
    f.template operator()<TicketLock>();
  } else if (name == "pthread-style") {
    f.template operator()<PthreadStyleMutex>();
  } else if (name == "lifocr-stp") {
    f.template operator()<LifoCrStpLock>();
  } else if (name == "mcscrn-stp") {
    f.template operator()<McscrnStpLock>();
  }
}

}  // namespace malthus::bench

#endif  // MALTHUS_BENCH_COMMON_H_
