// Figure 6 — libslock "stress_latency": a cycle-bound delay-loop benchmark
// (CS = 200 delay iterations, NCS = 5000; the paper's command line was
// -a 200 -p 5000). Almost no memory is touched, so the figure isolates
// competition for pipelines and logical CPUs: the main inflection for
// spin-waiting locks appears at the core count, and the cliff at the
// logical CPU count.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

constexpr int kCsDelay = 200;
constexpr int kNcsDelay = 5000;

inline void DelayLoop(int iterations) {
  volatile int sink = 0;
  for (int i = 0; i < iterations; ++i) {
    sink = sink + 1;
  }
}

void Fig6Point(benchmark::State& state, const std::string& lock_name, int threads) {
  for (auto _ : state) {
    auto lock = MakeLock(lock_name);
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int) {
      lock->lock();
      DelayLoop(kCsDelay);
      lock->unlock();
      DelayLoop(kNcsDelay);
    });
    ReportResult(state, result);
  }
}

void RegisterAll() {
  const auto thread_counts = SweepThreadCounts(MaxSweepThreads());
  for (const std::string lock_name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    for (const int threads : thread_counts) {
      benchmark::RegisterBenchmark(
          ("Fig6/" + lock_name + "/threads:" + std::to_string(threads)).c_str(),
          [lock_name, threads](benchmark::State& s) { Fig6Point(s, lock_name, threads); })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
