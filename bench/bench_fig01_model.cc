// Figure 1 — "Impact of Concurrency Restriction": the idealized throughput
// curve with and without CR from the analytic model, using the paper's
// worked parameters (CS = 1 us, NCS = 5 us, 1 MB/thread footprint, 8 MB
// LLC). One benchmark row per thread count; counters carry both curves.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/model/throughput_model.h"

namespace {

const malthus::ModelParams kParams{};  // Paper defaults.

void Fig1Point(benchmark::State& state) {
  const malthus::ThroughputModel model(kParams);
  const int threads = static_cast<int>(state.range(0));
  double with_cr = 0;
  double without_cr = 0;
  for (auto _ : state) {
    without_cr = model.ThroughputWithoutCr(threads);
    with_cr = model.ThroughputWithCr(threads);
    benchmark::DoNotOptimize(with_cr);
  }
  state.counters["without_cr_ops"] = without_cr;
  state.counters["with_cr_ops"] = with_cr;
}

BENCHMARK(Fig1Point)->DenseRange(1, 16, 1)->Arg(24)->Arg(32)->Arg(48)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const malthus::ThroughputModel model(kParams);
  std::printf("# Figure 1 landmarks: saturation=%d peak=%d\n", model.Saturation(),
              model.PeakThreads(128));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
