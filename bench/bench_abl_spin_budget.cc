// Ablation — spin-then-park budget (§5.1). The paper fixes the budget at
// ~20000 cycles (one context-switch round trip; Karlin's 2-competitive
// point). This sweep shows the regime: budget 0 degenerates to pure
// parking (handover pays a kernel wake), a moderate budget keeps the
// MCSCR successor spinning (cheap grants), and oversized budgets waste
// pipeline when threads should be parked. Two thread counts: near the core
// count and oversubscribed.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/platform/sysinfo.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

void SpinBudgetPoint(benchmark::State& state, std::uint32_t budget, int threads) {
  for (auto _ : state) {
    McscrOptions opts;
    opts.spin_budget = budget;
    McscrStpLock lock(opts);
    const std::uint64_t parks_before = TotalKernelParks();
    BenchConfig config;
    config.threads = threads;
    config.duration = DefaultBenchDuration();
    const BenchResult result = RunFixedTime(config, [&](int) {
      lock.lock();
      volatile int sink = 0;
      for (int i = 0; i < 50; ++i) {
        sink = sink + i;
      }
      lock.unlock();
    });
    ReportResult(state, result);
    state.counters["kernel_parks"] = static_cast<double>(TotalKernelParks() - parks_before);
  }
}

void RegisterAll() {
  const int cpus = LogicalCpuCount();
  for (const int threads : {cpus, 2 * cpus}) {
    for (const std::uint32_t budget : {0u, 100u, 1000u, 10000u, 100000u}) {
      benchmark::RegisterBenchmark(("AblSpinBudget/threads:" + std::to_string(threads) +
                                    "/budget:" + std::to_string(budget))
                                       .c_str(),
                                   [budget, threads](benchmark::State& s) {
                                     SpinBudgetPoint(s, budget, threads);
                                   })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
