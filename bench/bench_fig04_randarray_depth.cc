// Figure 4 — in-depth RandArray measurements at 32 threads: throughput,
// average LWSS, MTTR, Gini, RSTDDEV, voluntary context switches, CPU
// utilization, LLC misses, and model watts above idle, per lock.
//
// LLC misses are obtained by replaying the *measured* admission history
// through the cache model (DESIGN.md §2: the host exposes no per-workload
// LLC miss counter here, and the emulation is exactly the paper's §6.1
// validation instrument). Watts are the active-CPU energy proxy.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/common.h"
#include "bench/randarray.h"
#include "src/cachesim/replay.h"
#include "src/platform/sysinfo.h"

namespace {

using namespace malthus;
using namespace malthus::bench;

void Fig4Row(benchmark::State& state, const std::string& lock_name) {
  const int threads = std::min(32, MaxSweepThreads());
  RandArrayParams params;
  for (auto _ : state) {
    const RandArrayOutcome outcome = RunRandArray(lock_name, threads, DefaultBenchDuration());
    ReportResult(state, outcome.result);
    ReportFairness(state, outcome.fairness);
    state.counters["rstddev"] = outcome.fairness.rstddev;
    state.counters["voluntary_ctx"] = static_cast<double>(outcome.kernel_parks);
    state.counters["model_watts"] = outcome.result.usage.ModelWattsAboveIdle();

    // LLC miss estimate: replay the measured admission order through the
    // cache model with the workload's real footprint parameters.
    ReplayConfig replay;
    replay.threads = static_cast<std::uint32_t>(threads);
    replay.ncs_footprint_bytes = params.words * sizeof(std::uint32_t);
    replay.cs_footprint_bytes = params.words * sizeof(std::uint32_t);
    replay.cs_accesses = static_cast<std::uint32_t>(params.cs_accesses);
    replay.ncs_accesses = static_cast<std::uint32_t>(params.ncs_accesses);
    CacheConfig llc;
    llc.size_bytes = LastLevelCacheBytes();
    llc.ways = 16;
    AdmissionSchedule schedule = outcome.admission_history;
    const std::size_t cap = 4000;  // Bound replay cost; shape needs no more.
    if (schedule.size() > cap) {
      schedule.resize(cap);
    }
    if (!schedule.empty()) {
      const ReplayResult r = ReplaySchedule(replay, llc, schedule);
      state.counters["llc_miss_rate_cs"] = r.cs_miss_rate;
      state.counters["llc_extrinsic_cs"] = r.cs_extrinsic_rate;
    }
  }
}

void RegisterAll() {
  for (const std::string name : {"mcs-s", "mcs-stp", "mcscr-s", "mcscr-stp"}) {
    benchmark::RegisterBenchmark(("Fig4/depth32/" + name).c_str(),
                                 [name](benchmark::State& s) { Fig4Row(s, name); })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
