// Quickstart: MalthusianMutex (MCSCR with spin-then-park waiting) as a
// drop-in BasicLockable mutex.
//
//   build/examples/quickstart
//
// Demonstrates: std::scoped_lock compatibility, opting into anticipatory
// handover with HandoverLockGuard (wake-ahead: the unlocking thread posts
// its heir's wake permit before releasing, hiding the kernel wake behind
// the critical-section tail), the instrumentation counters (culls /
// re-provisions / fairness grants / elided kernel wakes), and attaching an
// admission log to get the paper's fairness metrics.
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/locks/handover_guard.h"
#include "src/metrics/admission_log.h"
#include "src/platform/park.h"

int main() {
  malthus::MalthusianMutex mutex;
  malthus::AdmissionLog log;
  mutex.set_recorder(&log);

  std::uint64_t shared_counter = 0;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200000;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        if (t % 2 == 0) {
          std::scoped_lock guard(mutex);  // Standard RAII locking works.
          ++shared_counter;
        } else {
          // Opt-in wake-ahead: identical semantics, but the destructor
          // fires PrepareHandover() just before unlock so a parked heir is
          // already waking while we release.
          malthus::HandoverLockGuard guard(mutex);
          ++shared_counter;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  std::printf("counter           = %llu (expected %llu)\n",
              static_cast<unsigned long long>(shared_counter),
              static_cast<unsigned long long>(kThreads) * kItersPerThread);
  std::printf("culls             = %llu\n", static_cast<unsigned long long>(mutex.culls()));
  std::printf("re-provisions     = %llu\n",
              static_cast<unsigned long long>(mutex.reprovisions()));
  std::printf("fairness grants   = %llu\n",
              static_cast<unsigned long long>(mutex.fairness_grants()));
  std::printf("wake-aheads       = %llu\n",
              static_cast<unsigned long long>(malthus::TotalWakeAheads()));
  std::printf("elided kern wakes = %llu\n",
              static_cast<unsigned long long>(malthus::TotalElidedKernelWakes()));
  std::printf("kernel parks      = %llu\n",
              static_cast<unsigned long long>(malthus::TotalKernelParks()));
  std::printf("fairness          : %s\n", log.Report().ToString().c_str());
  return shared_counter == static_cast<std::uint64_t>(kThreads) * kItersPerThread ? 0 : 1;
}
