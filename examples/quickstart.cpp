// Quickstart: MalthusianMutex (MCSCR with spin-then-park waiting) as a
// drop-in BasicLockable mutex.
//
//   build/examples/quickstart
//
// Demonstrates: std::scoped_lock compatibility, the instrumentation
// counters (culls / re-provisions / fairness grants), and attaching an
// admission log to get the paper's fairness metrics.
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/metrics/admission_log.h"

int main() {
  malthus::MalthusianMutex mutex;
  malthus::AdmissionLog log;
  mutex.set_recorder(&log);

  std::uint64_t shared_counter = 0;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200000;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        std::scoped_lock guard(mutex);  // Standard RAII locking.
        ++shared_counter;
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  std::printf("counter           = %llu (expected %llu)\n",
              static_cast<unsigned long long>(shared_counter),
              static_cast<unsigned long long>(kThreads) * kItersPerThread);
  std::printf("culls             = %llu\n", static_cast<unsigned long long>(mutex.culls()));
  std::printf("re-provisions     = %llu\n",
              static_cast<unsigned long long>(mutex.reprovisions()));
  std::printf("fairness grants   = %llu\n",
              static_cast<unsigned long long>(mutex.fairness_grants()));
  std::printf("fairness          : %s\n", log.Report().ToString().c_str());
  return shared_counter == static_cast<std::uint64_t>(kThreads) * kItersPerThread ? 0 : 1;
}
