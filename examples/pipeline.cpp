// Pipeline: a producer/consumer stage pair connected by the bounded
// blocking queue, showing CR applied through the condition variable
// (§6.7's "fast flow"). Compares a strict-FIFO condvar against the
// mostly-LIFO (1/1000) discipline and prints the per-message lock cost.
//
//   build/examples/pipeline [producers] [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/sync/blocking_queue.h"

namespace {

void RunStage(const char* label, double append_probability, int producers, int seconds) {
  malthus::BoundedBlockingQueue<int, malthus::MalthusianMutex> queue(
      10000, malthus::CrCondVarOptions{.append_probability = append_probability});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> conveyed{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        int value;
        if (queue.TryPop(&value)) {
          conveyed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      while (!stop.load(std::memory_order_relaxed)) {
        queue.Push(p);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  // Unblock any producer stuck on a full queue.
  int drain;
  while (queue.TryPop(&drain)) {
  }
  for (auto& t : threads) {
    t.join();
  }

  const double messages = static_cast<double>(conveyed.load());
  std::printf("%-22s  %10.0f msg/s   %.2f lock acquisitions/message\n", label,
              messages / seconds,
              messages > 0 ? static_cast<double>(queue.lock_acquisitions()) / messages : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const int producers = argc > 1 ? std::atoi(argv[1]) : 8;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 2;
  std::printf("pipeline: %d producers -> queue(10000) -> 3 consumers, %ds each\n\n", producers,
              seconds);
  RunStage("fifo condvar", 1.0, producers, seconds);
  RunStage("mostly-lifo condvar", 1.0 / 1000, producers, seconds);
  return 0;
}
