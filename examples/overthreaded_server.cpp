// Overthreaded server: the paper's motivating scenario. A "server" spawns
// far more worker threads than the shared session table needs; each request
// takes the table lock (CS) then does private work (NCS). With a FIFO MCS
// lock, every worker churns through the lock and the aggregate working set
// thrashes; MalthusianMutex passivates the surplus workers, keeping
// throughput up and CPU consumption down while long-term fairness keeps all
// workers alive.
//
//   build/examples/overthreaded_server [workers] [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/core/mcscr.h"
#include "src/harness/fixed_time.h"
#include "src/locks/any_lock.h"
#include "src/locks/mcs.h"
#include "src/metrics/admission_log.h"
#include "src/platform/sysinfo.h"
#include "src/rng/xorshift.h"

namespace {

struct SessionTable {
  std::vector<std::uint64_t> slots = std::vector<std::uint64_t>(1 << 16, 0);

  void Touch(malthus::XorShift64& rng) {
    for (int i = 0; i < 64; ++i) {
      slots[rng.NextBelow(slots.size())] += 1;
    }
  }
};

template <typename Lock>
void ServeRequests(const char* label, int workers, std::chrono::milliseconds duration) {
  Lock table_lock;
  malthus::AdmissionLog log;
  table_lock.set_recorder(&log);
  SessionTable table;
  std::vector<std::vector<std::uint64_t>> scratch(
      static_cast<std::size_t>(workers), std::vector<std::uint64_t>(1 << 15, 1));

  malthus::BenchConfig config;
  config.threads = workers;
  config.duration = duration;
  std::atomic<std::uint64_t> sink{0};
  const malthus::BenchResult result = malthus::RunFixedTime(config, [&](int t) {
    malthus::XorShift64& rng = malthus::ThreadLocalRng();
    table_lock.lock();
    table.Touch(rng);
    table_lock.unlock();
    std::uint64_t sum = 0;
    auto& mine = scratch[static_cast<std::size_t>(t)];
    for (int i = 0; i < 256; ++i) {
      sum += mine[rng.NextBelow(mine.size())];
    }
    sink.fetch_add(sum, std::memory_order_relaxed);
  });

  const malthus::FairnessReport fairness = log.Report();
  std::printf("%-18s  %9.0f req/s   cpu %5.1fx   avgLWSS %5.1f   MTTR %4.0f   gini %.3f\n",
              label, result.Throughput(), result.usage.CpuUtilization(),
              fairness.average_lwss, fairness.mttr, fairness.gini);
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 3 * malthus::LogicalCpuCount();
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 2;
  std::printf("overthreaded server: %d workers on %d logical CPUs, %ds per lock\n\n", workers,
              malthus::LogicalCpuCount(), seconds);
  const auto duration = std::chrono::seconds(seconds);
  ServeRequests<malthus::McsSpinLock>("mcs-s (FIFO)", workers, duration);
  ServeRequests<malthus::McsStpLock>("mcs-stp (FIFO)", workers, duration);
  ServeRequests<malthus::MalthusianMutex>("malthusian (CR)", workers, duration);
  std::printf(
      "\nThe CR lock serves comparable-or-better request rates with a fraction of the CPU\n"
      "and a small circulating set (avgLWSS), while gini stays bounded (long-term fair).\n");
  return 0;
}
