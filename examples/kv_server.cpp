// KV server demo: the full request-serving pipeline end to end. An
// open-loop Poisson generator offers Zipf-skewed multi-tenant traffic at a
// configurable fraction of measured capacity; the server runs a bounded
// CoDel admission queue and a Malthusian CR gate in front of the LRU
// backend, and prints per-tenant served/shed counts with end-to-end and
// service-only latency percentiles.
//
// Run it twice to see the SLO story (docs/server.md):
//
//   build/kv_server 1.5 on     # admission on: p99 stays bounded, excess shed
//   build/kv_server 1.5 off    # admission off: queueing delay inflates p99
//
//   build/kv_server [rate_multiple] [on|off] [lock] [seconds]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/platform/sysinfo.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"

using namespace malthus;
using namespace std::chrono_literals;

namespace {

KvServerOptions Config(const std::string& lock, bool admission) {
  KvServerOptions opts;
  opts.lock_name = lock;
  opts.structure = "lru";
  opts.workers = static_cast<std::size_t>(std::max(2, EffectiveCpuCount())) * 4;
  opts.tenants = 3;
  opts.admission_enabled = admission;
  opts.codel_enabled = admission;
  opts.queue_capacity = admission ? 4096 : (1u << 16);
  return opts;
}

double MeasureCapacity(const std::string& lock) {
  KvServer server(Config(lock, /*admission=*/true));
  if (!server.Start()) {
    return 0.0;
  }
  LoadGenOptions load;
  load.rate_per_sec = 500000.0;
  load.duration = 400ms;
  load.tenants = 3;
  LoadGenerator gen(load);
  const LoadGenStats stats = gen.Run(server);
  server.Stop();
  const double seconds =
      std::chrono::duration<double>(stats.actual_duration).count();
  return seconds > 0
             ? static_cast<double>(server.Aggregate().served) / seconds
             : 0.0;
}

void PrintTenant(const char* label, const TenantStats& s) {
  std::printf(
      "%-10s offered %8llu  served %8llu  shed %7llu "
      "(full %llu, codel %llu, gate %llu)\n"
      "           e2e   p50 %8.1f us  p90 %8.1f us  p99 %8.1f us  "
      "p99.9 %8.1f us\n"
      "           svc   p50 %8.1f us  p99 %8.1f us\n",
      label, static_cast<unsigned long long>(s.offered),
      static_cast<unsigned long long>(s.served),
      static_cast<unsigned long long>(s.shed_total()),
      static_cast<unsigned long long>(s.shed_queue_full),
      static_cast<unsigned long long>(s.shed_codel),
      static_cast<unsigned long long>(s.shed_gate_timeout),
      s.e2e_p50 / 1000.0, s.e2e_p90 / 1000.0, s.e2e_p99 / 1000.0,
      s.e2e_p999 / 1000.0, s.svc_p50 / 1000.0, s.svc_p99 / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  const double multiple = argc > 1 ? std::atof(argv[1]) : 1.5;
  const bool admission = argc > 2 ? (std::strcmp(argv[2], "off") != 0) : true;
  const std::string lock = argc > 3 ? argv[3] : "mcscr-stp";
  const int seconds = argc > 4 ? std::atoi(argv[4]) : 2;

  std::printf("calibrating capacity (lock=%s)...\n", lock.c_str());
  const double capacity = MeasureCapacity(lock);
  if (capacity <= 0.0) {
    std::fprintf(stderr, "unknown lock or backend: %s\n", lock.c_str());
    return 1;
  }
  std::printf("capacity ~ %.0f req/s; offering %.2fx = %.0f req/s, "
              "admission %s\n\n",
              capacity, multiple, capacity * multiple,
              admission ? "ON (CR gate + CoDel)" : "OFF (deep FIFO)");

  KvServer server(Config(lock, admission));
  if (!server.Start()) {
    return 1;
  }
  LoadGenOptions load;
  load.rate_per_sec = capacity * multiple;
  load.duration = std::chrono::seconds(seconds);
  load.tenants = 3;
  load.tenant_weights = {6.0, 3.0, 1.0};  // skewed tenants
  load.zipf_theta = 0.99;
  LoadGenerator gen(load);
  const LoadGenStats stats = gen.Run(server);

  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (server.QueueDepth() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  server.Stop();

  for (std::uint32_t t = 0; t < 3; ++t) {
    char label[16];
    std::snprintf(label, sizeof(label), "tenant %u", t);
    PrintTenant(label, server.StatsFor(t));
  }
  std::printf("\n");
  PrintTenant("aggregate", server.Aggregate());
  std::printf("\ngenerator: offered %.0f req/s over %.2f s, max lag %.1f ms\n",
              stats.OfferedRate(),
              std::chrono::duration<double>(stats.actual_duration).count(),
              std::chrono::duration<double, std::milli>(stats.max_lag).count());
  return 0;
}
