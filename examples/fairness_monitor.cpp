// Fairness monitor: runs a contended workload over every lock in the
// registry and prints the paper's fairness dashboard — throughput, average
// LWSS, MTTR, Gini, RSTDDEV — as one table. A compact reproduction of the
// Figure-4 methodology over arbitrary algorithms.
//
//   build/examples/fairness_monitor [threads] [ms]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/harness/fixed_time.h"
#include "src/harness/table.h"
#include "src/locks/any_lock.h"
#include "src/metrics/admission_log.h"
#include "src/platform/sysinfo.h"

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : malthus::LogicalCpuCount();
  const int ms = argc > 2 ? std::atoi(argv[2]) : 300;

  malthus::TextTable table(
      {"lock", "ops/sec", "avgLWSS", "MTTR", "gini", "rstddev", "cpu_util"});

  for (const auto& name : malthus::AllLockNames()) {
    if (name == "null") {
      continue;  // No admission history to report.
    }
    auto lock = malthus::MakeLock(name);
    malthus::AdmissionLog log;
    lock->set_recorder(&log);
    malthus::BenchConfig config;
    config.threads = threads;
    config.duration = std::chrono::milliseconds(ms);
    const malthus::BenchResult result = malthus::RunFixedTime(config, [&](int) {
      lock->lock();
      lock->unlock();
    });
    const malthus::FairnessReport report = log.Report();
    table.AddRow({name, malthus::TextTable::Num(result.Throughput(), true),
                  malthus::TextTable::Num(report.average_lwss),
                  malthus::TextTable::Num(report.mttr), malthus::TextTable::Num(report.gini),
                  malthus::TextTable::Num(report.rstddev),
                  malthus::TextTable::Num(result.usage.CpuUtilization())});
  }

  std::printf("fairness dashboard: %d threads, %d ms per lock\n\n%s", threads, ms,
              table.Render().c_str());
  std::printf(
      "\nFIFO locks show avgLWSS == threads and MTTR == threads; CR locks clamp both to the\n"
      "saturation set while gini stays below 1 (long-term fairness via Bernoulli grants).\n");
  return 0;
}
